"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that offline environments without the ``wheel`` package can still do an
editable install via ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Stretching Gossip with Live Streaming' (Frey et al., DSN 2009)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
