"""Trace diffing (first-divergence detection) and the telemetry CLI."""

import json

from repro.telemetry.cli import main
from repro.telemetry.diff import diff_traces
from repro.telemetry.schema import TRACE_SCHEMA, TraceWriter


def write_events(path, events):
    with TraceWriter(path) as writer:
        for kind, time, fields in events:
            writer.append(kind, time, **fields)
    return path


BASE_EVENTS = [
    ("round", 0.0, {"n": 1, "np": 7}),
    ("round", 0.2, {"n": 2, "np": 7}),
    ("packet", 0.4, {"n": 1, "p": 0, "source": False}),
    ("round", 0.6, {"n": 3, "np": 7}),
]


class TestDiffTraces:
    def test_identical_traces(self, tmp_path):
        left = write_events(tmp_path / "a.jsonl", BASE_EVENTS)
        right = write_events(tmp_path / "b.jsonl", BASE_EVENTS)
        outcome = diff_traces(left, right)
        assert outcome.identical
        assert outcome.events_compared == 4
        assert "identical" in outcome.describe()

    def test_injected_divergence_found_at_right_index(self, tmp_path):
        mutated = [list(event) for event in BASE_EVENTS]
        mutated[2] = ("packet", 0.4, {"n": 1, "p": 99, "source": False})
        left = write_events(tmp_path / "a.jsonl", BASE_EVENTS)
        right = write_events(tmp_path / "b.jsonl", mutated)
        outcome = diff_traces(left, right)
        assert not outcome.identical
        assert outcome.index == 2
        assert "p" in outcome.reason
        assert outcome.left["p"] == 0 and outcome.right["p"] == 99

    def test_truncated_trace_reported(self, tmp_path):
        left = write_events(tmp_path / "a.jsonl", BASE_EVENTS)
        right = write_events(tmp_path / "b.jsonl", BASE_EVENTS[:2])
        outcome = diff_traces(left, right)
        assert not outcome.identical
        assert outcome.index == 2
        assert "right trace ended after 2 events" in outcome.reason

    def test_headers_not_compared(self, tmp_path):
        left = tmp_path / "a.jsonl"
        right = tmp_path / "b.jsonl"
        with TraceWriter(left, meta={"created_unix": 1.0}) as writer:
            writer.append("round", 0.0, n=1, np=7)
        with TraceWriter(right, meta={"created_unix": 2.0}) as writer:
            writer.append("round", 0.0, n=1, np=7)
        assert diff_traces(left, right).identical


class TestCli:
    def test_diff_exit_codes(self, tmp_path, capsys):
        left = write_events(tmp_path / "a.jsonl", BASE_EVENTS)
        right = write_events(tmp_path / "b.jsonl", BASE_EVENTS)
        assert main(["diff", str(left), str(right)]) == 0
        mutated = list(BASE_EVENTS)
        mutated[1] = ("round", 0.2, {"n": 9, "np": 7})
        diverged = write_events(tmp_path / "c.jsonl", mutated)
        assert main(["diff", str(left), str(diverged)]) == 1
        out = capsys.readouterr().out
        assert "diverge at event index 1" in out

    def test_missing_file_is_usage_error(self, tmp_path):
        assert main(["summarize", str(tmp_path / "nope.jsonl")]) == 2

    def test_foreign_trace_is_usage_error(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text(json.dumps({"schema": "other/9"}) + "\n")
        assert main(["export", str(path)]) == 2

    def test_record_summarize_export_pipeline(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = main(
            [
                "record",
                "--scenario",
                "homogeneous",
                "--nodes",
                "8",
                "--seed",
                "3",
                "--out",
                str(trace),
                "--metrics-out",
                str(tmp_path / "metrics.json"),
            ]
        )
        assert code == 0
        assert trace.exists()
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["membership.members"] == 8.0

        assert main(["summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert TRACE_SCHEMA in out
        assert "events by kind" in out

        assert main(["export", str(trace)]) == 0
        exported = trace.with_suffix(".perfetto.json")
        assert json.loads(exported.read_text())["traceEvents"]

    def test_record_rejects_unknown_scenario(self):
        assert main(["record", "--scenario", "no-such-scenario"]) == 2

    def test_record_trace_only(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        code = main(
            [
                "record",
                "--scenario",
                "homogeneous",
                "--nodes",
                "6",
                "--no-metrics",
                "--include-kinds",
                "packet,round",
                "--out",
                str(trace),
            ]
        )
        assert code == 0
        from repro.telemetry.schema import iter_events

        kinds = {event["k"] for event in iter_events(trace)}
        assert kinds <= {"packet", "round"}
