"""Recorder purity and determinism: armed telemetry never changes a run."""

import json
from functools import partial

from repro.core.session import SessionConfig, run_session
from repro.sweep.summary import MetricsRequest, summarize
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.diff import diff_traces
from repro.telemetry.schema import iter_events, validate_trace
from repro.telemetry.recorder import callback_name

REQUEST = MetricsRequest(
    viewing_lags=(10.0, 20.0, float("inf")),
    window_lags=(20.0,),
    lag_cdf_grid=(0.0, 10.0),
    include_usage=True,
)


def small_config(**overrides) -> SessionConfig:
    defaults = dict(num_nodes=8, seed=11)
    defaults.update(overrides)
    return SessionConfig(**defaults)


def summary_of(config: SessionConfig):
    result = run_session(config)
    return result, summarize(result, REQUEST, cell_id="t", seed=config.seed)


class TestArmedVersusDisarmed:
    def test_fully_armed_run_matches_disarmed_summary(self, tmp_path):
        _, baseline = summary_of(small_config())
        _, traced = summary_of(
            small_config(
                telemetry=TelemetryConfig(
                    metrics=True, trace_path=str(tmp_path / "t.jsonl")
                )
            )
        )
        # PointSummary equality spans every figure-facing metric; the
        # telemetry layer must be pure observation.
        assert baseline == traced

    def test_metrics_only_run_matches(self):
        _, baseline = summary_of(small_config())
        _, metered = summary_of(small_config(telemetry=TelemetryConfig(metrics=True)))
        assert baseline == metered

    def test_disarmed_config_builds_no_telemetry(self):
        result = run_session(small_config(telemetry=TelemetryConfig(metrics=False)))
        assert result.telemetry is None

    def test_snapshot_collectors_agree_with_session_accounting(self):
        result = run_session(small_config(telemetry=TelemetryConfig(metrics=True)))
        snapshot = result.telemetry
        assert snapshot.metric("engine.events_dispatched") == float(
            result.events_processed
        )
        assert snapshot.metric("membership.members") == 8.0
        assert snapshot.metric("net.bytes_sent") > 0


class TestTraceDeterminism:
    def test_same_config_same_seed_identical_traces_modulo_header(self, tmp_path):
        for name in ("a.jsonl", "b.jsonl"):
            run_session(
                small_config(telemetry=TelemetryConfig(trace_path=str(tmp_path / name)))
            )
        outcome = diff_traces(tmp_path / "a.jsonl", tmp_path / "b.jsonl")
        assert outcome.identical, outcome.describe()
        assert outcome.events_compared > 0

    def test_trace_validates_structurally(self, tmp_path):
        path = tmp_path / "t.jsonl"
        result = run_session(small_config(telemetry=TelemetryConfig(trace_path=str(path))))
        header, count = validate_trace(path)
        assert count == result.telemetry.trace_events
        assert header.meta["seed"] == 11
        assert header.meta["num_nodes"] == 8
        assert "created_unix" in header.meta

    def test_datagram_seq_links_send_to_fate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        run_session(small_config(telemetry=TelemetryConfig(trace_path=str(path))))
        send_seqs = set()
        fate_seqs = set()
        for event in iter_events(path):
            if event["k"] == "send":
                assert event["d"] not in send_seqs, "datagram seq reused"
                send_seqs.add(event["d"])
            elif event["k"] in ("deliver_msg", "loss", "drop_dead"):
                fate_seqs.add(event["d"])
        # Every terminal fate refers back to an accepted send.
        assert fate_seqs <= send_seqs
        assert len(send_seqs) > 0


class TestFiltersAndSampling:
    def test_include_kinds_filters_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        run_session(
            small_config(
                telemetry=TelemetryConfig(
                    trace_path=str(path), include_kinds=("packet", "round")
                )
            )
        )
        kinds = {event["k"] for event in iter_events(path)}
        assert kinds == {"packet", "round"}
        validate_trace(path)

    def test_exclude_kinds_filters_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        result = run_session(
            small_config(
                telemetry=TelemetryConfig(trace_path=str(path), exclude_kinds=("dispatch",))
            )
        )
        assert "dispatch" not in result.telemetry.trace_events_by_kind
        assert result.telemetry.trace_events_by_kind["send"] > 0

    def test_seq_numbers_stable_under_send_filtering(self, tmp_path):
        """``d`` is assigned at acceptance even when ``send`` lines are
        filtered out, so fates carry the same seq either way."""
        full, filtered = tmp_path / "full.jsonl", tmp_path / "filtered.jsonl"
        run_session(small_config(telemetry=TelemetryConfig(trace_path=str(full))))
        run_session(
            small_config(
                telemetry=TelemetryConfig(trace_path=str(filtered), exclude_kinds=("send",))
            )
        )
        full_fates = [
            (event["t"], event["k"], event["d"])
            for event in iter_events(full)
            if event["k"] in ("deliver_msg", "loss", "drop_dead")
        ]
        filtered_fates = [
            (event["t"], event["k"], event["d"])
            for event in iter_events(filtered)
            if event["k"] in ("deliver_msg", "loss", "drop_dead")
        ]
        assert full_fates == filtered_fates

    def test_dispatch_sampling_thins_only_dispatch(self, tmp_path):
        full, sampled = tmp_path / "full.jsonl", tmp_path / "sampled.jsonl"
        a = run_session(small_config(telemetry=TelemetryConfig(trace_path=str(full))))
        b = run_session(
            small_config(telemetry=TelemetryConfig(trace_path=str(sampled), sample_every=10))
        )
        full_kinds = a.telemetry.trace_events_by_kind
        sampled_kinds = b.telemetry.trace_events_by_kind
        assert sampled_kinds["dispatch"] < full_kinds["dispatch"]
        # Ceiling division: every 10th dispatch, starting with the first.
        assert sampled_kinds["dispatch"] == -(-full_kinds["dispatch"] // 10)
        for kind in full_kinds:
            if kind != "dispatch":
                assert sampled_kinds[kind] == full_kinds[kind]


class TestTelemetryConfig:
    def test_armed_property(self):
        assert TelemetryConfig(metrics=True).armed
        assert TelemetryConfig(metrics=False, trace_path="x.jsonl").armed
        assert not TelemetryConfig(metrics=False).armed

    def test_unknown_kind_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            TelemetryConfig(include_kinds=("no-such-kind",))
        with pytest.raises(ValueError):
            TelemetryConfig(exclude_kinds=("nope",))

    def test_json_round_trip(self):
        config = TelemetryConfig(
            metrics=False,
            trace_path="out.jsonl",
            sample_every=5,
            include_kinds=("send", "packet"),
            exclude_kinds=(),
            flush_every=10,
        )
        restored = TelemetryConfig.from_json_dict(
            json.loads(json.dumps(config.to_json_dict()))
        )
        assert restored == config

    def test_round_trips_through_scenario_bundles(self):
        from repro.scenarios import build_scenario
        from repro.validation.bundle import spec_from_dict, spec_to_dict

        spec = build_scenario(
            "homogeneous",
            telemetry=TelemetryConfig(trace_path="t.jsonl", sample_every=3),
        )
        restored = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        assert restored == spec
        assert restored.telemetry.sample_every == 3


class TestCallbackName:
    def test_function_qualname(self):
        def local_fn():
            pass

        assert callback_name(local_fn).endswith("local_fn")

    def test_partial_unwraps(self):
        def target():
            pass

        assert callback_name(partial(target, 1)).endswith("target")

    def test_never_contains_memory_address(self):
        class Callable:
            def __call__(self):
                pass

        name = callback_name(Callable())
        assert "0x" not in name
