"""Perfetto exporter: valid trace_event JSON, flow pairing, window markers."""

import json

from repro.telemetry.export import export_perfetto, perfetto_events
from repro.telemetry.schema import TraceHeader, TraceWriter, read_header, iter_events

HEADER = TraceHeader(
    schema="repro.telemetry/1",
    meta={
        "num_nodes": 3,
        "stream": {
            "window_duration": 2.0,
            "num_windows": 2,
            "packets_per_window": 4,
            "start_time": 1.0,
            "end_time": 5.0,
        },
    },
)


def events_fixture():
    return [
        {"i": 0, "t": 0.5, "k": "send", "snd": 0, "rcv": 2, "mk": "serve", "sz": 1000, "d": 0, "fin": 0.51},
        {"i": 1, "t": 0.7, "k": "deliver_msg", "snd": 0, "rcv": 2, "mk": "serve", "sz": 1000, "d": 0},
        {"i": 2, "t": 0.8, "k": "send", "snd": 0, "rcv": 1, "mk": "serve", "sz": 1000, "d": 1, "fin": 0.81},
        {"i": 3, "t": 0.9, "k": "loss", "snd": 0, "rcv": 1, "mk": "serve", "sz": 1000, "d": 1},
        {"i": 4, "t": 1.0, "k": "drop_congestion", "snd": 1, "rcv": 2, "mk": "propose", "sz": 40},
        {"i": 5, "t": 1.1, "k": "packet", "n": 2, "p": 0, "source": False},
        {"i": 6, "t": 1.2, "k": "round", "n": 1, "np": 7},
        {"i": 7, "t": 1.3, "k": "node_failed", "n": 2},
        {"i": 8, "t": 1.4, "k": "dispatch", "fn": "GossipNode._on_gossip_round"},
    ]


class TestPerfettoEvents:
    def test_thread_metadata_names_every_node_and_the_source(self):
        events = perfetto_events(HEADER, events_fixture())
        metadata = [event for event in events if event["ph"] == "M"]
        names = {
            event.get("tid"): event["args"]["name"]
            for event in metadata
            if event["name"] == "thread_name"
        }
        assert names[0] == "source (node 0)"
        assert names[1] == "node 1" and names[2] == "node 2"
        assert any(event["name"] == "process_name" for event in metadata)

    def test_send_becomes_slice_with_flow_start(self):
        events = perfetto_events(HEADER, events_fixture())
        slices = [event for event in events if event["ph"] == "X" and event["name"] == "send serve"]
        assert len(slices) == 2
        assert slices[0]["tid"] == 0
        assert slices[0]["ts"] == 500_000
        assert slices[0]["dur"] >= 1
        starts = [event for event in events if event["ph"] == "s"]
        assert {event["id"] for event in starts} == {0, 1}

    def test_delivery_and_loss_close_their_flows(self):
        events = perfetto_events(HEADER, events_fixture())
        finishes = [event for event in events if event["ph"] == "f"]
        assert {event["id"] for event in finishes} == {0, 1}
        assert all(event["bp"] == "e" for event in finishes)
        # Flow 0 finishes on the receiving node's track.
        delivered = next(event for event in finishes if event["id"] == 0)
        assert delivered["tid"] == 2

    def test_window_deadline_markers_from_header_geometry(self):
        events = perfetto_events(HEADER, events_fixture())
        markers = [event for event in events if event.get("cat") == "stream" and "window" in event["name"]]
        assert len(markers) == 2
        assert markers[0]["ts"] == 3_000_000  # start 1.0 + 1 * window 2.0
        assert markers[1]["ts"] == 5_000_000
        assert all(event["s"] == "p" for event in markers)

    def test_dispatch_events_are_skipped(self):
        events = perfetto_events(HEADER, events_fixture())
        assert not any("dispatch" in str(event.get("name", "")) for event in events)

    def test_instants_for_drops_rounds_and_churn(self):
        events = perfetto_events(HEADER, events_fixture())
        names = [event["name"] for event in events if event["ph"] == "i"]
        assert "congestion drop (propose)" in names
        assert "gossip round" in names
        assert "node failed" in names
        assert "packet 0" in names


class TestExportPerfetto:
    def _write_trace(self, path):
        with TraceWriter(path, meta=HEADER.meta) as writer:
            for event in events_fixture():
                fields = {
                    key: value
                    for key, value in event.items()
                    if key not in ("i", "t", "k")
                }
                writer.append(event["k"], event["t"], **fields)
        return path

    def test_export_writes_loadable_json(self, tmp_path):
        trace = self._write_trace(tmp_path / "t.jsonl")
        out = export_perfetto(trace)
        assert out == tmp_path / "t.perfetto.json"
        document = json.loads(out.read_text())
        assert isinstance(document["traceEvents"], list)
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["schema"] == "repro.telemetry/1"
        assert len(document["traceEvents"]) > len(events_fixture()) - 1

    def test_export_honours_out_path(self, tmp_path):
        trace = self._write_trace(tmp_path / "t.jsonl")
        out = export_perfetto(trace, tmp_path / "sub" / "custom.json")
        assert out.exists()

    def test_export_matches_in_memory_conversion(self, tmp_path):
        trace = self._write_trace(tmp_path / "t.jsonl")
        document = json.loads(export_perfetto(trace).read_text())
        expected = perfetto_events(read_header(trace), iter_events(trace))
        assert document["traceEvents"] == json.loads(json.dumps(expected))
