"""Trace schema round-trip, structural validation and version gating."""

import json

import pytest

from repro.telemetry.schema import (
    EVENT_KINDS,
    TRACE_SCHEMA,
    TraceError,
    TraceWriter,
    iter_events,
    read_header,
    validate_trace,
)


def write_trace(path, events, meta=None, flush_every=1000):
    with TraceWriter(path, meta=meta, flush_every=flush_every) as writer:
        for kind, time, fields in events:
            writer.append(kind, time, **fields)
    return path


class TestWriterRoundTrip:
    def test_header_then_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace(
            path,
            [
                ("send", 0.5, {"snd": 0, "rcv": 3, "mk": "serve", "sz": 1000, "d": 0, "fin": 0.6}),
                ("deliver_msg", 0.7, {"snd": 0, "rcv": 3, "mk": "serve", "sz": 1000, "d": 0}),
            ],
            meta={"seed": 7},
        )
        header = read_header(path)
        assert header.schema == TRACE_SCHEMA
        assert header.major_version == 1
        assert header.meta == {"seed": 7}
        events = list(iter_events(path))
        assert [event["i"] for event in events] == [0, 1]
        assert [event["k"] for event in events] == ["send", "deliver_msg"]
        assert events[0]["d"] == 0 and events[0]["fin"] == 0.6

    def test_writer_counts(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with TraceWriter(path) as writer:
            writer.append("round", 0.0, n=1, np=7)
            writer.append("round", 0.1, n=2, np=7)
            writer.append("packet", 0.2, n=1, p=0, source=False)
            assert writer.events_written == 3
            assert writer.counts_by_kind == {"round": 2, "packet": 1}

    def test_flush_every_bounds_buffering(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path, flush_every=2)
        writer.append("round", 0.0, n=1, np=1)
        # One buffered line: only the header is on disk yet.
        assert len(path.read_text().strip().splitlines()) == 1
        writer.append("round", 0.1, n=2, np=1)
        assert len(path.read_text().strip().splitlines()) == 3
        writer.close()
        writer.close()  # idempotent

    def test_validate_trace_accepts_well_formed(self, tmp_path):
        path = write_trace(
            tmp_path / "t.jsonl",
            [("round", 0.0, {"n": 1, "np": 7}), ("round", 0.0, {"n": 2, "np": 7})],
        )
        header, count = validate_trace(path)
        assert count == 2
        assert header.schema == TRACE_SCHEMA


class TestVersioning:
    def test_foreign_schema_raises(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text(json.dumps({"schema": "someone.else/1", "meta": {}}) + "\n")
        with pytest.raises(TraceError, match="foreign schema"):
            read_header(path)

    def test_future_major_version_raises(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"schema": "repro.telemetry/2", "meta": {}}) + "\n")
        with pytest.raises(TraceError, match="major version"):
            read_header(path)

    def test_missing_schema_tag_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"meta": {}}) + "\n")
        with pytest.raises(TraceError, match="no schema tag"):
            read_header(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError):
            read_header(path)

    def test_non_json_header_raises(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError):
            read_header(path)


class TestStructuralValidation:
    def _trace_with_lines(self, tmp_path, lines):
        path = tmp_path / "t.jsonl"
        header = json.dumps({"schema": TRACE_SCHEMA, "meta": {}})
        path.write_text("\n".join([header] + lines) + "\n")
        return path

    def test_gap_in_index_raises(self, tmp_path):
        path = self._trace_with_lines(
            tmp_path,
            [
                json.dumps({"i": 0, "t": 0.0, "k": "round", "n": 1, "np": 1}),
                json.dumps({"i": 2, "t": 0.1, "k": "round", "n": 2, "np": 1}),
            ],
        )
        with pytest.raises(TraceError, match="event index"):
            validate_trace(path)

    def test_unknown_kind_raises(self, tmp_path):
        path = self._trace_with_lines(
            tmp_path, [json.dumps({"i": 0, "t": 0.0, "k": "not-a-kind"})]
        )
        with pytest.raises(TraceError, match="unknown kind"):
            validate_trace(path)

    def test_time_regression_raises(self, tmp_path):
        path = self._trace_with_lines(
            tmp_path,
            [
                json.dumps({"i": 0, "t": 5.0, "k": "round", "n": 1, "np": 1}),
                json.dumps({"i": 1, "t": 4.0, "k": "round", "n": 2, "np": 1}),
            ],
        )
        with pytest.raises(TraceError, match="regresses"):
            validate_trace(path)

    def test_every_kind_is_writable_and_validates(self, tmp_path):
        path = tmp_path / "all-kinds.jsonl"
        with TraceWriter(path) as writer:
            for kind in EVENT_KINDS:
                writer.append(kind, 1.0)
        _, count = validate_trace(path)
        assert count == len(EVENT_KINDS)
