"""Unit tests for the metrics registry: names, handles, histograms, collectors."""

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    render_metric_name,
)


class TestRenderMetricName:
    def test_plain_name(self):
        assert render_metric_name("engine.events_dispatched") == "engine.events_dispatched"

    def test_labels_sorted_by_key(self):
        rendered = render_metric_name("net.bytes_sent", {"kind": "serve", "dir": "up"})
        assert rendered == "net.bytes_sent{dir=up,kind=serve}"

    def test_empty_name_raises(self):
        with pytest.raises(MetricsError):
            render_metric_name("")


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4.0)
        assert counter.value == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(MetricsError):
            Counter("c").inc(-1.0)

    def test_gauge_replaces(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogramBuckets:
    """Upper-inclusive fixed buckets: bucket i counts bounds[i-1] < v <= bounds[i]."""

    def test_value_exactly_at_bound_lands_in_that_bucket(self):
        histogram = Histogram("h", (1.0, 2.0, 4.0))
        histogram.observe(2.0)
        assert histogram.counts == [0, 1, 0, 0]
        assert histogram.cumulative() == [(1.0, 0), (2.0, 1), (4.0, 1), (float("inf"), 1)]

    def test_value_below_first_bound_lands_in_first_bucket(self):
        histogram = Histogram("h", (1.0, 2.0))
        histogram.observe(-5.0)
        histogram.observe(0.0)
        assert histogram.counts == [2, 0, 0]

    def test_value_above_last_bound_lands_in_overflow(self):
        histogram = Histogram("h", (1.0, 2.0))
        histogram.observe(2.0001)
        histogram.observe(1e9)
        assert histogram.counts == [0, 0, 2]
        assert histogram.cumulative()[-1] == (float("inf"), 2)

    def test_sum_and_total(self):
        histogram = Histogram("h", (10.0,))
        histogram.observe(3.0)
        histogram.observe(4.5)
        assert histogram.total == 2
        assert histogram.sum == pytest.approx(7.5)

    def test_bounds_must_be_strictly_increasing(self):
        with pytest.raises(MetricsError):
            Histogram("h", (1.0, 1.0))
        with pytest.raises(MetricsError):
            Histogram("h", (2.0, 1.0))

    def test_bounds_must_be_finite_and_non_empty(self):
        with pytest.raises(MetricsError):
            Histogram("h", ())
        with pytest.raises(MetricsError):
            Histogram("h", (1.0, float("inf")))


class TestMetricsRegistry:
    def test_handles_are_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("net.datagrams", fate="accepted")
        second = registry.counter("net.datagrams", fate="accepted")
        assert first is second
        first.inc()
        assert registry.snapshot()["net.datagrams{fate=accepted}"] == 1.0

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")

    def test_histogram_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(MetricsError):
            registry.histogram("h", (1.0, 3.0))
        # Same bounds: fine, same handle.
        assert registry.histogram("h", (1.0, 2.0)) is registry.histogram("h", (1.0, 2.0))

    def test_snapshot_expands_histograms_prometheus_style(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", (1.0, 2.0), kind="serve")
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(9.0)
        snap = registry.snapshot()
        assert snap["lat{kind=serve,le=1}"] == 1.0
        assert snap["lat{kind=serve,le=2}"] == 2.0
        assert snap["lat{kind=serve,le=+Inf}"] == 3.0
        assert snap["lat_count{kind=serve}"] == 3.0
        assert snap["lat_sum{kind=serve}"] == pytest.approx(11.0)

    def test_snapshot_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z.last")
        registry.counter("a.first")
        assert list(registry.snapshot()) == ["a.first", "z.last"]

    def test_collector_merged_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"value": 1.0}
        registry.register_collector(lambda: {"engine.events_dispatched": state["value"]})
        assert registry.snapshot()["engine.events_dispatched"] == 1.0
        state["value"] = 7.0
        assert registry.snapshot()["engine.events_dispatched"] == 7.0

    def test_collector_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        registry.register_collector(lambda: {"x": 1.0})
        with pytest.raises(MetricsError):
            registry.snapshot()

    def test_table_renders_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2.0)
        registry.gauge("b").set(0.5)
        table = registry.table()
        assert "a" in table and "2" in table
        assert "b" in table and "0.5" in table

    def test_empty_registry(self):
        registry = MetricsRegistry()
        assert len(registry) == 0
        assert registry.snapshot() == {}
        assert registry.table() == "(no metrics)"
