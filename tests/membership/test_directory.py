"""Unit tests for the membership directory."""

import math

import pytest

from repro.membership.directory import MembershipDirectory


class TestMembership:
    def test_add_and_contains(self):
        directory = MembershipDirectory()
        directory.add(1)
        directory.add(2)
        assert 1 in directory
        assert 3 not in directory
        assert len(directory) == 2
        assert directory.members() == [1, 2]

    def test_add_all(self):
        directory = MembershipDirectory()
        directory.add_all(range(5))
        assert len(directory) == 5

    def test_duplicate_add_rejected(self):
        directory = MembershipDirectory()
        directory.add(1)
        with pytest.raises(ValueError):
            directory.add(1)

    def test_negative_detection_delay_rejected(self):
        with pytest.raises(ValueError):
            MembershipDirectory(detection_delay=-1.0)


class TestFailures:
    def test_mark_failed_records_time(self):
        directory = MembershipDirectory()
        directory.add_all(range(3))
        directory.mark_failed(1, time=10.0)
        assert directory.is_failed(1)
        assert directory.failed_at(1) == 10.0
        assert not directory.is_failed(0)

    def test_mark_failed_unknown_node_rejected(self):
        directory = MembershipDirectory()
        with pytest.raises(KeyError):
            directory.mark_failed(7, time=1.0)

    def test_first_failure_time_is_kept(self):
        directory = MembershipDirectory()
        directory.add(1)
        directory.mark_failed(1, time=5.0)
        directory.mark_failed(1, time=9.0)
        assert directory.failed_at(1) == 5.0

    def test_mark_recovered_clears_failure(self):
        directory = MembershipDirectory()
        directory.add(1)
        directory.mark_failed(1, time=5.0)
        directory.mark_recovered(1)
        assert not directory.is_failed(1)

    def test_alive_members_excludes_failed(self):
        directory = MembershipDirectory()
        directory.add_all(range(4))
        directory.mark_failed(2, time=1.0)
        assert directory.alive_members() == [0, 1, 3]


class TestSelectable:
    def test_excludes_self(self):
        directory = MembershipDirectory()
        directory.add_all(range(4))
        assert 2 not in directory.selectable(now=0.0, exclude=2)

    def test_failed_node_still_selectable_before_detection(self):
        directory = MembershipDirectory(detection_delay=5.0)
        directory.add_all(range(4))
        directory.mark_failed(1, time=10.0)
        assert 1 in directory.selectable(now=12.0)

    def test_failed_node_removed_after_detection_delay(self):
        directory = MembershipDirectory(detection_delay=5.0)
        directory.add_all(range(4))
        directory.mark_failed(1, time=10.0)
        assert 1 not in directory.selectable(now=15.0)
        assert 1 not in directory.selectable(now=100.0)

    def test_zero_detection_delay_removes_immediately(self):
        directory = MembershipDirectory(detection_delay=0.0)
        directory.add_all(range(3))
        directory.mark_failed(2, time=4.0)
        assert 2 not in directory.selectable(now=4.0)

    def test_infinite_detection_delay_never_removes(self):
        directory = MembershipDirectory(detection_delay=math.inf)
        directory.add_all(range(3))
        directory.mark_failed(2, time=4.0)
        assert 2 in directory.selectable(now=1e9)


class TestChurnCandidates:
    def test_protected_nodes_excluded(self):
        directory = MembershipDirectory()
        directory.add_all(range(5))
        candidates = directory.churn_candidates(protected=[0])
        assert 0 not in candidates
        assert set(candidates) == {1, 2, 3, 4}

    def test_already_failed_nodes_excluded(self):
        directory = MembershipDirectory()
        directory.add_all(range(5))
        directory.mark_failed(3, time=1.0)
        assert 3 not in directory.churn_candidates()


class TestSelectableCache:
    """The selectable() cache must be invisible: every call returns exactly
    what a fresh scan would, through every invalidation edge (membership
    mutation, detection deadlines crossing, time moving backwards)."""

    @staticmethod
    def _fresh_scan(directory, now, exclude=None):
        """The pre-cache reference implementation."""
        result = []
        for node_id in directory.members():
            if node_id == exclude:
                continue
            failed = directory.failed_at(node_id)
            if failed is not None and now >= failed + directory.detection_delay:
                continue
            result.append(node_id)
        return result

    def _assert_matches_scan(self, directory, now, excludes):
        for exclude in excludes:
            assert directory.selectable(now, exclude) == self._fresh_scan(
                directory, now, exclude
            ), (now, exclude)

    def test_cache_tracks_every_mutation_and_deadline(self):
        directory = MembershipDirectory(detection_delay=5.0)
        directory.add_all(range(8))
        excludes = [None, 0, 3, 7, 99]  # 99: excluding a non-member is a no-op
        self._assert_matches_scan(directory, 0.0, excludes)
        self._assert_matches_scan(directory, 0.0, excludes)  # cached hit

        directory.mark_failed(2, time=1.0)
        directory.mark_failed(5, time=2.0)
        for now in (1.0, 3.0, 5.999, 6.0, 6.5, 7.0, 10.0):  # crosses both deadlines
            self._assert_matches_scan(directory, now, excludes)

        directory.mark_recovered(2)
        self._assert_matches_scan(directory, 10.0, excludes)
        directory.add(8)
        self._assert_matches_scan(directory, 10.0, excludes + [8])

    def test_time_moving_backwards_invalidates(self):
        # Two nodes asking at slightly different times within one round go
        # through selectable() with non-monotonic `now` values.
        directory = MembershipDirectory(detection_delay=4.0)
        directory.add_all(range(5))
        directory.mark_failed(1, time=0.0)
        assert directory.selectable(5.0) == self._fresh_scan(directory, 5.0)  # 1 detected
        assert directory.selectable(3.0) == self._fresh_scan(directory, 3.0)  # 1 visible again

    def test_detection_delay_change_invalidates(self):
        directory = MembershipDirectory(detection_delay=100.0)
        directory.add_all(range(4))
        directory.mark_failed(0, time=0.0)
        assert 0 in directory.selectable(50.0)
        directory.detection_delay = 10.0
        assert 0 not in directory.selectable(50.0)

    def test_exclusion_preserves_order_and_content(self):
        directory = MembershipDirectory(detection_delay=5.0)
        directory.add_all([10, 20, 30, 40])
        directory.mark_failed(20, time=0.0)
        assert directory.selectable(1.0, exclude=30) == [10, 20, 40]
        assert directory.selectable(10.0, exclude=30) == [10, 40]
        # The exclusion copy must not leak into the cached base list.
        assert directory.selectable(10.0) == [10, 30, 40]
