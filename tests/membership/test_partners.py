"""Unit tests for partner selection (the X and feed-me mechanisms)."""

import random

import pytest

from repro.membership.directory import MembershipDirectory
from repro.membership.partners import INFINITE, PartnerSelector, recommended_fanout


def make_selector(fanout=3, refresh_every=1, node_id=0, num_nodes=10, seed=1):
    directory = MembershipDirectory()
    directory.add_all(range(num_nodes))
    selector = PartnerSelector(
        node_id=node_id,
        directory=directory,
        fanout=fanout,
        refresh_every=refresh_every,
        rng=random.Random(seed),
    )
    return selector, directory


class TestSampling:
    def test_returns_fanout_partners(self):
        selector, __ = make_selector(fanout=4)
        partners = selector.partners_for_round(now=0.0)
        assert len(partners) == 4

    def test_never_includes_self(self):
        selector, __ = make_selector(fanout=9, node_id=3)
        for _ in range(20):
            assert 3 not in selector.partners_for_round(now=0.0)

    def test_no_duplicates_in_one_round(self):
        selector, __ = make_selector(fanout=6)
        partners = selector.partners_for_round(now=0.0)
        assert len(partners) == len(set(partners))

    def test_fanout_capped_by_population(self):
        selector, __ = make_selector(fanout=50, num_nodes=5)
        partners = selector.partners_for_round(now=0.0)
        assert len(partners) == 4

    def test_empty_directory_gives_empty_partners(self):
        directory = MembershipDirectory()
        directory.add(0)
        selector = PartnerSelector(0, directory, fanout=3, refresh_every=1, rng=random.Random(1))
        assert selector.partners_for_round(now=0.0) == []

    def test_invalid_fanout_rejected(self):
        directory = MembershipDirectory()
        directory.add_all(range(3))
        with pytest.raises(ValueError):
            PartnerSelector(0, directory, fanout=0, refresh_every=1, rng=random.Random(1))

    def test_invalid_refresh_rejected(self):
        directory = MembershipDirectory()
        directory.add_all(range(3))
        with pytest.raises(ValueError):
            PartnerSelector(0, directory, fanout=2, refresh_every=0.5, rng=random.Random(1))


class TestRefreshRate:
    def test_x_equal_one_changes_every_round(self):
        selector, __ = make_selector(fanout=3, refresh_every=1, num_nodes=30)
        rounds = [tuple(selector.partners_for_round(now=0.0)) for _ in range(10)]
        assert len(set(rounds)) > 1
        assert selector.refresh_count == 10

    def test_x_infinite_never_changes(self):
        selector, __ = make_selector(fanout=3, refresh_every=INFINITE, num_nodes=30)
        first = selector.partners_for_round(now=0.0)
        for _ in range(20):
            assert selector.partners_for_round(now=0.0) == first
        assert selector.refresh_count == 1

    def test_x_equal_three_keeps_set_for_three_rounds(self):
        selector, __ = make_selector(fanout=3, refresh_every=3, num_nodes=30)
        rounds = [tuple(selector.partners_for_round(now=0.0)) for _ in range(9)]
        assert rounds[0] == rounds[1] == rounds[2]
        assert rounds[3] == rounds[4] == rounds[5]
        assert rounds[6] == rounds[7] == rounds[8]
        assert selector.refresh_count == 3

    def test_static_view_keeps_failed_partner(self):
        selector, directory = make_selector(fanout=3, refresh_every=INFINITE, num_nodes=10)
        first = selector.partners_for_round(now=0.0)
        victim = first[0]
        directory.mark_failed(victim, time=1.0)
        later = selector.partners_for_round(now=100.0)
        assert victim in later

    def test_dynamic_view_avoids_detected_failures(self):
        selector, directory = make_selector(fanout=3, refresh_every=1, num_nodes=6)
        directory.detection_delay = 0.0
        directory.mark_failed(1, time=0.0)
        for _ in range(20):
            assert 1 not in selector.partners_for_round(now=1.0)

    def test_reset_forces_resample(self):
        selector, __ = make_selector(fanout=3, refresh_every=INFINITE, num_nodes=30)
        selector.partners_for_round(now=0.0)
        selector.reset()
        selector.partners_for_round(now=0.0)
        assert selector.refresh_count == 2


class TestFeedMe:
    def test_insert_requester_replaces_one_partner(self):
        selector, __ = make_selector(fanout=3, refresh_every=INFINITE, num_nodes=10, node_id=0)
        before = set(selector.partners_for_round(now=0.0))
        new_partner = next(n for n in range(1, 10) if n not in before)
        changed = selector.insert_requester(new_partner, now=0.0)
        after = set(selector.current_partners())
        assert changed
        assert new_partner in after
        assert len(after) == 3
        assert len(before - after) == 1

    def test_insert_existing_partner_is_noop(self):
        selector, __ = make_selector(fanout=3, refresh_every=INFINITE, num_nodes=10)
        partners = selector.partners_for_round(now=0.0)
        assert not selector.insert_requester(partners[0], now=0.0)

    def test_insert_self_is_rejected(self):
        selector, __ = make_selector(fanout=3, node_id=0)
        assert not selector.insert_requester(0, now=0.0)

    def test_insert_before_first_round_initializes_view(self):
        selector, __ = make_selector(fanout=3, refresh_every=INFINITE, num_nodes=10, node_id=0)
        selector.insert_requester(5, now=0.0)
        assert 5 in selector.current_partners() or len(selector.current_partners()) == 3

    def test_pick_feed_me_targets_excludes_self(self):
        selector, __ = make_selector(fanout=4, node_id=2, num_nodes=12)
        targets = selector.pick_feed_me_targets(now=0.0)
        assert len(targets) == 4
        assert 2 not in targets


class TestRecommendedFanout:
    def test_matches_ln_n_plus_margin(self):
        assert recommended_fanout(230, margin=2) == 8
        assert recommended_fanout(60, margin=2) == 7

    def test_small_system_rejected(self):
        with pytest.raises(ValueError):
            recommended_fanout(1)
