"""Unit tests for churn schedules and the churn injector."""

import random

import pytest

from repro.membership.churn import (
    CatastrophicChurn,
    ChurnEvent,
    ChurnInjector,
    NoChurn,
    StaggeredChurn,
)
from repro.simulation.engine import Simulator


class TestChurnEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ChurnEvent(time=-1.0, victims=(1,))


class TestNoChurn:
    def test_produces_no_events(self):
        assert NoChurn().events(list(range(10)), random.Random(1)) == []


class TestCatastrophicChurn:
    def test_kills_requested_fraction(self):
        schedule = CatastrophicChurn(time=30.0, fraction=0.4)
        events = schedule.events(list(range(100)), random.Random(1))
        assert len(events) == 1
        assert events[0].time == 30.0
        assert len(events[0].victims) == 40

    def test_zero_fraction_produces_no_event(self):
        schedule = CatastrophicChurn(time=30.0, fraction=0.0)
        assert schedule.events(list(range(100)), random.Random(1)) == []

    def test_full_fraction_kills_everyone(self):
        schedule = CatastrophicChurn(time=5.0, fraction=1.0)
        events = schedule.events(list(range(20)), random.Random(1))
        assert len(events[0].victims) == 20

    def test_victims_are_members_of_candidates(self):
        candidates = list(range(50, 90))
        schedule = CatastrophicChurn(time=5.0, fraction=0.5)
        events = schedule.events(candidates, random.Random(3))
        assert set(events[0].victims) <= set(candidates)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            CatastrophicChurn(time=1.0, fraction=1.5)

    def test_describe_mentions_fraction(self):
        assert "20%" in CatastrophicChurn(time=1.0, fraction=0.2).describe()

    def test_deterministic_given_rng(self):
        schedule = CatastrophicChurn(time=1.0, fraction=0.3)
        first = schedule.events(list(range(40)), random.Random(7))
        second = schedule.events(list(range(40)), random.Random(7))
        assert first == second


class TestStaggeredChurn:
    def test_spreads_failures_over_batches(self):
        schedule = StaggeredChurn(start=10.0, fraction=0.5, batches=5, interval=2.0)
        events = schedule.events(list(range(100)), random.Random(1))
        assert len(events) == 5
        assert [event.time for event in events] == [10.0, 12.0, 14.0, 16.0, 18.0]
        total_victims = sum(len(event.victims) for event in events)
        assert total_victims == 50

    def test_no_overlap_between_batches(self):
        schedule = StaggeredChurn(start=0.0, fraction=0.6, batches=3, interval=1.0)
        events = schedule.events(list(range(30)), random.Random(2))
        all_victims = [victim for event in events for victim in event.victims]
        assert len(all_victims) == len(set(all_victims))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StaggeredChurn(start=0.0, fraction=0.5, batches=0, interval=1.0)


class TestChurnInjector:
    def test_applies_failures_at_scheduled_time(self):
        simulator = Simulator(seed=1)
        failed = []
        injector = ChurnInjector(
            simulator, CatastrophicChurn(time=5.0, fraction=0.5), on_fail=failed.extend
        )
        injector.arm(list(range(10)), random.Random(1))
        simulator.run(until=4.9)
        assert failed == []
        simulator.run(until=5.1)
        assert len(failed) == 5
        assert injector.failed_nodes == failed

    def test_planned_events_exposed(self):
        simulator = Simulator(seed=1)
        injector = ChurnInjector(
            simulator, CatastrophicChurn(time=5.0, fraction=0.2), on_fail=lambda v: None
        )
        events = injector.arm(list(range(20)), random.Random(1))
        assert injector.planned_events == events
        assert len(events[0].victims) == 4
