"""Invariant checkers: clean runs pass, injected faults are caught."""

import pytest

from repro.core.messages import SERVE, ServePayload, ServedPacket
from repro.network.bandwidth import UploadLimiter
from repro.network.message import Message
from repro.scenarios import build_scenario
from repro.scenarios.builder import build_session
from repro.validation import (
    EventTimeMonotonicity,
    InvariantSuite,
    InvariantViolation,
    validate_session,
)


def _armed_session(scenario="homogeneous", **overrides):
    overrides.setdefault("num_nodes", 14)
    overrides.setdefault("seed", 9)
    session = build_session(build_scenario(scenario, **overrides))
    session.build()
    suite = InvariantSuite.default().attach(session)
    return session, suite


class TestCleanRunsPass:
    @pytest.mark.parametrize(
        "scenario",
        ["homogeneous", "heterogeneous-bandwidth", "churn-window", "flash-crowd",
         "lossy-wan", "eager-push"],
    )
    def test_every_shipped_scenario_satisfies_all_invariants(self, scenario):
        spec = build_scenario(scenario, num_nodes=16, seed=5)
        result = validate_session(build_session(spec))
        assert result.events_processed > 0

    def test_conformance_checker_skips_one_phase_protocols(self):
        session, suite = _armed_session("eager-push")
        names = [invariant.name for invariant in suite.attached]
        assert "protocol-conformance" not in names
        session.run()

    def test_conformance_checker_arms_for_three_phase(self):
        _, suite = _armed_session("homogeneous")
        assert "protocol-conformance" in [inv.name for inv in suite.attached]

    def test_reattaching_to_the_same_session_is_a_noop(self):
        """validate_session on a pre-attached suite must not double-register
        the observers (which would trip packet-conservation spuriously)."""
        session, suite = _armed_session()
        attached_before = suite.attached
        result = validate_session(session, suite)  # re-attaches internally
        assert suite.attached == attached_before
        assert result.events_processed > 0

    def test_attaching_to_a_second_session_is_rejected(self):
        _, suite = _armed_session()
        other = build_session(build_scenario("homogeneous", num_nodes=14, seed=9))
        other.build()
        with pytest.raises(ValueError, match="already attached"):
            suite.attach(other)


class TestBandwidthCapInvariant:
    def test_limiter_bypass_is_caught(self, monkeypatch):
        """The acceptance fault: a transport that exceeds its upload cap."""
        original = UploadLimiter.enqueue

        def cheating(self, size_bytes, now):
            finish = original(self, size_bytes, now)
            # Skip the serialization delay: bytes leave instantly, so the
            # node's effective upload rate is unbounded.
            return now if finish is not None else None

        monkeypatch.setattr(UploadLimiter, "enqueue", cheating)
        session, suite = _armed_session()
        with pytest.raises(InvariantViolation) as excinfo:
            suite.finalize(session.run())
        assert excinfo.value.invariant == "bandwidth-cap"
        assert excinfo.value.event_index >= 0

    def test_backlog_overflow_is_caught(self):
        session, suite = _armed_session()
        checker = next(
            inv for inv in suite.attached if inv.name == "bandwidth-cap"
        )
        message = Message(sender=1, receiver=2, kind=SERVE, size_bytes=1000)
        # A finish time 25 s out implies a backlog far past the configured
        # 10 s bound — a correct limiter would have dropped this datagram.
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_send_accepted(message, now=0.0, finish_time=25.0)
        assert excinfo.value.invariant == "bandwidth-cap"
        assert "backlog" in str(excinfo.value)


class TestPacketConservationInvariant:
    def test_forged_delivery_is_caught(self):
        session, suite = _armed_session()
        forged = Message(
            sender=3,
            receiver=5,
            kind=SERVE,
            size_bytes=1040,
            payload=ServePayload(packet=ServedPacket(packet_id=0, size_bytes=1000)),
        )
        # Inject a datagram straight into delivery, bypassing send():
        # "every received shard was sent" must fire.
        session.simulator.schedule(1.0, session.network._deliver, forged)
        with pytest.raises(InvariantViolation) as excinfo:
            suite.finalize(session.run())
        assert excinfo.value.invariant == "packet-conservation"
        assert "never accepted" in str(excinfo.value)

    def test_delivery_log_tampering_is_caught_at_finalize(self):
        session, suite = _armed_session()
        result = session.run()
        # Tamper post-run: the log claims a delivery nobody observed.
        result.deliveries.record(5, 10_000, 1.0)
        with pytest.raises(InvariantViolation) as excinfo:
            suite.finalize(result)
        assert excinfo.value.invariant == "packet-conservation"
        assert "delivery log" in str(excinfo.value)


class TestProtocolConformanceInvariant:
    def test_unsolicited_serve_is_caught(self):
        session, suite = _armed_session()
        node = session.nodes[4]
        # The stream's last packet is published ~17 s in; at t = 1 s nobody
        # can have legitimately requested it yet.
        future_packet = session.schedule.num_packets - 1
        payload = ServePayload(packet=ServedPacket(packet_id=future_packet, size_bytes=1000))

        def rogue_serve():
            node.send(7, SERVE, 1040, payload)

        session.simulator.schedule(1.0, rogue_serve)
        with pytest.raises(InvariantViolation) as excinfo:
            suite.finalize(session.run())
        assert excinfo.value.invariant == "protocol-conformance"
        assert "without a matching REQUEST" in str(excinfo.value)


class TestChurnHygieneInvariant:
    def test_zombie_sender_is_caught(self):
        session, suite = _armed_session()
        network = session.network

        def half_fail():
            # Fail node 6 at the network level (observers learn of the
            # departure) but resurrect its endpoint without the recovery
            # edge: its still-running timers now leak traffic from a node
            # the rest of the system believes is gone.
            network.fail_node(6)
            network._endpoints[6].alive = True

        session.simulator.schedule(1.0, half_fail)
        with pytest.raises(InvariantViolation) as excinfo:
            suite.finalize(session.run())
        assert excinfo.value.invariant == "churn-hygiene"

    def test_recovery_edge_clears_the_failure(self):
        session, suite = _armed_session()
        network = session.network

        def bounce():
            network.fail_node(6)
            network.recover_node(6)

        session.simulator.schedule(1.0, bounce)
        suite.finalize(session.run())  # no violation: the node recovered


class TestEventTimeMonotonicityInvariant:
    def test_decreasing_dispatch_time_is_caught(self):
        session, _ = _armed_session()
        checker = EventTimeMonotonicity()
        checker.bind(session)
        checker.on_event_dispatch(2.0, lambda: None, ())
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_event_dispatch(1.0, lambda: None, ())
        assert excinfo.value.invariant == "event-time-monotonicity"

    def test_equal_times_are_fine(self):
        session, _ = _armed_session()
        checker = EventTimeMonotonicity()
        checker.bind(session)
        checker.on_event_dispatch(2.0, lambda: None, ())
        checker.on_event_dispatch(2.0, lambda: None, ())


class TestViolationCoordinates:
    def test_violation_carries_invariant_and_event_index(self, monkeypatch):
        original = UploadLimiter.enqueue
        monkeypatch.setattr(
            UploadLimiter,
            "enqueue",
            lambda self, size_bytes, now: (
                now if original(self, size_bytes, now) is not None else None
            ),
        )
        indices = []
        for _ in range(2):
            session, suite = _armed_session()
            with pytest.raises(InvariantViolation) as excinfo:
                suite.finalize(session.run())
            indices.append(excinfo.value.event_index)
        # Deterministic coordinates: same code + spec + seed, same index.
        assert indices[0] == indices[1] >= 0
