"""Repro bundles: spec serialization round-trips and bundle IO."""

import json

import pytest

from repro.membership.churn import CatastrophicChurn, StaggeredChurn
from repro.membership.join import FlashCrowdJoin
from repro.membership.partners import INFINITE
from repro.scenarios import build_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.streaming.schedule import StreamConfig
from repro.validation import ReproBundle, ScenarioFuzzer, spec_from_dict, spec_to_dict


def _specs():
    stream = StreamConfig.scaled_down(num_windows=6)
    base = build_scenario("homogeneous")
    yield base
    yield build_scenario("heterogeneous-bandwidth")
    yield base.with_overrides(
        name="with-churn",
        stream=stream,
        churn=CatastrophicChurn(time=stream.duration * 0.5, fraction=0.3),
    )
    yield base.with_overrides(
        name="with-staggered-churn",
        stream=stream,
        churn=StaggeredChurn(start=1.0, fraction=0.4, batches=3, interval=0.5),
    )
    yield base.with_overrides(
        name="with-join",
        stream=stream,
        join=FlashCrowdJoin(time=stream.duration * 0.4, fraction=0.3),
    )
    yield base.with_overrides(name="with-feed-me", feed_me_every=5)
    yield base.with_overrides(name="uncapped", upload_cap_kbps=None)


class TestSpecSerialization:
    @pytest.mark.parametrize("spec", list(_specs()), ids=lambda spec: spec.name)
    def test_round_trip(self, spec):
        data = spec_to_dict(spec)
        json.dumps(data)  # must be plain JSON, inf and all
        rebuilt = spec_from_dict(data)
        assert spec_to_dict(rebuilt) == data

    def test_infinite_feed_me_is_json_safe(self):
        spec = build_scenario("homogeneous")
        assert spec.feed_me_every == INFINITE
        data = spec_to_dict(spec)
        assert data["feed_me_every"] == "inf"
        assert spec_from_dict(data).feed_me_every == INFINITE

    def test_fuzzer_specs_all_round_trip(self):
        fuzzer = ScenarioFuzzer(5)
        for index in range(20):
            spec = fuzzer.derive_case(index).spec
            assert spec_to_dict(spec_from_dict(spec_to_dict(spec))) == spec_to_dict(spec)

    def test_exotic_schedule_raises_instead_of_dropping(self):
        class Unserializable:
            time = 1.0

        stream = StreamConfig.scaled_down(num_windows=6)
        spec = ScenarioSpec(name="weird", stream=stream, churn=Unserializable())
        with pytest.raises(ValueError, match="cannot serialize"):
            spec_to_dict(spec)


class TestBundleIo:
    def _bundle(self):
        return ReproBundle(
            campaign_seed=7,
            case_index=3,
            spec=build_scenario("homogeneous"),
            invariant="bandwidth-cap",
            event_index=1549,
            message="[bandwidth-cap] at event 1549: boom",
            code_fingerprint="abc123",
        )

    def test_write_and_load(self, tmp_path):
        path = self._bundle().write(tmp_path / "nested" / "bundle.json")
        loaded = ReproBundle.load(path)
        assert loaded.case_id == "fuzz-7-3"
        assert loaded.invariant == "bandwidth-cap"
        assert loaded.event_index == 1549
        assert loaded.code_fingerprint == "abc123"
        assert spec_to_dict(loaded.spec) == spec_to_dict(self._bundle().spec)

    def test_bundle_is_human_readable_json(self, tmp_path):
        path = self._bundle().write(tmp_path / "bundle.json")
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["format"] == "repro.validation.bundle/v1"
        assert data["spec"]["num_nodes"] == 40

    def test_foreign_json_is_rejected(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"cell_id": "not-a-bundle"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a repro bundle"):
            ReproBundle.load(path)
