"""The observer hook layer: edges fire correctly and change nothing."""

import pytest

from repro.core.messages import PROPOSE
from repro.network.bandwidth import BandwidthCap
from repro.network.latency import ConstantLatency
from repro.network.loss import UniformLoss
from repro.network.message import Message
from repro.network.transport import Network
from repro.scenarios import build_scenario
from repro.scenarios.builder import build_session
from repro.simulation.engine import Simulator
from repro.sweep.summary import MetricsRequest, summarize
from repro.validation import (
    InvariantSuite,
    SessionObserver,
    attach_session_observer,
    detach_session_observer,
    validate_session,
)


class RecordingObserver(SessionObserver):
    """Appends every edge it sees as a (edge name, detail) tuple."""

    def __init__(self):
        self.events = []

    def on_event_dispatch(self, time, callback, args):
        self.events.append(("dispatch", time))

    def on_send_blocked(self, message, now):
        self.events.append(("send_blocked", message.kind))

    def on_send_accepted(self, message, now, finish_time):
        self.events.append(("send_accepted", message.kind, now, finish_time))

    def on_congestion_drop(self, message, now):
        self.events.append(("congestion_drop", message.kind))

    def on_in_flight_loss(self, message, now):
        self.events.append(("in_flight_loss", message.kind))

    def on_delivered(self, message, now):
        self.events.append(("delivered", message.kind))

    def on_delivery_dropped(self, message, now):
        self.events.append(("delivery_dropped", message.kind))

    def on_node_failed(self, node_id, now):
        self.events.append(("node_failed", node_id))

    def on_node_recovered(self, node_id, now):
        self.events.append(("node_recovered", node_id))

    def on_packet_delivered(self, node_id, packet_id, time, is_source):
        self.events.append(("packet_delivered", node_id, packet_id))

    def of_kind(self, name):
        return [event for event in self.events if event[0] == name]


def _message(sender=0, receiver=1, kind=PROPOSE, size_bytes=100):
    return Message(sender=sender, receiver=receiver, kind=kind, size_bytes=size_bytes)


class TestSimulatorObserver:
    def test_dispatch_edge_fires_per_event_with_nondecreasing_times(self):
        simulator = Simulator(seed=1)
        observer = RecordingObserver()
        simulator.add_observer(observer)
        simulator.schedule(0.5, lambda: None)
        simulator.schedule(0.1, lambda: None)
        simulator.schedule(0.1, lambda: None)
        simulator.run_until_idle()
        times = [time for _, time in observer.events]
        assert times == [0.1, 0.1, 0.5]

    def test_dispatch_edge_sees_callback_and_args(self):
        simulator = Simulator(seed=1)
        seen = []
        observer = RecordingObserver()
        observer.on_event_dispatch = lambda time, callback, args: seen.append(
            (time, callback, args)
        )
        simulator.add_observer(observer)
        simulator.schedule(1.0, seen.append, "payload")
        simulator.run_until_idle()
        assert seen[0][0] == 1.0
        assert seen[0][2] == ("payload",)

    def test_remove_observer_restores_silence(self):
        simulator = Simulator(seed=1)
        observer = RecordingObserver()
        simulator.add_observer(observer)
        simulator.remove_observer(observer)
        simulator.schedule(0.1, lambda: None)
        simulator.run_until_idle()
        assert observer.events == []
        assert simulator._observers is None  # zero-cost path restored


class TestTransportObserver:
    def _network(self, simulator, loss=None):
        network = Network(simulator, latency_model=ConstantLatency(0.05), loss_model=loss)
        observer = RecordingObserver()
        network.add_observer(observer)
        return network, observer

    def test_accept_and_deliver_edges(self, simulator):
        network, observer = self._network(simulator)
        network.register(0, lambda m: None)
        network.register(1, lambda m: None)
        assert network.send(_message())
        simulator.run_until_idle()
        assert observer.of_kind("send_accepted")
        assert observer.of_kind("delivered")

    def test_send_blocked_edge_for_dead_or_unknown_sender(self, simulator):
        network, observer = self._network(simulator)
        network.register(1, lambda m: None)
        assert not network.send(_message(sender=9))
        network.register(9, lambda m: None)
        network.fail_node(9)
        assert not network.send(_message(sender=9))
        assert len(observer.of_kind("send_blocked")) == 2

    def test_congestion_drop_edge(self, simulator):
        network, observer = self._network(simulator)
        # 8 kbps cap, 1 s backlog: a second 1000-byte datagram cannot fit.
        cap = BandwidthCap.from_kbps(8.0, max_backlog_seconds=1.0)
        network.register(0, lambda m: None, cap)
        network.register(1, lambda m: None)
        assert network.send(_message(size_bytes=1000))
        assert not network.send(_message(size_bytes=1000))
        assert len(observer.of_kind("congestion_drop")) == 1

    def test_in_flight_loss_edge(self, simulator):
        loss = UniformLoss(simulator.rng, probability=1.0)
        network, observer = self._network(simulator, loss=loss)
        network.register(0, lambda m: None)
        network.register(1, lambda m: None)
        assert network.send(_message())  # accepted, then lost
        simulator.run_until_idle()
        assert len(observer.of_kind("in_flight_loss")) == 1
        assert observer.of_kind("delivered") == []

    def test_delivery_dropped_edge_for_dead_receiver(self, simulator):
        network, observer = self._network(simulator)
        network.register(0, lambda m: None)
        network.register(1, lambda m: None)
        assert network.send(_message())
        network.fail_node(1)
        simulator.run_until_idle()
        assert len(observer.of_kind("delivery_dropped")) == 1
        assert observer.of_kind("delivered") == []

    def test_failure_and_recovery_edges(self, simulator):
        network, observer = self._network(simulator)
        network.register(1, lambda m: None)
        network.fail_node(1)
        network.recover_node(1)
        assert observer.of_kind("node_failed") == [("node_failed", 1)]
        assert observer.of_kind("node_recovered") == [("node_recovered", 1)]

    def test_delivered_fires_before_the_handler(self, simulator):
        order = []
        network = Network(simulator, latency_model=ConstantLatency(0.05))
        observer = RecordingObserver()
        observer.on_delivered = lambda message, now: order.append("observer")
        network.add_observer(observer)
        network.register(0, lambda m: None)
        network.register(1, lambda m: order.append("handler"))
        network.send(_message())
        simulator.run_until_idle()
        assert order == ["observer", "handler"]


class TestNodeObserver:
    def test_delivery_edge_fires_once_per_packet(self):
        session = build_session(build_scenario("homogeneous", num_nodes=12, seed=3))
        session.build()
        observer = RecordingObserver()
        attach_session_observer(session, observer)
        result = session.run()
        deliveries = observer.of_kind("packet_delivered")
        assert len(deliveries) == len(set(deliveries))  # no duplicates
        assert len(deliveries) == result.deliveries.total_deliveries

    def test_attach_requires_a_built_session(self):
        session = build_session(build_scenario("homogeneous", num_nodes=12, seed=3))
        with pytest.raises(ValueError, match="not built"):
            attach_session_observer(session, RecordingObserver())

    def test_detach_restores_silence(self):
        session = build_session(build_scenario("homogeneous", num_nodes=12, seed=3))
        session.build()
        observer = RecordingObserver()
        attach_session_observer(session, observer)
        detach_session_observer(session, observer)
        session.run()
        assert observer.events == []


class TestObserversDoNotPerturb:
    """The determinism contract: observed and unobserved runs are identical."""

    REQUEST = MetricsRequest(viewing_lags=(10.0, 20.0), window_lags=(20.0,))

    def _summary(self, result, name):
        return summarize(result, self.REQUEST, cell_id=name, seed=result.config.seed)

    @pytest.mark.parametrize("scenario", ["homogeneous", "churn-window", "eager-push"])
    def test_armed_invariants_change_nothing(self, scenario):
        spec = build_scenario(scenario, num_nodes=16, seed=5)
        plain = build_session(spec).run()
        observed = validate_session(build_session(spec), InvariantSuite.default())
        assert self._summary(plain, scenario) == self._summary(observed, scenario)
        assert plain.events_processed == observed.events_processed
