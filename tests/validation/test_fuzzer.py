"""The scenario fuzzer: deterministic derivation, campaigns, replayable bundles."""

import pytest

from repro.network.bandwidth import UploadLimiter
from repro.validation import ScenarioFuzzer, replay_bundle, spec_to_dict
from repro.validation.__main__ import main as validation_main


def _cap_bypass(monkeypatch):
    """The acceptance fault: serialization delay silently skipped."""
    original = UploadLimiter.enqueue

    def cheating(self, size_bytes, now):
        return now if original(self, size_bytes, now) is not None else None

    monkeypatch.setattr(UploadLimiter, "enqueue", cheating)


def _capped_three_phase_index(fuzzer):
    """First case index whose spec has a finite cap and the paper protocol."""
    for index in range(50):
        spec = fuzzer.derive_case(index).spec
        if spec.upload_cap_kbps is not None and spec.protocol == "three-phase":
            return index
    raise AssertionError("no capped three-phase case in the first 50")


class TestCaseDerivation:
    def test_same_coordinates_same_spec(self):
        a = ScenarioFuzzer(7).derive_case(3).spec
        b = ScenarioFuzzer(7).derive_case(3).spec
        assert spec_to_dict(a) == spec_to_dict(b)

    def test_different_indices_differ(self):
        fuzzer = ScenarioFuzzer(7)
        dicts = [spec_to_dict(fuzzer.derive_case(i).spec) for i in range(8)]
        assert len({str(sorted(d.items())) for d in dicts}) == 8

    def test_specs_stay_in_paper_plausible_ranges(self):
        fuzzer = ScenarioFuzzer(7, max_nodes=30)
        for index in range(30):
            spec = fuzzer.derive_case(index).spec
            assert 15 <= spec.num_nodes <= 30
            assert 3 <= spec.fanout <= 10
            assert spec.upload_cap_kbps in (500.0, 700.0, 1000.0, 2000.0, None)
            assert spec.random_loss in (0.0, 0.01, 0.05)
            assert spec.protocol in ("three-phase", "eager-push")
            # Perturbations always land mid-stream (spec validation enforces
            # the hard bound; this pins the intent).
            if spec.churn is not None:
                assert 0.0 < spec.churn.time < spec.stream.duration
            if spec.join is not None:
                assert 0.0 < spec.join.time < spec.stream.duration

    def test_perturbation_variety_appears(self):
        fuzzer = ScenarioFuzzer(7)
        specs = [fuzzer.derive_case(i).spec for i in range(30)]
        assert any(spec.churn is not None for spec in specs)
        assert any(spec.join is not None for spec in specs)
        assert any(spec.protocol == "eager-push" for spec in specs)


class TestCampaigns:
    def test_clean_code_passes_and_outcomes_are_ordered(self):
        outcomes = ScenarioFuzzer(7, max_nodes=20).run_campaign(3)
        assert [outcome.index for outcome in outcomes] == [0, 1, 2]
        assert all(outcome.ok for outcome in outcomes)
        assert all(outcome.events_processed > 0 for outcome in outcomes)

    def test_parallel_campaign_is_bit_identical_to_serial(self):
        fuzzer = ScenarioFuzzer(13, max_nodes=20)
        serial = fuzzer.run_campaign(4, jobs=1)
        parallel = fuzzer.run_campaign(4, jobs=2)
        assert serial == parallel


class TestReproBundles:
    def test_injected_fault_bundles_and_replays_to_same_coordinates(
        self, monkeypatch, tmp_path
    ):
        """Acceptance criterion: fault → violation → bundle → exact replay."""
        _cap_bypass(monkeypatch)
        fuzzer = ScenarioFuzzer(11, max_nodes=25)
        index = _capped_three_phase_index(fuzzer)
        outcome = fuzzer.run_case(index)
        assert not outcome.ok
        assert outcome.invariant == "bandwidth-cap"
        assert outcome.event_index >= 0

        path = fuzzer.write_bundle(outcome, tmp_path)
        report = replay_bundle(path)
        assert report.reproduced
        assert report.matched
        assert report.invariant == outcome.invariant
        assert report.event_index == outcome.event_index
        assert report.fingerprint_matched

    def test_campaign_writes_bundles_for_failures_only(self, monkeypatch, tmp_path):
        _cap_bypass(monkeypatch)
        fuzzer = ScenarioFuzzer(11, max_nodes=25)
        outcomes = fuzzer.run_campaign(3, bundle_dir=tmp_path)
        failures = [outcome for outcome in outcomes if not outcome.ok]
        bundles = sorted(tmp_path.glob("*.json"))
        assert len(bundles) == len(failures) > 0
        assert {path.stem for path in bundles} == {
            outcome.case_id for outcome in failures
        }

    def test_replay_of_fixed_code_reports_not_reproduced(
        self, monkeypatch, tmp_path
    ):
        fuzzer = ScenarioFuzzer(11, max_nodes=25)
        index = _capped_three_phase_index(fuzzer)
        with pytest.MonkeyPatch.context() as patch:
            _cap_bypass(patch)
            outcome = fuzzer.run_case(index)
            path = fuzzer.write_bundle(outcome, tmp_path)
        # The "bug" is gone (the patch expired): the bundle no longer fails.
        report = replay_bundle(path)
        assert not report.reproduced
        assert not report.matched

    def test_bundling_a_passing_case_is_an_error(self, tmp_path):
        fuzzer = ScenarioFuzzer(7, max_nodes=20)
        outcome = fuzzer.run_case(0)
        assert outcome.ok
        with pytest.raises(ValueError, match="passed"):
            fuzzer.write_bundle(outcome, tmp_path)


class TestCli:
    def test_fuzz_exit_zero_on_clean_code(self, capsys):
        assert validation_main(["--fuzz", "2", "--seed", "7", "--max-nodes", "20"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_fuzz_exit_one_and_bundles_on_violation(
        self, monkeypatch, tmp_path, capsys
    ):
        _cap_bypass(monkeypatch)
        fuzzer = ScenarioFuzzer(11, max_nodes=25)
        index = _capped_three_phase_index(fuzzer)
        code = validation_main(
            ["--fuzz", str(index + 1), "--seed", "11", "--max-nodes", "25",
             "--bundle-dir", str(tmp_path)]
        )
        assert code == 1
        assert list(tmp_path.glob("fuzz-11-*.json"))
        assert "VIOLATION" in capsys.readouterr().out

    def test_replay_exit_codes(self, monkeypatch, tmp_path, capsys):
        fuzzer = ScenarioFuzzer(11, max_nodes=25)
        index = _capped_three_phase_index(fuzzer)
        with pytest.MonkeyPatch.context() as patch:
            _cap_bypass(patch)
            outcome = fuzzer.run_case(index)
            path = fuzzer.write_bundle(outcome, tmp_path)
            # Bug still present: exact reproduction, exit 0.
            assert validation_main(["--replay", str(path)]) == 0
        # Bug gone: not reproduced, exit 1.
        assert validation_main(["--replay", str(path)]) == 1

    def test_list_invariants(self, capsys):
        assert validation_main(["--list-invariants"]) == 0
        out = capsys.readouterr().out
        for name in ("bandwidth-cap", "packet-conservation", "churn-hygiene"):
            assert name in out
