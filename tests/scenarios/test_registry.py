"""End-to-end tests of the scenario registry (acceptance: ≥ 4 scenarios)."""

import pytest

from repro.scenarios import (
    available_scenarios,
    build_scenario,
    run_scenario,
    scenario_by_name,
)
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import ScenarioSpec

# Small enough to run each scenario in about a second.
SMALL = dict(num_nodes=18, seed=11)

EXPECTED_SCENARIOS = (
    "homogeneous",
    "heterogeneous-bandwidth",
    "churn-window",
    "flash-crowd",
    "lossy-wan",
    "eager-push",
    "large-session",
    "metropolis",
)


class TestRegistry:
    def test_all_expected_scenarios_registered(self):
        names = available_scenarios()
        for expected in EXPECTED_SCENARIOS:
            assert expected in names

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_by_name("does-not-exist")

    def test_overrides_apply(self):
        spec = build_scenario("homogeneous", num_nodes=99, seed=7)
        assert spec.num_nodes == 99 and spec.seed == 7

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(lambda: ScenarioSpec(name="homogeneous"))

    def test_replace_allows_reregistration(self):
        factory = scenario_by_name("homogeneous")
        try:
            marker = lambda: ScenarioSpec(name="homogeneous", seed=12345)  # noqa: E731
            register_scenario(replace=True)(marker)
            assert scenario_by_name("homogeneous")().seed == 12345
        finally:
            register_scenario(replace=True)(factory)

    def test_inert_perturbation_rejected_on_stream_override(self):
        """Overriding the stream without moving the churn/join time fails fast."""
        from repro.streaming.schedule import StreamConfig

        short = StreamConfig.scaled_down(num_windows=4)  # ends well before t=5.87s
        for name in ("churn-window", "flash-crowd"):
            with pytest.raises(ValueError, match="inert"):
                build_scenario(name, stream=short)


@pytest.mark.parametrize("name", EXPECTED_SCENARIOS)
def test_scenario_runs_end_to_end(name):
    """Every named scenario builds, runs, and produces a sane result."""
    result = run_scenario(name, **SMALL)
    assert result.events_processed > 1000
    assert result.deliveries.total_deliveries > 0
    # Survivors of every scenario still receive most of the stream — a loose
    # smoke bound on purpose: perturbation scenarios (catastrophic churn,
    # flash crowds) legitimately degrade the strict viewing metric at this
    # tiny test scale, and their semantics are pinned individually below.
    assert result.delivery_ratio() > 0.5


class TestScenarioSemantics:
    def test_churn_window_fails_half_the_receivers(self):
        result = run_scenario("churn-window", **SMALL)
        expected_victims = round((SMALL["num_nodes"] - 1) * 0.5)
        assert len(result.failed_nodes) == expected_victims
        assert result.source_id not in result.failed_nodes
        # The crash lands mid-stream: victims die before the last packet is
        # published (an after-the-stream crash would test nothing).
        assert result.config.churn.time < result.schedule.config.end_time

    def test_flash_crowd_joiners_start_mid_stream(self):
        result = run_scenario("flash-crowd", **SMALL)
        join_time = result.config.join.time
        # The join must land while packets are still being published,
        # otherwise the scenario is inert (nothing proposes to joiners).
        assert join_time < result.schedule.config.end_time
        assert result.late_joiners, "flash crowd scenario must have joiners"
        for joiner in result.late_joiners:
            deliveries = result.deliveries.deliveries_of(joiner)
            # Joiners actually view the live tail (non-vacuous: an empty
            # delivery log would make the timing assertion pass trivially).
            assert deliveries, f"joiner {joiner} never received a packet"
            assert all(time >= join_time for time in deliveries.values())
        # Initial members must not be affected before the join.
        initial = set(result.initial_survivors())
        assert initial.isdisjoint(result.late_joiners)
        assert result.deliveries.packets_delivered(min(initial)) > 0

    def test_heterogeneous_scenario_loads_strong_nodes_more(self):
        spec = build_scenario("heterogeneous-bandwidth", num_nodes=30, seed=4)
        caps = spec.per_node_caps()
        result = run_scenario("heterogeneous-bandwidth", num_nodes=30, seed=4)
        usage = result.bandwidth_usage().per_node()
        strong = [usage[n] for n, cap in caps.items() if cap == 2000.0]
        weak = [usage[n] for n, cap in caps.items() if cap == 500.0]
        assert sum(strong) / len(strong) > sum(weak) / len(weak)

    def test_eager_push_scenario_uses_eager_protocol(self):
        result = run_scenario("eager-push", **SMALL)
        stats = result.node_stats.values()
        assert sum(s.requests_sent for s in stats) == 0
        assert sum(s.serves_sent for s in stats) > 0

    def test_large_session_scenario_has_paper_stream_geometry(self):
        spec = build_scenario("large-session")
        assert spec.num_nodes == 1000
        assert spec.stream.source_packets_per_window == 101
        assert spec.stream.fec_packets_per_window == 9
        assert spec.stream.rate_kbps == 600.0
        # Scaled-down runs keep the window geometry (the end-to-end
        # parametrized test above runs it at 18 nodes).
        small = build_scenario("large-session", num_nodes=24)
        assert small.stream.packets_per_window == 110

    def test_metropolis_scenario_is_sharded_at_paper_geometry(self):
        spec = build_scenario("metropolis")
        assert spec.num_nodes == 10_000
        assert spec.shards == 4
        assert spec.stream.source_packets_per_window == 101
        assert spec.stream.fec_packets_per_window == 9
        assert spec.stream.rate_kbps == 600.0
        # The end-to-end parametrized test above runs it at 18 nodes — still
        # through the sharded runner, because the shard count survives the
        # num_nodes override.
        small = build_scenario("metropolis", num_nodes=18)
        assert small.shards == 4
