"""Unit tests for scenario specs and the SessionBuilder."""

import pytest

from repro.core.config import GossipConfig
from repro.core.session import SessionConfig
from repro.membership.churn import CatastrophicChurn
from repro.membership.join import FlashCrowdJoin
from repro.network.transport import NetworkConfig
from repro.scenarios import (
    BandwidthClass,
    ScenarioSpec,
    SessionBuilder,
    assign_bandwidth_classes,
)
from repro.streaming.schedule import StreamConfig


class TestScenarioSpec:
    def test_defaults_compile_to_gossip_config(self):
        spec = ScenarioSpec(name="x")
        gossip = spec.gossip_config()
        assert gossip.fanout == spec.fanout
        assert gossip.gossip_period == spec.gossip_period

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="")

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", num_nodes=1)

    def test_with_overrides_returns_new_spec(self):
        spec = ScenarioSpec(name="x", num_nodes=10)
        bigger = spec.with_overrides(num_nodes=50, seed=9)
        assert bigger.num_nodes == 50 and bigger.seed == 9
        assert spec.num_nodes == 10

    def test_describe_mentions_perturbations(self):
        spec = ScenarioSpec(
            name="x",
            churn=CatastrophicChurn(time=2.0, fraction=0.5),
            join=FlashCrowdJoin(time=2.0, fraction=0.2),
        )
        description = spec.describe()
        assert "churn" in description
        assert "flash crowd" in description

    def test_perturbation_past_stream_end_rejected(self):
        # default scaled_down stream publishes its last packet at t≈3.5s
        with pytest.raises(ValueError, match="inert"):
            ScenarioSpec(name="x", churn=CatastrophicChurn(time=5.0, fraction=0.5))
        with pytest.raises(ValueError, match="inert"):
            ScenarioSpec(name="x", join=FlashCrowdJoin(time=5.0, fraction=0.2))


class TestBandwidthClasses:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            assign_bandwidth_classes(
                (BandwidthClass(0.3, 2000.0), BandwidthClass(0.3, 500.0)),
                tuple(range(1, 11)),
            )

    def test_assignment_is_deterministic_and_interleaved(self):
        classes = (BandwidthClass(0.3, 2000.0), BandwidthClass(0.7, 500.0))
        receivers = tuple(range(1, 41))
        caps = assign_bandwidth_classes(classes, receivers)
        assert caps == assign_bandwidth_classes(classes, receivers)
        # A cycle of 10: slots 0-2 strong, 3-9 weak.
        assert caps[10] == 2000.0 and caps[12] == 2000.0
        assert caps[13] == 500.0 and caps[19] == 500.0
        strong = sum(1 for cap in caps.values() if cap == 2000.0)
        assert strong == 12  # 30% of 40 receivers

    def test_fractions_finer_than_cycle_rejected(self):
        # A cycle of 10 id slots cannot represent a 25/75 split; silently
        # quantizing to 30/70 would corrupt capacity-sweep experiments.
        with pytest.raises(ValueError, match="multiples of 0.1"):
            assign_bandwidth_classes(
                (BandwidthClass(0.25, 2000.0), BandwidthClass(0.75, 500.0)),
                tuple(range(1, 41)),
            )

    def test_invalid_class_rejected(self):
        with pytest.raises(ValueError):
            BandwidthClass(fraction=0.0, cap_kbps=100.0)
        with pytest.raises(ValueError):
            BandwidthClass(fraction=0.5, cap_kbps=-1.0)


class TestSessionBuilder:
    def test_fluent_builder_produces_config(self):
        config = (
            SessionBuilder()
            .nodes(12)
            .seed(5)
            .protocol("eager-push")
            .gossip(fanout=4)
            .network(upload_cap_kbps=None, random_loss=0.0)
            .extra_time(10.0)
            .to_config()
        )
        assert isinstance(config, SessionConfig)
        assert config.num_nodes == 12
        assert config.protocol == "eager-push"
        assert config.gossip.fanout == 4
        assert config.network.upload_cap_kbps is None

    def test_from_config_round_trips(self):
        original = SessionConfig(
            num_nodes=14,
            seed=3,
            gossip=GossipConfig(fanout=6),
            stream=StreamConfig.scaled_down(),
            network=NetworkConfig(upload_cap_kbps=900.0),
            protocol="three-phase",
            extra_time=12.0,
        )
        rebuilt = SessionBuilder.from_config(original).to_config()
        # The config is carried whole, never decomposed — a SessionConfig
        # field added later cannot be silently reset to its default.
        assert rebuilt is original

    def test_from_config_with_overrides(self):
        original = SessionConfig(num_nodes=14, seed=3, extra_time=12.0)
        tweaked = SessionBuilder.from_config(original).seed(9).gossip(fanout=4).to_config()
        assert tweaked.seed == 9
        assert tweaked.gossip.fanout == 4
        assert tweaked.num_nodes == 14 and tweaked.extra_time == 12.0
        assert original.seed == 3  # base untouched

    def test_from_spec_applies_bandwidth_classes(self):
        spec = ScenarioSpec(
            name="mix",
            num_nodes=21,
            bandwidth_classes=(
                BandwidthClass(0.3, 2000.0),
                BandwidthClass(0.7, 500.0),
            ),
        )
        config = SessionBuilder.from_spec(spec).to_config()
        assert config.network.per_node_caps_kbps == spec.per_node_caps()
        assert set(config.network.per_node_caps_kbps) == set(range(1, 21))

    def test_unknown_protocol_fails_fast(self):
        with pytest.raises(ValueError):
            SessionBuilder().protocol("carrier-pigeon").to_config()
