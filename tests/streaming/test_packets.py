"""Unit tests for packet and window descriptors."""

import pytest

from repro.streaming.packets import PacketDescriptor, WindowDescriptor


class TestPacketDescriptor:
    def test_valid_descriptor(self):
        packet = PacketDescriptor(
            packet_id=5, window_index=0, index_in_window=5, is_fec=False,
            publish_time=0.5, size_bytes=1000,
        )
        assert packet.packet_id == 5
        assert not packet.is_fec

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            PacketDescriptor(
                packet_id=-1, window_index=0, index_in_window=0, is_fec=False,
                publish_time=0.0, size_bytes=1000,
            )

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            PacketDescriptor(
                packet_id=0, window_index=0, index_in_window=0, is_fec=False,
                publish_time=0.0, size_bytes=0,
            )

    def test_negative_publish_time_rejected(self):
        with pytest.raises(ValueError):
            PacketDescriptor(
                packet_id=0, window_index=0, index_in_window=0, is_fec=False,
                publish_time=-0.1, size_bytes=10,
            )


class TestWindowDescriptor:
    def make(self, **overrides):
        defaults = dict(
            window_index=0,
            packet_ids=tuple(range(10)),
            source_packets=8,
            required_packets=8,
            publish_start=0.0,
            publish_end=1.0,
        )
        defaults.update(overrides)
        return WindowDescriptor(**defaults)

    def test_counts(self):
        window = self.make()
        assert window.total_packets == 10
        assert window.fec_packets == 2

    def test_contains(self):
        window = self.make()
        assert window.contains(0)
        assert window.contains(9)
        assert not window.contains(10)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            self.make(packet_ids=())

    def test_required_exceeding_size_rejected(self):
        with pytest.raises(ValueError):
            self.make(required_packets=11)

    def test_publish_bounds_checked(self):
        with pytest.raises(ValueError):
            self.make(publish_start=2.0, publish_end=1.0)
