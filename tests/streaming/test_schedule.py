"""Unit tests for the stream configuration and packet schedule."""

import pytest

from repro.streaming.schedule import StreamConfig, StreamSchedule


class TestStreamConfig:
    def test_paper_defaults(self):
        config = StreamConfig.paper_defaults(num_windows=10)
        assert config.rate_kbps == 600.0
        assert config.packets_per_window == 110
        assert config.source_packets_per_window == 101
        assert config.fec_packets_per_window == 9
        assert config.total_packets == 1100

    def test_packets_per_second(self):
        config = StreamConfig(rate_kbps=600.0, payload_bytes=1000)
        # 600 kbps / 8000 bits per packet = 75 packets per second.
        assert config.packets_per_second == pytest.approx(75.0)
        assert config.packet_interval == pytest.approx(1.0 / 75.0)

    def test_window_duration_and_total_duration(self):
        config = StreamConfig.paper_defaults(num_windows=5)
        assert config.window_duration == pytest.approx(110 / 75.0)
        assert config.duration == pytest.approx(5 * 110 / 75.0)

    def test_end_time(self):
        config = StreamConfig(num_windows=2, source_packets_per_window=3, fec_packets_per_window=1)
        assert config.end_time == pytest.approx(config.start_time + 7 * config.packet_interval)

    def test_scaled_down_keeps_fec_ratio_close_to_paper(self):
        scaled = StreamConfig.scaled_down()
        paper = StreamConfig.paper_defaults()
        scaled_ratio = scaled.fec_packets_per_window / scaled.packets_per_window
        paper_ratio = paper.fec_packets_per_window / paper.packets_per_window
        assert abs(scaled_ratio - paper_ratio) < 0.02

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            StreamConfig(rate_kbps=0.0)
        with pytest.raises(ValueError):
            StreamConfig(payload_bytes=0)
        with pytest.raises(ValueError):
            StreamConfig(num_windows=0)
        with pytest.raises(ValueError):
            StreamConfig(fec_packets_per_window=-1)


class TestStreamSchedule:
    @pytest.fixture
    def schedule(self) -> StreamSchedule:
        return StreamSchedule(
            StreamConfig(
                rate_kbps=600.0,
                payload_bytes=1000,
                source_packets_per_window=5,
                fec_packets_per_window=2,
                num_windows=3,
            )
        )

    def test_total_counts(self, schedule):
        assert schedule.num_packets == 21
        assert schedule.num_windows == 3
        assert len(schedule.packets()) == 21
        assert len(schedule.windows()) == 3

    def test_packet_ids_are_sequential(self, schedule):
        ids = [packet.packet_id for packet in schedule.packets()]
        assert ids == list(range(21))

    def test_publish_times_are_monotonic_and_spaced(self, schedule):
        times = [packet.publish_time for packet in schedule.packets()]
        interval = schedule.config.packet_interval
        for earlier, later in zip(times, times[1:]):
            assert later - earlier == pytest.approx(interval)

    def test_window_membership(self, schedule):
        window = schedule.window(1)
        assert window.packet_ids == tuple(range(7, 14))
        assert schedule.window_of_packet(8).window_index == 1
        assert window.contains(8)
        assert not window.contains(20)

    def test_fec_flags(self, schedule):
        window_packets = [schedule.packet(packet_id) for packet_id in schedule.window(0).packet_ids]
        fec_flags = [packet.is_fec for packet in window_packets]
        assert fec_flags == [False] * 5 + [True] * 2

    def test_required_packets_equals_source_count(self, schedule):
        assert all(window.required_packets == 5 for window in schedule.windows())
        assert all(window.fec_packets == 2 for window in schedule.windows())

    def test_window_publish_bounds(self, schedule):
        window = schedule.window(2)
        assert window.publish_start == schedule.packet(window.packet_ids[0]).publish_time
        assert window.publish_end == schedule.packet(window.packet_ids[-1]).publish_time

    def test_packets_published_by(self, schedule):
        config = schedule.config
        assert schedule.packets_published_by(-1.0) == 0
        assert schedule.packets_published_by(0.0) == 1
        assert schedule.packets_published_by(config.packet_interval * 3.5) == 4
        assert schedule.packets_published_by(1e9) == schedule.num_packets

    def test_start_time_offsets_publish_times(self):
        schedule = StreamSchedule(
            StreamConfig(source_packets_per_window=2, fec_packets_per_window=0, num_windows=1, start_time=5.0)
        )
        assert schedule.packet(0).publish_time == pytest.approx(5.0)


class TestPacketsPublishedByBoundaries:
    """Exact counting at every publish instant of a paper-ratio schedule.

    The paper's 75-packets/s interval (1/75 s) is not float-representable:
    for ~6 % of all k, ``(k * interval) / interval`` lands a few ulps below
    ``k``, so the seed's plain ``floor(elapsed / interval) + 1`` undercounted
    by one exactly at those publish instants (k = 49 is the first).
    """

    @pytest.fixture(scope="class")
    def paper_schedule(self) -> StreamSchedule:
        return StreamSchedule(StreamConfig.paper_defaults(num_windows=3))

    def test_exact_count_at_every_publish_instant(self, paper_schedule):
        for descriptor in paper_schedule.packets():
            count = paper_schedule.packets_published_by(descriptor.publish_time)
            assert count == descriptor.packet_id + 1, (
                f"packet {descriptor.packet_id} published at "
                f"t={descriptor.publish_time!r} must count itself"
            )

    def test_count_just_before_each_publish_instant(self, paper_schedule):
        interval = paper_schedule.config.packet_interval
        for descriptor in paper_schedule.packets():
            just_before = descriptor.publish_time - interval / 2.0
            assert paper_schedule.packets_published_by(just_before) == descriptor.packet_id

    def test_boundaries_with_offset_start_time(self):
        schedule = StreamSchedule(StreamConfig.paper_defaults(num_windows=1, start_time=3.7))
        for descriptor in schedule.packets():
            assert schedule.packets_published_by(descriptor.publish_time) == descriptor.packet_id + 1

    def test_mid_interval_times_are_unaffected(self):
        schedule = StreamSchedule(StreamConfig.paper_defaults(num_windows=1))
        interval = schedule.config.packet_interval
        for packet_id in (0, 49, 85, 98):  # includes seed-era failing instants
            mid = schedule.packet(packet_id).publish_time + 0.4 * interval
            assert schedule.packets_published_by(mid) == packet_id + 1
