"""Pin the bulk (translate-table) codec path against the scalar reference.

The fast path — ``scale_bytes`` / ``xor_bytes`` / ``addmul_bytes`` /
``Matrix.multiply_vector_bytes`` — must agree byte-for-byte with the
original scalar functions (``multiply_row`` / ``add_rows`` /
``multiply_accumulate`` / ``Matrix.multiply_vector_rows``) that the seed
codec was built from, and the whole RS codec must round-trip
encode → erase → decode at the paper's real window geometry (101 + 9).

All sampling is fixed-seed so failures reproduce exactly.
"""

import random

import pytest

from repro.streaming import gf256
from repro.streaming.fec import ReedSolomonCode, WindowCodec
from repro.streaming.gf256 import Matrix


def sampled_triples(seed, count=200):
    rng = random.Random(seed)
    return [(rng.randrange(256), rng.randrange(256), rng.randrange(256)) for _ in range(count)]


class TestFieldAxiomsSampled:
    """Field axioms over fixed-seed sampled triples (fast, non-hypothesis)."""

    def test_multiplication_associative_and_commutative(self):
        for a, b, c in sampled_triples(seed=1):
            assert gf256.multiply(gf256.multiply(a, b), c) == gf256.multiply(a, gf256.multiply(b, c))
            assert gf256.multiply(a, b) == gf256.multiply(b, a)

    def test_distributivity(self):
        for a, b, c in sampled_triples(seed=2):
            left = gf256.multiply(a, gf256.add(b, c))
            right = gf256.add(gf256.multiply(a, b), gf256.multiply(a, c))
            assert left == right

    def test_inverse_round_trips(self):
        for a, b, _ in sampled_triples(seed=3):
            if a:
                assert gf256.multiply(a, gf256.inverse(a)) == 1
                assert gf256.divide(gf256.multiply(a, b), a) == b
            assert gf256.multiply(a, 0) == 0


class TestBulkMatchesScalar:
    def test_mul_table_matches_scalar_multiply(self):
        for coefficient in range(256):
            table = gf256.mul_table(coefficient)
            assert list(table) == [gf256.multiply(coefficient, x) for x in range(256)]

    def test_scale_bytes_matches_multiply_row(self):
        rng = random.Random(11)
        for _ in range(50):
            coefficient = rng.randrange(256)
            row = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
            assert list(gf256.scale_bytes(coefficient, row)) == gf256.multiply_row(coefficient, list(row))

    def test_xor_bytes_matches_add_rows(self):
        rng = random.Random(12)
        for _ in range(50):
            length = rng.randrange(0, 64)
            a = bytes(rng.randrange(256) for _ in range(length))
            b = bytes(rng.randrange(256) for _ in range(length))
            assert list(gf256.xor_bytes(a, b)) == [x ^ y for x, y in zip(a, b)]

    def test_xor_bytes_length_mismatch(self):
        with pytest.raises(ValueError):
            gf256.xor_bytes(b"ab", b"a")

    def test_addmul_bytes_matches_multiply_accumulate(self):
        rng = random.Random(13)
        for _ in range(50):
            length = rng.randrange(1, 64)
            coefficient = rng.randrange(256)
            target_scalar = [rng.randrange(256) for _ in range(length)]
            row = bytes(rng.randrange(256) for _ in range(length))
            target_bulk = bytearray(target_scalar)
            gf256.multiply_accumulate(target_scalar, coefficient, list(row))
            gf256.addmul_bytes(target_bulk, coefficient, row)
            assert list(target_bulk) == target_scalar

    def test_addmul_bytes_length_mismatch(self):
        with pytest.raises(ValueError):
            gf256.addmul_bytes(bytearray(3), 5, b"ab")

    def test_multiply_vector_bytes_matches_scalar_rows(self):
        rng = random.Random(14)
        for _ in range(20):
            rows = rng.randrange(1, 6)
            cols = rng.randrange(1, 6)
            length = rng.randrange(1, 40)
            matrix = Matrix([[rng.randrange(256) for _ in range(cols)] for _ in range(rows)])
            data = [bytes(rng.randrange(256) for _ in range(length)) for _ in range(cols)]
            scalar = matrix.multiply_vector_rows([list(shard) for shard in data])
            bulk = matrix.multiply_vector_bytes(data)
            assert [list(shard) for shard in bulk] == scalar

    def test_multiply_vector_bytes_validates_shapes(self):
        matrix = Matrix([[1, 2]])
        with pytest.raises(ValueError):
            matrix.multiply_vector_bytes([b"a"])
        with pytest.raises(ValueError):
            matrix.multiply_vector_bytes([b"a", b"bc"])


class TestPaperGeometryRoundTrips:
    """RS encode → erase → decode at the paper's 101+9 window layout."""

    @pytest.mark.parametrize("source,fec", [(101, 9), (20, 2)])
    def test_round_trips_at_and_below_the_erasure_limit(self, source, fec):
        rng = random.Random(1000 * source + fec)
        codec = WindowCodec(source, fec)
        shard_length = 32  # shorter than the wire's 1000 bytes, same math
        data = [
            bytes(rng.randrange(256) for _ in range(shard_length)) for _ in range(source)
        ]
        codeword = codec.encode_window(data)
        assert len(codeword) == source + fec
        for erasures in sorted({0, 1, fec // 2, fec}):
            erased = set(rng.sample(range(len(codeword)), erasures))
            received = {
                index: shard for index, shard in enumerate(codeword) if index not in erased
            }
            assert codec.decode_window(received) == data

    def test_random_erasure_patterns_paper_window(self):
        rng = random.Random(99)
        code = ReedSolomonCode(101, 9)
        data = [bytes(rng.randrange(256) for _ in range(16)) for _ in range(101)]
        codeword = code.encode_window(data)
        for _ in range(5):
            erased = set(rng.sample(range(110), 9))
            received = {i: s for i, s in enumerate(codeword) if i not in erased}
            assert code.decode(received) == data

    def test_beyond_limit_fails_loudly(self):
        rng = random.Random(7)
        code = ReedSolomonCode(20, 2)
        data = [bytes(rng.randrange(256) for _ in range(8)) for _ in range(20)]
        codeword = code.encode_window(data)
        received = {i: s for i, s in enumerate(codeword) if i >= 3}  # 3 erasures > m=2
        with pytest.raises(ValueError):
            code.decode(received)

    def test_parity_only_systematic_prefix(self):
        """Decoding from a mix heavy in parity shards still recovers the data."""
        rng = random.Random(8)
        code = ReedSolomonCode(6, 3)
        data = [bytes(rng.randrange(256) for _ in range(12)) for _ in range(6)]
        codeword = code.encode_window(data)
        received = {i: codeword[i] for i in (0, 3, 5, 6, 7, 8)}
        assert code.decode(received) == data
