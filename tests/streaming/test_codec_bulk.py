"""Pin the bulk (translate-table) codec path against the scalar reference.

The fast path — ``scale_bytes`` / ``xor_bytes`` / ``addmul_bytes`` /
``Matrix.multiply_vector_bytes`` — must agree byte-for-byte with the
original scalar functions (``multiply_row`` / ``add_rows`` /
``multiply_accumulate`` / ``Matrix.multiply_vector_rows``) that the seed
codec was built from, and the whole RS codec must round-trip
encode → erase → decode at the paper's real window geometry (101 + 9).

All sampling is fixed-seed so failures reproduce exactly.
"""

import random

import pytest

from repro.streaming import gf256
from repro.streaming.fec import ReedSolomonCode, WindowCodec
from repro.streaming.gf256 import Matrix


def sampled_triples(seed, count=200):
    rng = random.Random(seed)
    return [(rng.randrange(256), rng.randrange(256), rng.randrange(256)) for _ in range(count)]


class TestFieldAxiomsSampled:
    """Field axioms over fixed-seed sampled triples (fast, non-hypothesis)."""

    def test_multiplication_associative_and_commutative(self):
        for a, b, c in sampled_triples(seed=1):
            assert gf256.multiply(gf256.multiply(a, b), c) == gf256.multiply(a, gf256.multiply(b, c))
            assert gf256.multiply(a, b) == gf256.multiply(b, a)

    def test_distributivity(self):
        for a, b, c in sampled_triples(seed=2):
            left = gf256.multiply(a, gf256.add(b, c))
            right = gf256.add(gf256.multiply(a, b), gf256.multiply(a, c))
            assert left == right

    def test_inverse_round_trips(self):
        for a, b, _ in sampled_triples(seed=3):
            if a:
                assert gf256.multiply(a, gf256.inverse(a)) == 1
                assert gf256.divide(gf256.multiply(a, b), a) == b
            assert gf256.multiply(a, 0) == 0


class TestBulkMatchesScalar:
    def test_mul_table_matches_scalar_multiply(self):
        for coefficient in range(256):
            table = gf256.mul_table(coefficient)
            assert list(table) == [gf256.multiply(coefficient, x) for x in range(256)]

    def test_scale_bytes_matches_multiply_row(self):
        rng = random.Random(11)
        for _ in range(50):
            coefficient = rng.randrange(256)
            row = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 64)))
            assert list(gf256.scale_bytes(coefficient, row)) == gf256.multiply_row(coefficient, list(row))

    def test_xor_bytes_matches_add_rows(self):
        rng = random.Random(12)
        for _ in range(50):
            length = rng.randrange(0, 64)
            a = bytes(rng.randrange(256) for _ in range(length))
            b = bytes(rng.randrange(256) for _ in range(length))
            assert list(gf256.xor_bytes(a, b)) == [x ^ y for x, y in zip(a, b)]

    def test_xor_bytes_length_mismatch(self):
        with pytest.raises(ValueError):
            gf256.xor_bytes(b"ab", b"a")

    def test_addmul_bytes_matches_multiply_accumulate(self):
        rng = random.Random(13)
        for _ in range(50):
            length = rng.randrange(1, 64)
            coefficient = rng.randrange(256)
            target_scalar = [rng.randrange(256) for _ in range(length)]
            row = bytes(rng.randrange(256) for _ in range(length))
            target_bulk = bytearray(target_scalar)
            gf256.multiply_accumulate(target_scalar, coefficient, list(row))
            gf256.addmul_bytes(target_bulk, coefficient, row)
            assert list(target_bulk) == target_scalar

    def test_addmul_bytes_length_mismatch(self):
        with pytest.raises(ValueError):
            gf256.addmul_bytes(bytearray(3), 5, b"ab")

    def test_multiply_vector_bytes_matches_scalar_rows(self):
        rng = random.Random(14)
        for _ in range(20):
            rows = rng.randrange(1, 6)
            cols = rng.randrange(1, 6)
            length = rng.randrange(1, 40)
            matrix = Matrix([[rng.randrange(256) for _ in range(cols)] for _ in range(rows)])
            data = [bytes(rng.randrange(256) for _ in range(length)) for _ in range(cols)]
            scalar = matrix.multiply_vector_rows([list(shard) for shard in data])
            bulk = matrix.multiply_vector_bytes(data)
            assert [list(shard) for shard in bulk] == scalar

    def test_multiply_vector_bytes_validates_shapes(self):
        matrix = Matrix([[1, 2]])
        with pytest.raises(ValueError):
            matrix.multiply_vector_bytes([b"a"])
        with pytest.raises(ValueError):
            matrix.multiply_vector_bytes([b"a", b"bc"])


class TestPaperGeometryRoundTrips:
    """RS encode → erase → decode at the paper's 101+9 window layout."""

    @pytest.mark.parametrize("source,fec", [(101, 9), (20, 2)])
    def test_round_trips_at_and_below_the_erasure_limit(self, source, fec):
        rng = random.Random(1000 * source + fec)
        codec = WindowCodec(source, fec)
        shard_length = 32  # shorter than the wire's 1000 bytes, same math
        data = [
            bytes(rng.randrange(256) for _ in range(shard_length)) for _ in range(source)
        ]
        codeword = codec.encode_window(data)
        assert len(codeword) == source + fec
        for erasures in sorted({0, 1, fec // 2, fec}):
            erased = set(rng.sample(range(len(codeword)), erasures))
            received = {
                index: shard for index, shard in enumerate(codeword) if index not in erased
            }
            assert codec.decode_window(received) == data

    def test_random_erasure_patterns_paper_window(self):
        rng = random.Random(99)
        code = ReedSolomonCode(101, 9)
        data = [bytes(rng.randrange(256) for _ in range(16)) for _ in range(101)]
        codeword = code.encode_window(data)
        for _ in range(5):
            erased = set(rng.sample(range(110), 9))
            received = {i: s for i, s in enumerate(codeword) if i not in erased}
            assert code.decode(received) == data

    def test_beyond_limit_fails_loudly(self):
        rng = random.Random(7)
        code = ReedSolomonCode(20, 2)
        data = [bytes(rng.randrange(256) for _ in range(8)) for _ in range(20)]
        codeword = code.encode_window(data)
        received = {i: s for i, s in enumerate(codeword) if i >= 3}  # 3 erasures > m=2
        with pytest.raises(ValueError):
            code.decode(received)

    def test_parity_only_systematic_prefix(self):
        """Decoding from a mix heavy in parity shards still recovers the data."""
        rng = random.Random(8)
        code = ReedSolomonCode(6, 3)
        data = [bytes(rng.randrange(256) for _ in range(12)) for _ in range(6)]
        codeword = code.encode_window(data)
        received = {i: codeword[i] for i in (0, 3, 5, 6, 7, 8)}
        assert code.decode(received) == data


class TestEncodeBatch:
    """Multi-window batched encode: one stacked matrix pass, byte-identical
    to encoding each window on its own."""

    @staticmethod
    def _windows(rng, count, data_shards, length):
        return [
            [bytes(rng.randrange(256) for _ in range(length)) for _ in range(data_shards)]
            for _ in range(count)
        ]

    def test_batch_matches_per_window_encode(self):
        rng = random.Random(31)
        for count, k, m, length in [(1, 4, 2, 16), (6, 9, 3, 40), (3, 101, 9, 64)]:
            code = ReedSolomonCode(k, m)
            windows = self._windows(rng, count, k, length)
            assert code.encode_batch(windows) == [code.encode(w) for w in windows]

    def test_empty_batch_and_zero_parity(self):
        code = ReedSolomonCode(3, 0)
        assert code.encode_batch([]) == []
        rng = random.Random(32)
        windows = self._windows(rng, 4, 3, 8)
        assert code.encode_batch(windows) == [[], [], [], []]

    def test_mixed_lengths_fall_back_per_window(self):
        rng = random.Random(33)
        code = ReedSolomonCode(4, 2)
        windows = self._windows(rng, 2, 4, 10) + self._windows(rng, 2, 4, 24)
        assert code.encode_batch(windows) == [code.encode(w) for w in windows]

    def test_bad_window_is_rejected_before_any_work(self):
        rng = random.Random(34)
        code = ReedSolomonCode(4, 2)
        windows = self._windows(rng, 2, 4, 10)
        windows.append(windows[0][:3])  # wrong shard count
        with pytest.raises(ValueError, match="expected 4 data shards"):
            code.encode_batch(windows)

    def test_stacked_batch_crosses_numpy_threshold_identically(self, monkeypatch):
        """A batch large enough to cross ``_NUMPY_MIN_CELLS`` (where single
        windows would not) must produce the same parity via the kernel."""
        from repro.streaming import gf256_numpy

        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        if not gf256_numpy.available():
            pytest.skip("numpy not installed")
        rng = random.Random(35)
        code = ReedSolomonCode(9, 3)
        windows = self._windows(rng, 5, 9, 30)
        per_window = [code.encode(w) for w in windows]
        # 3 rows x (5 * 30) bytes stacked = 450 cells: force the crossover.
        monkeypatch.setattr(gf256, "_NUMPY_MIN_CELLS", 400)
        assert code.encode_batch(windows) == per_window


class TestNumpyCodecKernel:
    """The vectorized GF(256) kernel (numpy backend) must be byte-identical
    to both scalar paths, engage only above the measured size threshold,
    and stay inert when the process is pinned to the python backend."""

    @staticmethod
    def _random_problem(rng, rows, cols, length):
        matrix = Matrix([[rng.randrange(256) for _ in range(cols)] for _ in range(rows)])
        data = [bytes(rng.randrange(256) for _ in range(length)) for _ in range(cols)]
        return matrix, data

    def test_kernel_matches_scalar_reference(self, monkeypatch):
        from repro.streaming import gf256_numpy

        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        if not gf256_numpy.available():
            pytest.skip("numpy not installed")
        rng = random.Random(21)
        for rows, cols, length in [(1, 1, 1), (9, 101, 64), (5, 7, 1400), (12, 3, 33)]:
            matrix, data = self._random_problem(rng, rows, cols, length)
            expected = matrix.multiply_vector_rows([list(shard) for shard in data])
            result = gf256_numpy.matrix_multiply_vector(matrix.rows, data)
            assert result is not None
            assert [list(shard) for shard in result] == expected

    def test_dispatch_engages_above_threshold_and_stays_identical(self, monkeypatch):
        from repro.streaming import gf256_numpy

        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        if not gf256_numpy.available():
            pytest.skip("numpy not installed")
        # Lower the crossover so a test-sized product takes the numpy route
        # through the public multiply_vector_bytes dispatcher.
        monkeypatch.setattr(gf256, "_NUMPY_MIN_CELLS", 1)
        calls = []
        original = gf256_numpy.matrix_multiply_vector

        def spying(rows, shards):
            calls.append((len(rows), len(shards)))
            return original(rows, shards)

        monkeypatch.setattr(gf256_numpy, "matrix_multiply_vector", spying)
        rng = random.Random(22)
        matrix, data = self._random_problem(rng, 9, 101, 200)
        bulk = matrix.multiply_vector_bytes(data)
        assert calls == [(9, 101)]
        scalar = matrix.multiply_vector_rows([list(shard) for shard in data])
        assert [list(shard) for shard in bulk] == scalar

    def test_python_backend_disables_the_kernel(self, monkeypatch):
        from repro.streaming import gf256_numpy

        monkeypatch.setenv("REPRO_BACKEND", "python")
        rng = random.Random(23)
        matrix, data = self._random_problem(rng, 4, 4, 50)
        assert gf256_numpy.matrix_multiply_vector(matrix.rows, data) is None
        # The dispatcher falls through to the big-int path and still answers.
        monkeypatch.setattr(gf256, "_NUMPY_MIN_CELLS", 1)
        scalar = matrix.multiply_vector_rows([list(shard) for shard in data])
        assert [list(shard) for shard in matrix.multiply_vector_bytes(data)] == scalar

    def test_paper_shape_stays_on_the_bigint_path(self, monkeypatch):
        """At the paper's (101+9, 1400 B) window the measured winner is the
        translate/big-int path; the default threshold must keep it."""
        from repro.streaming import gf256_numpy

        monkeypatch.setenv("REPRO_BACKEND", "numpy")

        def exploding(rows, shards):  # pragma: no cover - must not run
            raise AssertionError("numpy kernel engaged below its threshold")

        monkeypatch.setattr(gf256_numpy, "matrix_multiply_vector", exploding)
        rng = random.Random(24)
        matrix, data = self._random_problem(rng, 9, 101, 1400)
        assert len(matrix.rows) * 1400 < gf256._NUMPY_MIN_CELLS
        matrix.multiply_vector_bytes(data)  # does not touch the kernel
