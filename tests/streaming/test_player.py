"""Unit tests for the playback buffer and report."""

import math

import pytest

from repro.streaming.player import PlaybackBuffer
from repro.streaming.schedule import StreamConfig, StreamSchedule


@pytest.fixture
def schedule() -> StreamSchedule:
    # 3 windows of 5 packets (4 source + 1 FEC); decode threshold is 4.
    return StreamSchedule(
        StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=4,
            fec_packets_per_window=1,
            num_windows=3,
        )
    )


def deliver_all(buffer: PlaybackBuffer, schedule: StreamSchedule, delay: float) -> None:
    for packet in schedule.packets():
        buffer.on_packet(packet.packet_id, packet.publish_time + delay)


class TestPlaybackBuffer:
    def test_all_packets_on_time_gives_zero_jitter(self, schedule):
        buffer = PlaybackBuffer(schedule, lag=1.0)
        deliver_all(buffer, schedule, delay=0.5)
        report = buffer.report()
        assert report.total_windows == 3
        assert report.viewable_windows == 3
        assert report.jitter_ratio == 0.0
        assert report.views_stream()

    def test_late_packets_jitter_windows(self, schedule):
        buffer = PlaybackBuffer(schedule, lag=1.0)
        deliver_all(buffer, schedule, delay=5.0)
        report = buffer.report()
        assert report.viewable_windows == 0
        assert report.jitter_ratio == 1.0
        assert not report.views_stream()

    def test_infinite_lag_accepts_any_delay(self, schedule):
        buffer = PlaybackBuffer(schedule, lag=math.inf)
        deliver_all(buffer, schedule, delay=1e6)
        assert buffer.report().jitter_ratio == 0.0

    def test_fec_tolerance_allows_one_missing_packet(self, schedule):
        buffer = PlaybackBuffer(schedule, lag=1.0)
        for packet in schedule.packets():
            if packet.packet_id == 0:
                continue  # lose one packet of window 0
            buffer.on_packet(packet.packet_id, packet.publish_time + 0.1)
        report = buffer.report()
        assert report.viewable_windows == 3

    def test_two_missing_packets_break_a_window(self, schedule):
        buffer = PlaybackBuffer(schedule, lag=1.0)
        for packet in schedule.packets():
            if packet.packet_id in (0, 1):
                continue
            buffer.on_packet(packet.packet_id, packet.publish_time + 0.1)
        report = buffer.report()
        assert report.viewable_windows == 2
        assert report.jittered_windows == 1

    def test_duplicates_are_counted_but_ignored(self, schedule):
        buffer = PlaybackBuffer(schedule, lag=1.0)
        buffer.on_packet(0, 0.1)
        buffer.on_packet(0, 0.2)
        assert buffer.packets_received == 1
        assert buffer.duplicates == 1

    def test_missing_packets_listed(self, schedule):
        buffer = PlaybackBuffer(schedule, lag=1.0)
        buffer.on_packet(0, 0.1)
        missing = buffer.missing_packets()
        assert 0 not in missing
        assert len(missing) == schedule.num_packets - 1

    def test_negative_lag_rejected(self, schedule):
        with pytest.raises(ValueError):
            PlaybackBuffer(schedule, lag=-1.0)

    def test_window_packets_on_time_counts_deadline(self, schedule):
        buffer = PlaybackBuffer(schedule, lag=1.0)
        first_window = schedule.window(0)
        for offset, packet_id in enumerate(first_window.packet_ids):
            publish = schedule.packet(packet_id).publish_time
            # Every second packet arrives after its deadline.
            arrival = publish + (2.0 if offset % 2 else 0.5)
            buffer.on_packet(packet_id, arrival)
        assert buffer.window_packets_on_time(0) == 3

    def test_views_stream_respects_threshold(self, schedule):
        buffer = PlaybackBuffer(schedule, lag=1.0)
        deliver_all(buffer, schedule, delay=0.1)
        report = buffer.report()
        assert report.views_stream(max_jitter=0.0)
