"""Unit tests for the stream emitter."""

import pytest

from repro.streaming.schedule import StreamConfig, StreamSchedule
from repro.streaming.source import StreamEmitter


@pytest.fixture
def schedule() -> StreamSchedule:
    return StreamSchedule(
        StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=5,
            fec_packets_per_window=1,
            num_windows=2,
        )
    )


class TestStreamEmitter:
    def test_publishes_every_packet_at_its_time(self, simulator, schedule):
        published = []
        emitter = StreamEmitter(simulator, schedule, lambda d: published.append((d.packet_id, simulator.now)))
        emitter.start()
        simulator.run_until_idle()
        assert len(published) == schedule.num_packets
        assert emitter.finished
        for packet_id, time in published:
            assert time == pytest.approx(schedule.packet(packet_id).publish_time)

    def test_publish_order_matches_packet_ids(self, simulator, schedule):
        published = []
        emitter = StreamEmitter(simulator, schedule, lambda d: published.append(d.packet_id))
        emitter.start()
        simulator.run_until_idle()
        assert published == list(range(schedule.num_packets))

    def test_double_start_rejected(self, simulator, schedule):
        emitter = StreamEmitter(simulator, schedule, lambda d: None)
        emitter.start()
        with pytest.raises(RuntimeError):
            emitter.start()

    def test_stop_halts_publication(self, simulator, schedule):
        published = []
        emitter = StreamEmitter(simulator, schedule, lambda d: published.append(d.packet_id))
        emitter.start()
        simulator.run(until=schedule.config.packet_interval * 3.5)
        emitter.stop()
        simulator.run_until_idle()
        assert len(published) == 4
        assert not emitter.finished

    def test_published_count_tracks_progress(self, simulator, schedule):
        emitter = StreamEmitter(simulator, schedule, lambda d: None)
        emitter.start()
        simulator.run(until=schedule.config.packet_interval * 2.5)
        assert emitter.published_count == 3

    def test_payload_factory_is_used(self, simulator, schedule):
        emitter = StreamEmitter(
            simulator,
            schedule,
            lambda d: None,
            payload_factory=lambda d: bytes([d.packet_id % 256]) * 4,
        )
        descriptor = schedule.packet(3)
        assert emitter.make_payload(descriptor) == b"\x03\x03\x03\x03"

    def test_payload_none_without_factory(self, simulator, schedule):
        emitter = StreamEmitter(simulator, schedule, lambda d: None)
        assert emitter.make_payload(schedule.packet(0)) is None
