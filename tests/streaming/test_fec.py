"""Unit tests for the Cauchy Reed-Solomon erasure codec."""

import random

import pytest

from repro.streaming.fec import ReedSolomonCode, WindowCodec, overhead_ratio


def random_shards(count: int, length: int, seed: int = 1) -> list:
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(length)) for _ in range(count)]


class TestReedSolomonCode:
    def test_encode_produces_parity_shards(self):
        code = ReedSolomonCode(data_shards=4, parity_shards=2)
        data = random_shards(4, 16)
        parity = code.encode(data)
        assert len(parity) == 2
        assert all(len(shard) == 16 for shard in parity)

    def test_all_data_shards_decode_trivially(self):
        code = ReedSolomonCode(4, 2)
        data = random_shards(4, 8)
        shards = {index: shard for index, shard in enumerate(data)}
        assert code.decode(shards) == data

    def test_recovery_from_any_k_shards(self):
        code = ReedSolomonCode(5, 3)
        data = random_shards(5, 32, seed=3)
        codeword = code.encode_window(data)
        # Try every combination of 3 erasures (keep exactly k=5 shards).
        import itertools

        for erased in itertools.combinations(range(8), 3):
            kept = {i: codeword[i] for i in range(8) if i not in erased}
            assert code.decode(kept) == data

    def test_too_few_shards_rejected(self):
        code = ReedSolomonCode(4, 2)
        data = random_shards(4, 8)
        codeword = code.encode_window(data)
        with pytest.raises(ValueError):
            code.decode({0: codeword[0], 1: codeword[1], 2: codeword[2]})

    def test_mismatched_lengths_rejected(self):
        code = ReedSolomonCode(2, 1)
        with pytest.raises(ValueError):
            code.encode([b"abcd", b"ab"])

    def test_bad_shard_index_rejected(self):
        code = ReedSolomonCode(2, 1)
        data = random_shards(2, 4)
        codeword = code.encode_window(data)
        with pytest.raises(ValueError):
            code.decode({0: codeword[0], 5: codeword[1]})

    def test_reconstruct_all_restores_parity_too(self):
        code = ReedSolomonCode(4, 2)
        data = random_shards(4, 8, seed=9)
        codeword = code.encode_window(data)
        kept = {i: codeword[i] for i in (0, 2, 4, 5)}
        assert code.reconstruct_all(kept) == codeword

    def test_zero_parity_code(self):
        code = ReedSolomonCode(3, 0)
        data = random_shards(3, 4)
        assert code.encode(data) == []
        assert code.encode_window(data) == data

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(200, 100)

    def test_invalid_shard_counts_rejected(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(0, 2)
        with pytest.raises(ValueError):
            ReedSolomonCode(2, -1)

    def test_paper_window_dimensions_roundtrip(self):
        """The paper's 101+9 window: any 101 of 110 packets reconstruct."""
        code = ReedSolomonCode(101, 9)
        data = random_shards(101, 48, seed=11)
        codeword = code.encode_window(data)
        rng = random.Random(5)
        erased = set(rng.sample(range(110), 9))
        kept = {i: codeword[i] for i in range(110) if i not in erased}
        assert code.decode(kept) == data


class TestWindowCodec:
    def test_window_properties(self):
        codec = WindowCodec(source_packets=101, fec_packets=9)
        assert codec.window_size == 110
        assert codec.required_packets == 101
        assert codec.loss_tolerance() == 9

    def test_can_decode_counting_rule(self):
        codec = WindowCodec(source_packets=20, fec_packets=2)
        assert codec.can_decode(20)
        assert codec.can_decode(22)
        assert not codec.can_decode(19)

    def test_encode_decode_window(self):
        codec = WindowCodec(source_packets=6, fec_packets=2)
        data = random_shards(6, 10, seed=2)
        payloads = codec.encode_window(data)
        assert len(payloads) == 8
        received = {i: payloads[i] for i in (0, 1, 3, 4, 6, 7)}
        assert codec.decode_window(received) == data


class TestOverheadRatio:
    def test_paper_overhead(self):
        assert overhead_ratio(101, 9) == pytest.approx(9 / 110)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            overhead_ratio(0, 0)
