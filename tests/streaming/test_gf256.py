"""Unit tests for GF(256) arithmetic and the small matrix helper."""

import pytest

from repro.streaming import gf256
from repro.streaming.gf256 import Matrix


class TestFieldArithmetic:
    def test_add_is_xor(self):
        assert gf256.add(0b1010, 0b0110) == 0b1100

    def test_add_self_is_zero(self):
        for value in range(256):
            assert gf256.add(value, value) == 0

    def test_multiply_by_zero(self):
        assert gf256.multiply(0, 123) == 0
        assert gf256.multiply(123, 0) == 0

    def test_multiply_by_one_is_identity(self):
        for value in range(256):
            assert gf256.multiply(value, 1) == value

    def test_multiply_commutative_on_samples(self):
        for a, b in [(3, 7), (200, 45), (255, 254), (16, 16)]:
            assert gf256.multiply(a, b) == gf256.multiply(b, a)

    def test_known_product(self):
        # 2 * 128 wraps through the primitive polynomial 0x11d: 0x100 ^ 0x11d = 0x1d.
        assert gf256.multiply(2, 128) == 0x1D

    def test_divide_inverts_multiply(self):
        for a in [1, 7, 100, 255]:
            for b in [1, 3, 77, 254]:
                assert gf256.divide(gf256.multiply(a, b), b) == a

    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.divide(5, 0)

    def test_inverse(self):
        for value in range(1, 256):
            assert gf256.multiply(value, gf256.inverse(value)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.inverse(0)

    def test_power(self):
        assert gf256.power(2, 0) == 1
        assert gf256.power(2, 1) == 2
        assert gf256.power(2, 8) == gf256.multiply(gf256.power(2, 4), gf256.power(2, 4))

    def test_power_of_zero(self):
        assert gf256.power(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            gf256.power(0, -1)


class TestRowOperations:
    def test_multiply_row(self):
        row = [1, 2, 3]
        assert gf256.multiply_row(1, row) == row
        assert gf256.multiply_row(0, row) == [0, 0, 0]
        doubled = gf256.multiply_row(2, row)
        assert doubled == [gf256.multiply(2, value) for value in row]

    def test_add_rows(self):
        assert gf256.add_rows([1, 2, 3], [1, 2, 3]) == [0, 0, 0]
        assert gf256.add_rows([1, 0], [0, 1]) == [1, 1]

    def test_add_rows_length_mismatch(self):
        with pytest.raises(ValueError):
            gf256.add_rows([1], [1, 2])

    def test_multiply_accumulate(self):
        target = [0, 0, 0]
        gf256.multiply_accumulate(target, 3, [1, 2, 3])
        assert target == [gf256.multiply(3, v) for v in [1, 2, 3]]
        gf256.multiply_accumulate(target, 3, [1, 2, 3])
        assert target == [0, 0, 0]


class TestMatrix:
    def test_identity(self):
        identity = Matrix.identity(3)
        assert identity.rows == [[1, 0, 0], [0, 1, 0], [0, 0, 1]]

    def test_multiply_vector_rows_with_identity(self):
        identity = Matrix.identity(2)
        data = [[10, 20, 30], [40, 50, 60]]
        assert identity.multiply_vector_rows(data) == data

    def test_inverted_identity_is_identity(self):
        identity = Matrix.identity(4)
        assert identity.inverted().rows == Matrix.identity(4).rows

    def test_inverse_times_matrix_is_identity(self):
        matrix = Matrix([[1, 2, 3], [4, 5, 6], [7, 8, 10]])
        inverse = matrix.inverted()
        # Multiply inverse by each column of the original expressed as data rows.
        columns = [[row[c] for row in matrix.rows] for c in range(3)]
        product_columns = [inverse.multiply_vector_rows([[v] for v in column]) for column in columns]
        product = [[product_columns[c][r][0] for c in range(3)] for r in range(3)]
        assert product == Matrix.identity(3).rows

    def test_singular_matrix_rejected(self):
        singular = Matrix([[1, 2], [1, 2]])
        with pytest.raises(ValueError):
            singular.inverted()

    def test_non_square_inversion_rejected(self):
        with pytest.raises(ValueError):
            Matrix([[1, 2, 3], [4, 5, 6]]).inverted()

    def test_invalid_entries_rejected(self):
        with pytest.raises(ValueError):
            Matrix([[0, 300]])

    def test_dimension_mismatch_rejected(self):
        matrix = Matrix([[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            matrix.multiply_vector_rows([[1, 2, 3]])
