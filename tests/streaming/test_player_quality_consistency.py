"""Cross-check: the online player and the offline quality analyzer agree.

Both the :class:`PlaybackBuffer` (online, one lag) and the
:class:`StreamQualityAnalyzer` (offline, any lag) implement the same playout
deadline rule; feeding them the same delivery trace must yield the same
per-window verdicts and the same jitter ratio.
"""

import random

import pytest

from repro.metrics.delivery import DeliveryLog
from repro.metrics.quality import StreamQualityAnalyzer
from repro.streaming.player import PlaybackBuffer
from repro.streaming.schedule import StreamConfig, StreamSchedule


@pytest.fixture
def schedule() -> StreamSchedule:
    return StreamSchedule(
        StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=8,
            fec_packets_per_window=2,
            num_windows=6,
        )
    )


def random_trace(schedule, seed, loss_probability=0.15, max_delay=12.0):
    """A random delivery trace: some packets lost, the rest randomly delayed."""
    rng = random.Random(seed)
    trace = {}
    for packet in schedule.packets():
        if rng.random() < loss_probability:
            continue
        trace[packet.packet_id] = packet.publish_time + rng.uniform(0.0, max_delay)
    return trace


class TestPlayerQualityConsistency:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("lag", [1.0, 5.0, 10.0])
    def test_same_verdicts_for_same_trace(self, schedule, seed, lag):
        trace = random_trace(schedule, seed)

        buffer = PlaybackBuffer(schedule, lag=lag)
        log = DeliveryLog()
        for packet_id, arrival in trace.items():
            buffer.on_packet(packet_id, arrival)
            log.record(7, packet_id, arrival)

        report = buffer.report()
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[7])

        for window in report.windows:
            assert window.viewable == analyzer.window_viewable(7, window.window_index, lag)
        assert report.jitter_ratio == pytest.approx(analyzer.node_jitter(7, lag))

    def test_views_stream_agrees(self, schedule):
        trace = random_trace(schedule, seed=9, loss_probability=0.05, max_delay=2.0)
        buffer = PlaybackBuffer(schedule, lag=5.0)
        log = DeliveryLog()
        for packet_id, arrival in trace.items():
            buffer.on_packet(packet_id, arrival)
            log.record(1, packet_id, arrival)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1])
        assert buffer.report().views_stream() == analyzer.node_views_stream(1, 5.0)
