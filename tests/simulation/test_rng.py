"""Unit tests for the named deterministic RNG registry."""

from repro.simulation.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(42, "latency") == derive_seed(42, "latency")

    def test_different_names_differ(self):
        assert derive_seed(42, "latency") != derive_seed(42, "loss")

    def test_different_roots_differ(self):
        assert derive_seed(1, "latency") != derive_seed(2, "latency")

    def test_seed_is_non_negative_int(self):
        seed = derive_seed(0, "anything")
        assert isinstance(seed, int)
        assert seed >= 0


class TestRngRegistry:
    def test_stream_is_cached(self):
        registry = RngRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_independent_of_creation_order(self):
        first = RngRegistry(7)
        second = RngRegistry(7)
        # Consume "a" heavily in one registry before creating "b".
        first_a = first.stream("a")
        for _ in range(1000):
            first_a.random()
        first_b_draw = first.stream("b").random()
        second_b_draw = second.stream("b").random()
        assert first_b_draw == second_b_draw

    def test_node_stream_naming(self):
        registry = RngRegistry(7)
        assert registry.node_stream("partners", 3) is registry.stream("partners/node-3")

    def test_distinct_nodes_get_distinct_streams(self):
        registry = RngRegistry(7)
        draws_a = [registry.node_stream("partners", 1).random() for _ in range(5)]
        draws_b = [registry.node_stream("partners", 2).random() for _ in range(5)]
        assert draws_a != draws_b

    def test_fork_creates_independent_namespace(self):
        registry = RngRegistry(7)
        fork = registry.fork("workload")
        assert fork.root_seed != registry.root_seed
        assert fork.stream("a").random() != registry.stream("a").random()

    def test_names_lists_created_streams(self):
        registry = RngRegistry(7)
        registry.stream("x")
        registry.stream("y")
        assert set(registry.names()) == {"x", "y"}
