"""Unit tests for the simulator event loop."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.errors import SimulationStateError, SimulationTimeError
from repro.simulation.timers import PeriodicTimer


class TestScheduling:
    def test_schedule_runs_callback_at_right_time(self, simulator):
        times = []
        simulator.schedule(1.5, lambda: times.append(simulator.now))
        simulator.run_until_idle()
        assert times == [pytest.approx(1.5)]

    def test_schedule_at_absolute_time(self, simulator):
        times = []
        simulator.schedule_at(4.0, lambda: times.append(simulator.now))
        simulator.run_until_idle()
        assert times == [pytest.approx(4.0)]

    def test_schedule_negative_delay_raises(self, simulator):
        with pytest.raises(SimulationTimeError):
            simulator.schedule(-0.1, lambda: None)

    def test_schedule_at_past_raises(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run_until_idle()
        with pytest.raises(SimulationTimeError):
            simulator.schedule_at(0.5, lambda: None)

    def test_callback_arguments_are_passed(self, simulator):
        received = []
        simulator.schedule(0.1, received.append, "payload")
        simulator.run_until_idle()
        assert received == ["payload"]

    def test_cancel_prevents_execution(self, simulator):
        fired = []
        handle = simulator.schedule(1.0, fired.append, "x")
        simulator.cancel(handle)
        simulator.run_until_idle()
        assert fired == []

    def test_cancel_none_is_noop(self, simulator):
        simulator.cancel(None)


class TestRun:
    def test_run_until_limit_advances_clock_to_limit(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.schedule(10.0, lambda: None)
        executed = simulator.run(until=5.0)
        assert executed == 1
        assert simulator.now == pytest.approx(5.0)
        assert simulator.pending_events == 1

    def test_run_until_idle_executes_everything(self, simulator):
        count = []
        for i in range(10):
            simulator.schedule(i * 0.1, count.append, i)
        executed = simulator.run_until_idle()
        assert executed == 10
        assert simulator.pending_events == 0

    def test_events_scheduled_during_run_are_executed(self, simulator):
        order = []

        def chain(step):
            order.append(step)
            if step < 3:
                simulator.schedule(1.0, chain, step + 1)

        simulator.schedule(0.0, chain, 0)
        simulator.run_until_idle()
        assert order == [0, 1, 2, 3]
        assert simulator.now == pytest.approx(3.0)

    def test_max_events_stops_early(self, simulator):
        for i in range(100):
            simulator.schedule(i * 0.01, lambda: None)
        executed = simulator.run(max_events=10)
        assert executed == 10
        assert simulator.pending_events == 90

    def test_reentrant_run_raises(self, simulator):
        def nested():
            simulator.run()

        simulator.schedule(0.1, nested)
        with pytest.raises(SimulationStateError):
            simulator.run_until_idle()

    def test_events_processed_counter(self, simulator):
        for i in range(5):
            simulator.schedule(float(i), lambda: None)
        simulator.run_until_idle()
        assert simulator.events_processed == 5

    def test_step_returns_false_when_empty(self, simulator):
        assert simulator.step() is False


class TestPeriodicCallbacks:
    """The PeriodicTimer idiom that replaced the old call_every() shim."""

    def test_periodic_timer_fires_on_schedule(self, simulator):
        ticks = []
        timer = PeriodicTimer(
            simulator, 0.5, lambda: ticks.append(simulator.now), start_delay=0.0
        )
        timer.start()
        assert timer.running
        simulator.run(until=2.0)
        # start_delay=0 fires immediately, then every 0.5s: t = 0, .5, 1, 1.5, 2
        assert timer.fire_count == len(ticks) == 5

    def test_periodic_timer_is_stoppable(self, simulator):
        ticks = []
        timer = PeriodicTimer(
            simulator, 0.5, lambda: ticks.append(simulator.now), start_delay=0.0
        )
        timer.start()
        simulator.run(until=1.0)
        timer.stop()
        simulator.run(until=5.0)
        assert len(ticks) == 3

    def test_fire_and_forget_at_schedules_at_absolute_time(self, simulator):
        times = []
        simulator.schedule_fire_and_forget_at(2.5, lambda: times.append(simulator.now))
        simulator.run_until_idle()
        assert times == [pytest.approx(2.5)]

    def test_fire_and_forget_at_past_raises(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run_until_idle()
        with pytest.raises(SimulationTimeError):
            simulator.schedule_fire_and_forget_at(0.5, lambda: None)


class TestDeterminism:
    def test_same_seed_gives_same_random_streams(self):
        first = Simulator(seed=99)
        second = Simulator(seed=99)
        draws_first = [first.rng.stream("loss").random() for _ in range(10)]
        draws_second = [second.rng.stream("loss").random() for _ in range(10)]
        assert draws_first == draws_second

    def test_different_seeds_differ(self):
        first = Simulator(seed=1)
        second = Simulator(seed=2)
        assert first.rng.stream("loss").random() != second.rng.stream("loss").random()
