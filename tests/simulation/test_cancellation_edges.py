"""Cancellation edge cases: the live counter and compaction stay consistent.

The event queue keeps an O(1) live counter (cancelled handles report back)
and compacts the heap once dead entries dominate.  These tests drive every
awkward cancellation path — ``cancel(None)``, double-cancel, cancel after
the event already fired, cancel *from inside* a running event — and assert
``Simulator.pending_events`` / the queue's dead-entry accounting never
drift, including across threshold-triggered compactions.
"""

from repro.simulation.engine import Simulator
from repro.simulation.event_queue import COMPACTION_MIN_DEAD, EventQueue


class TestCancelNone:
    def test_cancel_none_is_accepted_and_changes_nothing(self):
        simulator = Simulator(seed=1)
        simulator.schedule(1.0, lambda: None)
        simulator.cancel(None)
        assert simulator.pending_events == 1
        assert simulator.run_until_idle() == 1


class TestDoubleCancel:
    def test_double_cancel_counts_one_dead_entry(self):
        simulator = Simulator(seed=1)
        handle = simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        simulator.cancel(handle)
        assert simulator.pending_events == 1
        simulator.cancel(handle)  # second cancel must not double-count
        assert simulator.pending_events == 1
        assert simulator._queue.dead_entries == 1
        assert simulator.run_until_idle() == 1
        assert simulator.pending_events == 0

    def test_many_double_cancels_never_drive_the_counter_negative(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(10)]
        for handle in handles[:5]:
            handle.cancel()
            handle.cancel()
            handle.cancel()
        assert len(queue) == 5
        assert queue.dead_entries == 5
        popped = 0
        while queue.pop() is not None:
            popped += 1
        assert popped == 5
        assert len(queue) == 0
        assert queue.dead_entries == 0


class TestCancelAfterFire:
    def test_cancel_after_fire_is_harmless(self):
        simulator = Simulator(seed=1)
        fired = []
        handle = simulator.schedule(1.0, fired.append, "x")
        simulator.schedule(2.0, lambda: None)
        simulator.run(until=1.5)
        assert fired == ["x"]
        # The event already executed; cancelling its handle must not touch
        # the dead-entry counter (the handle was detached at pop time).
        simulator.cancel(handle)
        assert simulator.pending_events == 1
        assert simulator._queue.dead_entries == 0
        assert simulator.run_until_idle() == 1

    def test_cancel_after_clear_is_harmless(self):
        simulator = Simulator(seed=1)
        handle = simulator.schedule(1.0, lambda: None)
        simulator.clear()
        simulator.cancel(handle)
        assert simulator.pending_events == 0
        assert simulator._queue.dead_entries == 0


class TestCancelDuringDispatch:
    def test_event_cancels_a_later_event_mid_dispatch(self):
        simulator = Simulator(seed=1)
        fired = []
        victim = simulator.schedule(2.0, fired.append, "victim")
        simulator.schedule(1.0, lambda: simulator.cancel(victim))
        executed = simulator.run_until_idle()
        assert fired == []
        assert executed == 1
        assert simulator.pending_events == 0

    def test_event_cancels_a_same_instant_event_mid_dispatch(self):
        simulator = Simulator(seed=1)
        fired = []
        simulator.schedule(1.0, lambda: simulator.cancel(second))
        second = simulator.schedule(1.0, fired.append, "second")
        simulator.schedule(1.0, fired.append, "third")
        executed = simulator.run_until_idle()
        # Same-instant events fire in scheduling order; the second was
        # cancelled by the first while already at the top of the heap.
        assert fired == ["third"]
        assert executed == 2
        assert simulator.pending_events == 0

    def test_self_cancel_mid_dispatch_is_harmless(self):
        simulator = Simulator(seed=1)
        fired = []
        handles = {}

        def self_cancelling():
            # The event is already executing: its handle was detached at
            # pop time, so this cancel must not corrupt the counters.
            simulator.cancel(handles["me"])
            fired.append("ran")

        handles["me"] = simulator.schedule(1.0, self_cancelling)
        simulator.schedule(2.0, fired.append, "later")
        simulator.run_until_idle()
        assert fired == ["ran", "later"]
        assert simulator.pending_events == 0
        assert simulator._queue.dead_entries == 0


class TestCancellationWithCompaction:
    def test_mass_cancellation_triggers_compaction_and_preserves_order(self):
        simulator = Simulator(seed=1)
        queue = simulator._queue
        fired = []
        handles = []
        total = 4 * COMPACTION_MIN_DEAD
        for i in range(total):
            handles.append(simulator.schedule(float(i + 1), fired.append, i))
        # Cancel ~75%: crosses both compaction conditions (>= minimum and
        # dead entries outnumbering live ones).
        for handle in handles[: 3 * COMPACTION_MIN_DEAD]:
            simulator.cancel(handle)
        assert queue.dead_entries < COMPACTION_MIN_DEAD  # compaction ran
        assert simulator.pending_events == COMPACTION_MIN_DEAD
        executed = simulator.run_until_idle()
        assert executed == COMPACTION_MIN_DEAD
        assert fired == list(range(3 * COMPACTION_MIN_DEAD, total))

    def test_cancel_during_dispatch_keeps_counter_consistent_across_compaction(self):
        simulator = Simulator(seed=1)
        fired = []
        victims = []

        def cancel_wave():
            for handle in victims:
                simulator.cancel(handle)

        simulator.schedule(0.5, cancel_wave)
        total = 3 * COMPACTION_MIN_DEAD
        for i in range(total):
            victims.append(simulator.schedule(1.0 + i, fired.append, i))
        survivors = [simulator.schedule(1000.0 + i, fired.append, total + i) for i in range(5)]
        simulator.run_until_idle()
        assert fired == [total + i for i in range(len(survivors))]
        assert simulator.pending_events == 0
        assert simulator._queue.dead_entries == 0

    def test_pending_events_matches_queue_len_throughout(self):
        simulator = Simulator(seed=1)
        handles = [simulator.schedule(float(i + 1), lambda: None) for i in range(200)]
        expected_live = 200
        for index, handle in enumerate(handles):
            if index % 3 != 0:
                simulator.cancel(handle)
                expected_live -= 1
            assert simulator.pending_events == expected_live
            assert simulator.pending_events == len(simulator._queue)
        executed = simulator.run_until_idle()
        assert executed == expected_live
