"""Unit tests for one-shot and periodic timers."""

import pytest

from repro.simulation.timers import PeriodicTimer, Timer


class TestTimer:
    def test_fires_after_delay(self, simulator):
        fired = []
        timer = Timer(simulator, lambda: fired.append(simulator.now))
        timer.arm(2.0)
        simulator.run_until_idle()
        assert fired == [pytest.approx(2.0)]
        assert timer.fired

    def test_cancel_prevents_firing(self, simulator):
        fired = []
        timer = Timer(simulator, lambda: fired.append(1))
        timer.arm(1.0)
        timer.cancel()
        simulator.run_until_idle()
        assert fired == []
        assert not timer.fired

    def test_rearm_supersedes_previous_schedule(self, simulator):
        fired = []
        timer = Timer(simulator, lambda: fired.append(simulator.now))
        timer.arm(1.0)
        timer.arm(5.0)
        simulator.run_until_idle()
        assert fired == [pytest.approx(5.0)]

    def test_armed_reports_state(self, simulator):
        timer = Timer(simulator, lambda: None)
        assert not timer.armed
        timer.arm(1.0)
        assert timer.armed
        simulator.run_until_idle()
        assert not timer.armed

    def test_timer_can_be_armed_again_after_firing(self, simulator):
        fired = []
        timer = Timer(simulator, lambda: fired.append(simulator.now))
        timer.arm(1.0)
        simulator.run_until_idle()
        timer.arm(1.0)
        simulator.run_until_idle()
        assert fired == [pytest.approx(1.0), pytest.approx(2.0)]


class TestPeriodicTimer:
    def test_fires_every_period(self, simulator):
        fired = []
        timer = PeriodicTimer(simulator, 1.0, lambda: fired.append(simulator.now))
        timer.start()
        simulator.run(until=3.5)
        assert fired == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]
        assert timer.fire_count == 3

    def test_custom_start_delay(self, simulator):
        fired = []
        timer = PeriodicTimer(
            simulator, 1.0, lambda: fired.append(simulator.now), start_delay=0.25
        )
        timer.start()
        simulator.run(until=2.0)
        assert fired[0] == pytest.approx(0.25)
        assert fired[1] == pytest.approx(1.25)

    def test_stop_halts_future_fires(self, simulator):
        fired = []
        timer = PeriodicTimer(simulator, 1.0, lambda: fired.append(simulator.now))
        timer.start()
        simulator.run(until=2.5)
        timer.stop()
        simulator.run(until=10.0)
        assert len(fired) == 2
        assert not timer.running

    def test_double_start_is_noop(self, simulator):
        timer = PeriodicTimer(simulator, 1.0, lambda: None)
        timer.start()
        timer.start()
        simulator.run(until=3.5)
        assert timer.fire_count == 3

    def test_invalid_period_rejected(self, simulator):
        with pytest.raises(ValueError):
            PeriodicTimer(simulator, 0.0, lambda: None)

    def test_invalid_jitter_rejected(self, simulator):
        with pytest.raises(ValueError):
            PeriodicTimer(simulator, 1.0, lambda: None, jitter=1.5)

    def test_jittered_timer_keeps_firing(self, simulator):
        fired = []
        timer = PeriodicTimer(simulator, 1.0, lambda: fired.append(simulator.now), jitter=0.3)
        timer.start()
        simulator.run(until=20.0)
        assert 14 <= len(fired) <= 28
        # Intervals stay within the configured jitter band.
        intervals = [b - a for a, b in zip(fired, fired[1:])]
        assert all(0.69 <= interval <= 1.31 for interval in intervals)

    def test_stop_and_restart(self, simulator):
        fired = []
        timer = PeriodicTimer(simulator, 1.0, lambda: fired.append(simulator.now))
        timer.start()
        simulator.run(until=1.5)
        timer.stop()
        timer.start()
        simulator.run(until=3.0)
        assert len(fired) == 2
