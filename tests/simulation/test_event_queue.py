"""Unit tests for the cancellable event queue."""

import pytest

from repro.simulation.errors import SimulationTimeError
from repro.simulation.event_queue import EventQueue


class TestEventQueue:
    def test_empty_queue_has_no_next_time(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.peek_time() is None
        assert queue.pop() is None

    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, order.append, "c")
        queue.push(1.0, order.append, "a")
        queue.push(2.0, order.append, "b")
        while queue:
            event = queue.pop()
            event.callback(*event.args)
        assert order == ["a", "b", "c"]

    def test_same_time_events_pop_in_insertion_order(self):
        queue = EventQueue()
        labels = []
        for label in ["first", "second", "third"]:
            queue.push(1.0, labels.append, label)
        popped = [queue.pop() for _ in range(3)]
        for event in popped:
            event.callback(*event.args)
        assert labels == ["first", "second", "third"]

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationTimeError):
            queue.push(-1.0, lambda: None)

    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        fired = []
        handle = queue.push(1.0, fired.append, "cancelled")
        queue.push(2.0, fired.append, "kept")
        handle.cancel()
        assert len(queue) == 1
        event = queue.pop()
        event.callback(*event.args)
        assert fired == ["kept"]

    def test_cancelling_twice_is_harmless(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert len(queue) == 0

    def test_peek_time_skips_cancelled_head(self):
        queue = EventQueue()
        head = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        head.cancel()
        assert queue.peek_time() == 5.0

    def test_len_counts_only_live_events(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(5)]
        handles[0].cancel()
        handles[3].cancel()
        assert len(queue) == 3

    def test_clear_empties_queue(self):
        queue = EventQueue()
        for i in range(4):
            queue.push(float(i), lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None
