"""Unit tests for the cancellable event queue."""

import pytest

from repro.simulation.errors import SimulationTimeError
from repro.simulation.event_queue import COMPACTION_MIN_DEAD, EventQueue


class TestEventQueue:
    def test_empty_queue_has_no_next_time(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.peek_time() is None
        assert queue.pop() is None

    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, order.append, "c")
        queue.push(1.0, order.append, "a")
        queue.push(2.0, order.append, "b")
        while queue:
            event = queue.pop()
            event.callback(*event.args)
        assert order == ["a", "b", "c"]

    def test_same_time_events_pop_in_insertion_order(self):
        queue = EventQueue()
        labels = []
        for label in ["first", "second", "third"]:
            queue.push(1.0, labels.append, label)
        popped = [queue.pop() for _ in range(3)]
        for event in popped:
            event.callback(*event.args)
        assert labels == ["first", "second", "third"]

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationTimeError):
            queue.push(-1.0, lambda: None)

    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        fired = []
        handle = queue.push(1.0, fired.append, "cancelled")
        queue.push(2.0, fired.append, "kept")
        handle.cancel()
        assert len(queue) == 1
        event = queue.pop()
        event.callback(*event.args)
        assert fired == ["kept"]

    def test_cancelling_twice_is_harmless(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert len(queue) == 0

    def test_peek_time_skips_cancelled_head(self):
        queue = EventQueue()
        head = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        head.cancel()
        assert queue.peek_time() == 5.0

    def test_len_counts_only_live_events(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(5)]
        handles[0].cancel()
        handles[3].cancel()
        assert len(queue) == 3

    def test_clear_empties_queue(self):
        queue = EventQueue()
        for i in range(4):
            queue.push(float(i), lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None


class TestLiveCounterAndCompaction:
    def test_len_is_constant_time_counter(self):
        """__len__ must not scan the heap: it reads a maintained counter."""
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(10)]
        assert len(queue) == 10
        for handle in handles[:4]:
            handle.cancel()
        # The counter and the ground truth (scan) must agree at every step.
        live_scan = sum(1 for event in queue._heap if not event.handle.cancelled)
        assert len(queue) == live_scan == 6

    def test_cancel_after_pop_does_not_corrupt_counter(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped.handle is first
        first.cancel()  # already executed: must not decrement the live count
        assert len(queue) == 1
        assert queue.pop() is not None
        assert queue.pop() is None

    def test_cancelled_pop_path_keeps_counter_consistent(self):
        queue = EventQueue()
        doomed = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        doomed.cancel()
        assert len(queue) == 1
        assert queue.peek_time() == 2.0  # discards the cancelled head
        assert len(queue) == 1
        doomed.cancel()  # double-cancel after discard: still harmless
        assert len(queue) == 1

    def test_threshold_compaction_bounds_dead_entries(self):
        queue = EventQueue()
        # Far-future events that will be cancelled (dead timers) plus a few
        # live ones.  Without compaction the heap would retain every one of
        # the dead entries until its timestamp surfaced; with it, the dead
        # never outnumber max(threshold, live events).
        doomed = [queue.push(1000.0 + i, lambda: None) for i in range(10 * COMPACTION_MIN_DEAD)]
        live = [queue.push(float(i), lambda: None) for i in range(5)]
        for handle in doomed:
            handle.cancel()
            assert queue.dead_entries <= max(COMPACTION_MIN_DEAD, len(queue))
        assert len(queue) == len(live)
        assert len(queue._heap) <= COMPACTION_MIN_DEAD + len(live)
        # An explicit compact always finishes the job.
        queue.compact()
        assert len(queue._heap) == len(live)
        assert queue.dead_entries == 0

    def test_compaction_preserves_pop_order(self):
        import random

        rng = random.Random(5)
        queue = EventQueue()
        handles = []
        for _ in range(3 * COMPACTION_MIN_DEAD):
            handles.append(queue.push(rng.uniform(0.0, 100.0), lambda: None))
        expected = sorted(
            ((h.time, h.sequence) for h in handles if h.sequence % 3 == 0),
        )
        for handle in handles:
            if handle.sequence % 3 != 0:  # cancel 2/3: triggers compaction
                handle.cancel()
        popped = []
        while queue:
            event = queue.pop()
            popped.append((event.time, event.sequence))
        assert popped == expected

    def test_explicit_compact_is_idempotent(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        drop = queue.push(2.0, lambda: None)
        drop.cancel()
        queue.compact()
        queue.compact()
        assert len(queue) == 1
        assert queue._heap[0].handle is keep
