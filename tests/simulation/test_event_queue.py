"""Unit tests for the cancellable event queue."""

import pytest

from repro.simulation.errors import SimulationTimeError
from repro.simulation.event_queue import COMPACTION_MIN_DEAD, EventQueue


class TestEventQueue:
    def test_empty_queue_has_no_next_time(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.peek_time() is None
        assert queue.pop() is None

    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(3.0, order.append, "c")
        queue.push(1.0, order.append, "a")
        queue.push(2.0, order.append, "b")
        while queue:
            event = queue.pop()
            event.callback(*event.args)
        assert order == ["a", "b", "c"]

    def test_same_time_events_pop_in_insertion_order(self):
        queue = EventQueue()
        labels = []
        for label in ["first", "second", "third"]:
            queue.push(1.0, labels.append, label)
        popped = [queue.pop() for _ in range(3)]
        for event in popped:
            event.callback(*event.args)
        assert labels == ["first", "second", "third"]

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationTimeError):
            queue.push(-1.0, lambda: None)

    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        fired = []
        handle = queue.push(1.0, fired.append, "cancelled")
        queue.push(2.0, fired.append, "kept")
        handle.cancel()
        assert len(queue) == 1
        event = queue.pop()
        event.callback(*event.args)
        assert fired == ["kept"]

    def test_cancelling_twice_is_harmless(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert len(queue) == 0

    def test_peek_time_skips_cancelled_head(self):
        queue = EventQueue()
        head = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        head.cancel()
        assert queue.peek_time() == 5.0

    def test_len_counts_only_live_events(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(5)]
        handles[0].cancel()
        handles[3].cancel()
        assert len(queue) == 3

    def test_clear_empties_queue(self):
        queue = EventQueue()
        for i in range(4):
            queue.push(float(i), lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None


class TestLiveCounterAndCompaction:
    def test_len_is_constant_time_counter(self):
        """__len__ must not scan the heap: it reads a maintained counter."""
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(10)]
        assert len(queue) == 10
        for handle in handles[:4]:
            handle.cancel()
        # The counter and the ground truth (scan) must agree at every step.
        live_scan = sum(1 for event in queue._heap if not event.handle.cancelled)
        assert len(queue) == live_scan == 6

    def test_cancel_after_pop_does_not_corrupt_counter(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped.handle is first
        first.cancel()  # already executed: must not decrement the live count
        assert len(queue) == 1
        assert queue.pop() is not None
        assert queue.pop() is None

    def test_cancelled_pop_path_keeps_counter_consistent(self):
        queue = EventQueue()
        doomed = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        doomed.cancel()
        assert len(queue) == 1
        assert queue.peek_time() == 2.0  # discards the cancelled head
        assert len(queue) == 1
        doomed.cancel()  # double-cancel after discard: still harmless
        assert len(queue) == 1

    def test_threshold_compaction_bounds_dead_entries(self):
        queue = EventQueue()
        # Far-future events that will be cancelled (dead timers) plus a few
        # live ones.  Without compaction the heap would retain every one of
        # the dead entries until its timestamp surfaced; with it, the dead
        # never outnumber max(threshold, live events).
        doomed = [queue.push(1000.0 + i, lambda: None) for i in range(10 * COMPACTION_MIN_DEAD)]
        live = [queue.push(float(i), lambda: None) for i in range(5)]
        for handle in doomed:
            handle.cancel()
            assert queue.dead_entries <= max(COMPACTION_MIN_DEAD, len(queue))
        assert len(queue) == len(live)
        assert len(queue._heap) <= COMPACTION_MIN_DEAD + len(live)
        # An explicit compact always finishes the job.
        queue.compact()
        assert len(queue._heap) == len(live)
        assert queue.dead_entries == 0

    def test_compaction_preserves_pop_order(self):
        import random

        rng = random.Random(5)
        queue = EventQueue()
        handles = []
        for _ in range(3 * COMPACTION_MIN_DEAD):
            handles.append(queue.push(rng.uniform(0.0, 100.0), lambda: None))
        expected = sorted(
            ((h.time, h.sequence) for h in handles if h.sequence % 3 == 0),
        )
        for handle in handles:
            if handle.sequence % 3 != 0:  # cancel 2/3: triggers compaction
                handle.cancel()
        popped = []
        while queue:
            event = queue.pop()
            popped.append((event.time, event.sequence))
        assert popped == expected

    def test_explicit_compact_is_idempotent(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        drop = queue.push(2.0, lambda: None)
        drop.cancel()
        queue.compact()
        queue.compact()
        assert len(queue) == 1
        assert queue._heap[0].handle is keep

    def test_compact_preserves_heap_list_identity(self):
        """Dispatch loops hold a direct reference to the heap list across
        callbacks; compaction must rebuild it in place, never rebind it."""
        queue = EventQueue()
        heap_before = queue._heap
        doomed = [queue.push(100.0 + i, lambda: None) for i in range(2 * COMPACTION_MIN_DEAD)]
        queue.push(1.0, lambda: None)
        for handle in doomed:
            handle.cancel()  # crosses the threshold: triggers compaction
        assert queue.dead_entries < len(doomed)  # compaction did fire
        queue.compact()
        assert queue._heap is heap_before
        assert queue.dead_entries == 0
        assert len(queue) == 1


class TestPopBatch:
    def test_single_event_batch_degrades_to_pop(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        reference = EventQueue()
        reference.push(1.0, lambda: None)
        batch = queue.pop_batch()
        popped = reference.pop()
        assert [(e.time, e.sequence) for e in batch] == [(popped.time, popped.sequence)]
        assert queue.pop() is None
        assert len(queue) == 0

    def test_batch_equals_repeated_pops(self):
        import random

        rng = random.Random(11)
        times = [rng.uniform(0.0, 50.0) for _ in range(200)]
        batched, popped = EventQueue(), EventQueue()
        for time in times:
            batched.push(time, lambda: None)
            popped.push(time, lambda: None)
        batch = batched.pop_batch()
        singles = []
        while True:
            event = popped.pop()
            if event is None:
                break
            singles.append(event)
        assert [(e.time, e.sequence) for e in batch] == [(e.time, e.sequence) for e in singles]

    def test_until_is_inclusive_and_limit_bounds_size(self):
        queue = EventQueue()
        for time in (1.0, 2.0, 2.0, 3.0):
            queue.push(time, lambda: None)
        batch = queue.pop_batch(until=2.0)
        assert [event.time for event in batch] == [1.0, 2.0, 2.0]
        assert len(queue) == 1
        queue.push(0.5, lambda: None)
        limited = queue.pop_batch(limit=1)
        assert [event.time for event in limited] == [0.5]
        assert len(queue) == 1

    def test_cancelled_entries_are_discarded_and_counted(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(6)]
        for handle in handles[::2]:
            handle.cancel()
        assert queue.dead_entries == 3
        batch = queue.pop_batch()
        assert [event.handle for event in batch] == [handles[1], handles[3], handles[5]]
        assert queue.dead_entries == 0
        assert len(queue) == 0

    def test_cancel_inside_batch_marks_handle_without_touching_queue(self):
        """Handles are detached at pop: a cancel() issued while the batch is
        being dispatched must not decrement the queue's dead counter."""
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)  # stays queued
        batch = queue.pop_batch(until=1.0)
        assert len(batch) == 2
        batch[1].handle.cancel()  # e.g. batch[0]'s callback cancelling it
        assert batch[1].handle.cancelled  # the dispatch loop's skip signal
        assert queue.dead_entries == 0
        assert len(queue) == 1

    def test_push_unhandled_shares_order_with_push(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, order.append, "handled-early")
        queue.push_unhandled(1.0, order.append, "unhandled")
        queue.push(1.0, order.append, "handled-late")
        for event in queue.pop_batch():
            event.callback(*event.args)
        assert order == ["handled-early", "unhandled", "handled-late"]

    def test_unhandled_events_count_and_clear(self):
        queue = EventQueue()
        queue.push_unhandled(1.0, lambda: None)
        queue.push_unhandled(2.0, lambda: None)
        assert len(queue) == 2
        queue.clear()
        assert len(queue) == 0
        assert queue.pop_batch() == []

    def test_compaction_mid_batch_keeps_heap_reference_valid(self):
        """The batched dispatch pattern: hold the heap list, pop a batch,
        let a callback trigger threshold compaction, keep draining.  The
        held reference must still be the queue's heap and pop order must
        be unchanged."""
        queue = EventQueue()
        doomed = [queue.push(100.0 + i, lambda: None) for i in range(2 * COMPACTION_MIN_DEAD)]

        def cancel_all():
            for handle in doomed:
                handle.cancel()

        queue.push(1.0, cancel_all)
        survivor_handle = queue.push(2.0, lambda: None)
        heap = queue._heap  # what a dispatch loop would hold
        for event in queue.pop_batch(until=1.0):
            event.callback(*event.args)  # triggers compaction
        assert queue._heap is heap
        remaining = queue.pop_batch()
        assert [event.handle for event in remaining] == [survivor_handle]
        assert queue.dead_entries == 0
        assert len(queue) == 0
