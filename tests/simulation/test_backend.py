"""Backend selection and batched-vs-scalar dispatch equivalence.

The batched backend's correctness contract is *exact* equivalence with the
scalar oracle: same events in the same order, same clock readings inside
callbacks, same `events_processed`.  These tests exercise the contract on
workloads built to hit the batched loop's edges — same-instant runs,
mid-batch scheduling, mid-batch cancellation, `clear()` from a callback —
plus the name-resolution rules the selection layer promises.
"""

import pytest

from repro.simulation.backend import (
    BACKEND_ENV,
    numpy_available,
    resolve_backend,
    resolve_backend_name,
)
from repro.simulation.backend.batched import BatchedBackend
from repro.simulation.backend.scalar import ScalarBackend
from repro.simulation.engine import Simulator
from repro.simulation.errors import SimulationTimeError


class TestResolution:
    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        assert resolve_backend_name("python") == "python"

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert resolve_backend_name() == "python"

    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        expected = "numpy" if numpy_available() else "python"
        assert resolve_backend_name() == expected
        assert resolve_backend_name("auto") == expected

    def test_numpy_request_degrades_without_numpy(self):
        # The documented auto-fallback: "numpy" never errors, it degrades.
        if numpy_available():
            assert resolve_backend_name("numpy") == "numpy"
        else:
            assert resolve_backend_name("numpy") == "python"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            resolve_backend_name("fortran")

    def test_resolve_backend_passes_instances_through(self):
        backend = ScalarBackend()
        assert resolve_backend(backend) is backend

    def test_simulator_exposes_backend_name(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert Simulator(seed=1).backend_name == "python"
        assert Simulator(seed=1, backend="numpy").backend_name == "numpy"


def _run_workload(backend):
    """A workload exercising every batched-dispatch edge; returns its trace."""
    simulator = Simulator(seed=42, backend=backend)
    trace = []

    def record(label):
        trace.append((label, simulator.now, simulator.events_processed))

    def fan_out(label, count):
        record(label)
        for index in range(count):
            # Same-instant events (a batch run) plus earlier-than-batch
            # insertions once the clock has moved past their base.
            simulator.schedule(0.0, record, f"{label}/instant-{index}")
            simulator.schedule(0.25, record, f"{label}/later-{index}")

    def cancel_sibling(handle, label):
        record(label)
        handle.cancel()

    for step in range(4):
        base = float(step)
        simulator.schedule_at(base + 0.5, fan_out, f"fan-{step}", 3)
        doomed = simulator.schedule_at(base + 0.5, record, f"doomed-{step}")
        simulator.schedule_at(base + 0.5, cancel_sibling, doomed, f"canceller-{step}")
        simulator.schedule_fire_and_forget(base + 0.75, record, f"fire-{step}")
    executed = simulator.run(until=10.0)
    return trace, executed, simulator.events_processed, simulator.now


class TestBatchedEquivalence:
    def test_trace_identical_to_scalar(self):
        scalar = _run_workload(ScalarBackend())
        batched = _run_workload(BatchedBackend())
        assert batched == scalar

    def test_cancellation_after_batch_pop_is_honoured(self):
        """An event cancelled by an earlier same-instant event must not run,
        even though the batch already detached its handle."""
        for backend in (ScalarBackend(), BatchedBackend()):
            simulator = Simulator(seed=0, backend=backend)
            fired = []
            victim = {}
            # The canceller has the smaller sequence, so it dispatches first
            # within the same-instant batch and must suppress the victim.
            simulator.schedule_at(1.0, lambda: victim["handle"].cancel())
            victim["handle"] = simulator.schedule_at(1.0, fired.append, "victim")
            simulator.run_until_idle()
            assert fired == []

    def test_mid_batch_scheduling_interleaves_correctly(self):
        """Events scheduled from inside a same-instant run for that same
        instant fire after the remaining batch entries (larger sequence)."""

        def run(backend):
            simulator = Simulator(seed=0, backend=backend)
            order = []

            def first():
                order.append("first")
                simulator.schedule(0.0, order.append, "spawned")

            simulator.schedule_at(1.0, first)
            simulator.schedule_at(1.0, order.append, "second")
            simulator.run_until_idle()
            return order

        assert run(BatchedBackend()) == run(ScalarBackend()) == ["first", "second", "spawned"]

    def test_clear_from_callback_stops_dispatch(self):
        for backend in (ScalarBackend(), BatchedBackend()):
            simulator = Simulator(seed=0, backend=backend)
            fired = []
            simulator.schedule_at(1.0, fired.append, "kept")
            simulator.schedule_at(1.0, simulator.clear)
            simulator.schedule_at(1.0, fired.append, "dropped")
            simulator.schedule_at(2.0, fired.append, "dropped-too")
            simulator.run_until_idle()
            assert fired == ["kept"]

    def test_observers_fall_back_to_scalar_semantics(self):
        class Watcher:
            def __init__(self):
                self.dispatches = []

            def on_event_dispatch(self, time, callback, args):
                self.dispatches.append((time, args))

        simulator = Simulator(seed=0, backend=BatchedBackend())
        watcher = Watcher()
        simulator.add_observer(watcher)
        for index in range(3):
            simulator.schedule_at(1.0, lambda _index: None, index)
        simulator.run_until_idle()
        assert watcher.dispatches == [(1.0, (0,)), (1.0, (1,)), (1.0, (2,))]

    def test_max_events_budget_respected(self):
        for backend in (ScalarBackend(), BatchedBackend()):
            simulator = Simulator(seed=0, backend=backend)
            for index in range(10):
                simulator.schedule_at(1.0, lambda _index: None, index)
            executed = simulator.run(max_events=4)
            assert executed == 4
            assert simulator.pending_events == 6


class TestFireAndForget:
    def test_negative_delay_rejected(self, simulator):
        with pytest.raises(SimulationTimeError):
            simulator.schedule_fire_and_forget(-0.1, lambda: None)

    def test_runs_like_schedule(self, simulator):
        fired = []
        simulator.schedule_fire_and_forget(1.0, fired.append, "a")
        simulator.schedule(1.0, fired.append, "b")
        simulator.schedule_fire_and_forget(0.5, fired.append, "c")
        simulator.run_until_idle()
        assert fired == ["c", "a", "b"]
