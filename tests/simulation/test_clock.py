"""Unit tests for the simulated clock."""

import pytest

from repro.simulation.clock import SimulationClock
from repro.simulation.errors import SimulationTimeError


class TestSimulationClock:
    def test_starts_at_zero_by_default(self):
        assert SimulationClock().now == 0.0

    def test_starts_at_custom_time(self):
        assert SimulationClock(start_time=12.5).now == 12.5

    def test_negative_start_time_rejected(self):
        with pytest.raises(SimulationTimeError):
            SimulationClock(start_time=-0.1)

    def test_advance_to_moves_forward(self):
        clock = SimulationClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_is_allowed(self):
        clock = SimulationClock(start_time=2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_to_past_raises(self):
        clock = SimulationClock(start_time=5.0)
        with pytest.raises(SimulationTimeError):
            clock.advance_to(4.999)

    def test_advance_by_accumulates(self):
        clock = SimulationClock()
        clock.advance_by(1.5)
        clock.advance_by(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_advance_by_negative_raises(self):
        clock = SimulationClock()
        with pytest.raises(SimulationTimeError):
            clock.advance_by(-0.001)
