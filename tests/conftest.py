"""Shared fixtures for the test suite.

The expensive fixtures (full streaming sessions) are session-scoped so that
integration and metric tests share one simulation instead of re-running it
per test.
"""

from __future__ import annotations

import pytest

from repro.core.config import GossipConfig
from repro.core.session import SessionConfig, SessionResult, StreamingSession
from repro.membership.partners import INFINITE
from repro.network.transport import NetworkConfig
from repro.simulation.engine import Simulator
from repro.streaming.schedule import StreamConfig


@pytest.fixture
def simulator() -> Simulator:
    """A fresh, deterministic simulator."""
    return Simulator(seed=1234)


def small_session_config(
    num_nodes: int = 25,
    fanout: int = 6,
    seed: int = 7,
    refresh_every: float = 1,
    feed_me_every: float = INFINITE,
    cap_kbps: float = 700.0,
    num_windows: int = 20,
    churn=None,
) -> SessionConfig:
    """A session small enough to run in a couple of seconds."""
    return SessionConfig(
        num_nodes=num_nodes,
        seed=seed,
        gossip=GossipConfig(
            fanout=fanout,
            refresh_every=refresh_every,
            feed_me_every=feed_me_every,
            retransmit_timeout=2.0,
        ),
        stream=StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=20,
            fec_packets_per_window=2,
            num_windows=num_windows,
        ),
        network=NetworkConfig(upload_cap_kbps=cap_kbps, max_backlog_seconds=10.0),
        extra_time=20.0,
        churn=churn,
    )


@pytest.fixture(scope="session")
def healthy_session_result() -> SessionResult:
    """One well-provisioned 25-node session, shared by many tests."""
    return StreamingSession(small_session_config()).run()


@pytest.fixture(scope="session")
def congested_session_result() -> SessionResult:
    """A session with an oversized fanout, shared by congestion-related tests."""
    return StreamingSession(small_session_config(fanout=20, num_windows=40)).run()
