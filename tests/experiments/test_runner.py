"""Unit tests for experiment points and the run cache."""

import pytest

from repro.experiments.runner import ExperimentPoint, RunCache, format_rate, run_point
from repro.membership.partners import INFINITE


class TestFormatRate:
    def test_whole_rates_render_as_integers(self):
        assert format_rate(1) == "1"
        assert format_rate(20.0) == "20"

    def test_infinite_renders_as_inf(self):
        assert format_rate(INFINITE) == "inf"

    def test_fractional_rates_keep_their_fraction(self):
        assert format_rate(0.5) == "0.5"
        assert format_rate(2.25) == "2.25"


class TestExperimentPoint:
    def test_describe_includes_relevant_fields(self):
        point = ExperimentPoint(
            scale_name="tiny", fanout=7, cap_kbps=700.0, refresh_every=INFINITE,
            feed_me_every=5, churn_fraction=0.2, seed_offset=3,
        )
        text = point.describe()
        assert "fanout=7" in text
        assert "cap=700kbps" in text
        assert "X=inf" in text
        assert "Y=5" in text
        assert "churn=20%" in text
        assert "seed+3" in text

    def test_describe_keeps_fractional_rates(self):
        """Regression: X=0.5 used to be truncated to X=0 (int(0.5) == 0)."""
        point = ExperimentPoint(scale_name="tiny", refresh_every=0.5, feed_me_every=2.5)
        text = point.describe()
        assert "X=0.5" in text
        assert "Y=2.5" in text

    def test_points_are_hashable_and_comparable(self):
        first = ExperimentPoint(scale_name="tiny", fanout=4)
        second = ExperimentPoint(scale_name="tiny", fanout=4)
        assert first == second
        assert hash(first) == hash(second)


class TestRunPoint:
    def test_run_point_produces_result(self, tiny_scale):
        result = run_point(tiny_scale, ExperimentPoint(scale_name="tiny", fanout=4))
        assert result.schedule.num_windows == tiny_scale.num_windows
        assert result.delivery_ratio() > 0.8


class TestRunCache:
    def test_cache_avoids_reruns(self, tiny_scale):
        cache = RunCache()
        point = ExperimentPoint(scale_name="tiny", fanout=4)
        first = cache.get(tiny_scale, point)
        second = cache.get(tiny_scale, point)
        assert first is second
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_distinct_points_run_separately(self, tiny_scale):
        cache = RunCache()
        cache.get(tiny_scale, ExperimentPoint(scale_name="tiny", fanout=4))
        cache.get(tiny_scale, ExperimentPoint(scale_name="tiny", fanout=6))
        assert cache.misses == 2

    def test_scale_mismatch_rejected(self, tiny_scale):
        cache = RunCache()
        with pytest.raises(ValueError):
            cache.get(tiny_scale, ExperimentPoint(scale_name="reduced", fanout=4))

    def test_clear_empties_cache(self, tiny_scale):
        cache = RunCache()
        cache.get(tiny_scale, ExperimentPoint(scale_name="tiny", fanout=4))
        cache.clear()
        assert len(cache) == 0
