"""Structural tests of the figure generators, at a tiny scale.

These tests check that every generator produces the right series (labels,
x grids, value ranges) and that obviously expected relationships hold (e.g.
offline viewing is never worse than 10 s-lag viewing).  The quantitative
shape checks against the paper live in ``test_paper_claims.py``.
"""

import pytest

from repro.experiments.figures import (
    generate_all,
    figure1_fanout_700,
    figure2_lag_cdf,
    figure3_fanout_relaxed_caps,
    figure4_bandwidth_usage,
    figure5_refresh_rate,
    figure6_feedme_rate,
    figure7_churn_unaffected,
    figure8_churn_windows,
)
from repro.sweep.cache import SummaryCache


@pytest.fixture(scope="module")
def cache() -> SummaryCache:
    """One cache shared by every figure test in this module."""
    return SummaryCache()


class TestFigure1:
    def test_series_and_grid(self, tiny_scale, cache):
        result = figure1_fanout_700(tiny_scale, cache)
        assert result.figure_id == "figure1"
        labels = [series.label for series in result.series]
        assert labels == ["offline viewing", "20s lag", "10s lag"]
        for series in result.series:
            assert series.xs() == [float(f) for f in tiny_scale.fanout_grid]
            assert all(0.0 <= y <= 100.0 for y in series.ys())

    def test_offline_viewing_dominates_finite_lags(self, tiny_scale, cache):
        result = figure1_fanout_700(tiny_scale, cache)
        offline = result.series_by_label("offline viewing")
        ten = result.series_by_label("10s lag")
        for x in offline.xs():
            assert offline.y_at(x) >= ten.y_at(x) - 1e-9

    def test_to_table_renders(self, tiny_scale, cache):
        text = figure1_fanout_700(tiny_scale, cache).to_table()
        assert "figure1" in text
        assert "fanout" in text


class TestFigure2:
    def test_one_series_per_fanout_and_monotone_cdf(self, tiny_scale, cache):
        result = figure2_lag_cdf(tiny_scale, cache)
        assert len(result.series) == len(tiny_scale.fig2_fanouts)
        for series in result.series:
            ys = series.ys()
            assert all(later >= earlier - 1e-9 for earlier, later in zip(ys, ys[1:]))
            assert all(0.0 <= y <= 100.0 for y in ys)


class TestFigure3:
    def test_two_series_per_cap(self, tiny_scale, cache):
        result = figure3_fanout_relaxed_caps(tiny_scale, cache)
        assert len(result.series) == 2 * len(tiny_scale.fig3_caps_kbps)
        for series in result.series:
            assert series.xs() == [float(f) for f in tiny_scale.fanout_grid]


class TestFigure4:
    def test_usage_sorted_descending(self, tiny_scale, cache):
        result = figure4_bandwidth_usage(tiny_scale, cache)
        assert len(result.series) == len(tiny_scale.fig4_pairs)
        for series in result.series:
            ys = series.ys()
            assert all(earlier >= later - 1e-9 for earlier, later in zip(ys, ys[1:]))
            assert len(ys) == tiny_scale.num_nodes - 1


class TestFigure5And6:
    def test_refresh_sweep_x_values(self, tiny_scale, cache):
        result = figure5_refresh_rate(tiny_scale, cache)
        for series in result.series:
            assert series.xs() == [1.0, 10.0, -1.0]

    def test_feedme_sweep_runs_with_static_views(self, tiny_scale, cache):
        result = figure6_feedme_rate(tiny_scale, cache)
        assert "X is infinite" in result.notes
        for series in result.series:
            assert len(series.points) == len(tiny_scale.feedme_grid)


class TestFigure7And8:
    def test_churn_series_structure(self, tiny_scale, cache):
        result = figure7_churn_unaffected(tiny_scale, cache)
        assert len(result.series) == 2 * len(tiny_scale.churn_refresh_values)
        for series in result.series:
            assert series.xs() == [fraction * 100.0 for fraction in tiny_scale.churn_grid]

    def test_figure8_shares_runs_with_figure7(self, tiny_scale, cache):
        misses_before = cache.misses
        figure7_churn_unaffected(tiny_scale, cache)
        misses_mid = cache.misses
        figure8_churn_windows(tiny_scale, cache)
        assert cache.misses == misses_mid
        assert misses_mid >= misses_before

    def test_fractional_refresh_labels_render_honestly(self, tiny_scale):
        """Regression: X=0.5 series labels used to truncate to X=0.

        GossipConfig only accepts whole rates, so this is a dry run against a
        recording cache: the labels must render honestly even for values the
        simulation itself would reject.
        """
        from repro.sweep.cache import RecordingCache

        result = figure7_churn_unaffected(
            tiny_scale, RecordingCache(), churn_fractions=(0.2,), refresh_values=(0.5,)
        )
        assert all("X=0.5" in series.label for series in result.series)

    def test_window_percentages_in_range(self, tiny_scale, cache):
        result = figure8_churn_windows(tiny_scale, cache)
        for series in result.series:
            assert all(0.0 <= y <= 100.0 for y in series.ys())


class TestGenerateAll:
    def test_generates_every_figure_once(self, tiny_scale, cache):
        results = generate_all(tiny_scale, cache)
        assert sorted(results) == [f"figure{i}" for i in range(1, 9)]
        for result in results.values():
            assert result.series, f"{result.figure_id} has no series"
