"""Golden pinning of the metrics/figure pipeline against the pre-fast-path code.

The fast-path PR (incremental delivery-lag accumulation, one-pass quality
analysis, bulk GF(256) codec, event-queue compaction) must be *bit-for-bit*
invisible in the results: the golden files under ``tests/golden/`` were
generated with the pre-PR pipeline and every later revision has to reproduce
them byte-identically.

Three artifacts are pinned:

* ``reduced_point.json`` — the full :class:`~repro.sweep.PointSummary` of the
  default experiment point (fanout 7, 700 kbps) at the **reduced** scale,
  including the Figure 2 lag CDF over the whole grid and the sorted per-node
  usage;
* ``smoke_churn_point.json`` — a smoke-scale point with 50 % catastrophic
  churn, covering the survivors-only analysis path;
* ``figure1_smoke_f4f7.txt`` — a Figure 1 table (fanouts 4 and 7, smoke
  scale) rendered through the sweep cache and figure generator, pinning the
  text-table pipeline end to end.

Regenerate (only legitimate after an *intentional* semantic change)::

    PYTHONPATH=src python tests/experiments/test_golden_pipeline.py --write
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.session import run_session
from repro.experiments.figures import figure1_fanout_700
from repro.experiments.scale import REDUCED, SMOKE
from repro.sweep.cache import SummaryCache
from repro.sweep.summary import MetricsRequest, summarize

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def compute_reduced_point() -> str:
    """The default reduced-scale point, serialized exactly like the store."""
    summary = summarize(
        run_session(REDUCED.session_config()),
        MetricsRequest.for_scale(REDUCED),
        cell_id="golden-reduced-default",
        seed=REDUCED.seed,
    )
    return json.dumps(summary.to_json_dict(), indent=2, sort_keys=True) + "\n"


def compute_smoke_churn_point() -> str:
    """A smoke-scale point with 50% churn (survivor-path coverage)."""
    summary = summarize(
        run_session(SMOKE.session_config(churn_fraction=0.5)),
        MetricsRequest.for_scale(SMOKE),
        cell_id="golden-smoke-churn50",
        seed=SMOKE.seed,
    )
    return json.dumps(summary.to_json_dict(), indent=2, sort_keys=True) + "\n"


def compute_figure1_smoke_table() -> str:
    """A two-fanout Figure 1 table through the cache + generator pipeline."""
    result = figure1_fanout_700(SMOKE, cache=SummaryCache(), fanouts=(4, 7))
    return result.to_table() + "\n"


GOLDENS = {
    "reduced_point.json": compute_reduced_point,
    "smoke_churn_point.json": compute_smoke_churn_point,
    "figure1_smoke_f4f7.txt": compute_figure1_smoke_table,
}


def test_reduced_point_summary_matches_golden():
    expected = (GOLDEN_DIR / "reduced_point.json").read_text(encoding="utf-8")
    assert compute_reduced_point() == expected


def test_smoke_churn_point_summary_matches_golden():
    expected = (GOLDEN_DIR / "smoke_churn_point.json").read_text(encoding="utf-8")
    assert compute_smoke_churn_point() == expected


def test_figure1_table_matches_golden():
    expected = (GOLDEN_DIR / "figure1_smoke_f4f7.txt").read_text(encoding="utf-8")
    assert compute_figure1_smoke_table() == expected


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--write", action="store_true", help="regenerate the golden files in place"
    )
    args = parser.parse_args()
    if not args.write:
        parser.error("nothing to do; pass --write to regenerate the golden files")
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, compute in GOLDENS.items():
        path = GOLDEN_DIR / name
        path.write_text(compute(), encoding="utf-8")
        print(f"wrote {path}")
