"""Shape checks against the paper's headline claims.

The paper's evaluation was run on 230 PlanetLab nodes for minutes of stream;
this module re-checks the *shape* of its main findings at a mid-size
simulation scale (45 nodes, ≈ 18 s of stream) that keeps the whole module
within a couple of minutes of CPU:

1. there is an optimal fanout window slightly above ln(n): too small fails,
   optimal works, much larger collapses under the 700 kbps cap (Figure 1);
2. a looser cap (2000 kbps) tolerates a fanout that collapses at 700 kbps
   (Figure 3);
3. bandwidth usage is heterogeneous even under a homogeneous cap, and the
   heterogeneity grows with spare capacity (Figure 4);
4. refreshing partners every round beats a static mesh (Figure 5);
5. feed-me requests do not beat plain X = 1 (Figure 6);
6. under catastrophic churn with X = 1, a majority of survivors are
   unaffected and survivors keep receiving the overwhelming majority of
   windows; a static mesh does much worse (Figures 7, 8).
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentPoint, RunCache
from repro.experiments.scale import ExperimentScale
from repro.membership.partners import INFINITE
from repro.metrics.quality import OFFLINE_LAG

CLAIMS = ExperimentScale(
    name="claims",
    num_nodes=45,
    payload_bytes=1000,
    source_packets_per_window=20,
    fec_packets_per_window=2,
    num_windows=60,
    max_backlog_seconds=10.0,
    extra_time=30.0,
    fanout_grid=(2, 6, 30),
    optimal_fanout=6,
    churn_time=5.0,
    seed=17,
)
"""Mid-size scale used only by this module."""


@pytest.fixture(scope="module")
def cache() -> RunCache:
    return RunCache()


def run(cache: RunCache, **kwargs):
    return cache.get(CLAIMS, ExperimentPoint(scale_name="claims", **kwargs))


class TestOptimalFanoutWindow:
    """Claim 1 (Figure 1): fanout has a sweet spot slightly above ln(n)."""

    def test_too_small_fanout_fails_to_disseminate(self, cache):
        result = run(cache, fanout=2)
        assert result.viewing_percentage(lag=20.0) < 50.0

    def test_optimal_fanout_reaches_almost_everyone(self, cache):
        result = run(cache, fanout=6)
        assert result.viewing_percentage(lag=20.0) >= 85.0
        assert result.delivery_ratio() > 0.98

    def test_oversized_fanout_collapses_under_700kbps(self, cache):
        optimal = run(cache, fanout=6)
        oversized = run(cache, fanout=30)
        assert (
            oversized.viewing_percentage(lag=20.0)
            < optimal.viewing_percentage(lag=20.0) - 40.0
        )

    def test_congestion_is_the_cause_of_the_collapse(self, cache):
        oversized = run(cache, fanout=30)
        optimal = run(cache, fanout=6)
        assert oversized.traffic.total_congestion_drops() > optimal.traffic.total_congestion_drops()


class TestRelaxedCaps:
    """Claim 2 (Figure 3): looser caps widen the good-fanout region."""

    def test_fanout_that_collapses_at_700_works_at_2000(self, cache):
        tight = run(cache, fanout=30)
        loose = run(cache, fanout=30, cap_kbps=2000.0)
        assert loose.viewing_percentage(lag=10.0) > tight.viewing_percentage(lag=10.0) + 40.0


class TestBandwidthHeterogeneity:
    """Claim 3 (Figure 4): contribution is heterogeneous; more so with spare capacity."""

    def test_usage_is_heterogeneous_with_spare_capacity(self, cache):
        result = run(cache, fanout=6, cap_kbps=2000.0)
        usage = result.bandwidth_usage()
        sorted_usage = usage.sorted_usage()
        assert sorted_usage[0] > sorted_usage[-1] * 1.5

    def test_saturated_caps_keep_usage_roughly_homogeneous(self, cache):
        """At 700 kbps the cap itself equalizes contributions (paper, Figure 4)."""
        result = run(cache, fanout=6)
        usage = result.bandwidth_usage()
        assert usage.heterogeneity() < 0.5

    def test_heterogeneity_grows_with_spare_capacity(self, cache):
        tight = run(cache, fanout=6).bandwidth_usage()
        loose = run(cache, fanout=6, cap_kbps=2000.0).bandwidth_usage()
        assert loose.heterogeneity() > tight.heterogeneity()


class TestProactiveness:
    """Claims 4 and 5 (Figures 5, 6): X = 1 is best; feed-me does not beat it."""

    def test_fully_dynamic_views_beat_static_mesh(self, cache):
        dynamic = run(cache, refresh_every=1)
        static = run(cache, refresh_every=INFINITE)
        assert (
            dynamic.viewing_percentage(lag=OFFLINE_LAG)
            > static.viewing_percentage(lag=OFFLINE_LAG) + 20.0
        )
        assert dynamic.delivery_ratio() > static.delivery_ratio()

    def test_slow_refresh_sits_between_extremes(self, cache):
        dynamic = run(cache, refresh_every=1)
        slow = run(cache, refresh_every=20)
        static = run(cache, refresh_every=INFINITE)
        assert dynamic.delivery_ratio() >= slow.delivery_ratio() >= static.delivery_ratio()

    def test_feed_me_does_not_beat_plain_dynamic_views(self, cache):
        dynamic = run(cache, refresh_every=1)
        feed_me = run(cache, refresh_every=INFINITE, feed_me_every=1)
        assert (
            dynamic.viewing_percentage(lag=20.0)
            >= feed_me.viewing_percentage(lag=20.0) - 1e-9
        )

    def test_feed_me_improves_on_a_plain_static_mesh(self, cache):
        static = run(cache, refresh_every=INFINITE)
        feed_me = run(cache, refresh_every=INFINITE, feed_me_every=1)
        assert feed_me.delivery_ratio() >= static.delivery_ratio() - 0.02


class TestChurnResilience:
    """Claim 6 (Figures 7, 8): X = 1 withstands catastrophic churn."""

    def test_substantial_fraction_unaffected_at_20_percent_churn(self, cache):
        """The paper reports ~70 % of survivors completely unaffected at 20 % churn.

        At this module's smaller scale the 5 s failure-detection window covers
        a larger share of the (shorter) stream, so the unaffected fraction is
        lower; the claim checked here is that a substantial fraction of
        survivors sees no loss at all, and vastly more than with a static
        mesh.  The 70 % figure itself is reproduced at the benchmark scale
        (see EXPERIMENTS.md, Figure 7).
        """
        dynamic = run(cache, refresh_every=1, churn_fraction=0.2)
        static = run(cache, refresh_every=INFINITE, churn_fraction=0.2)
        assert dynamic.viewing_percentage(lag=20.0) >= 30.0
        assert dynamic.viewing_percentage(lag=20.0) > static.viewing_percentage(lag=20.0)

    def test_survivors_receive_over_90_percent_of_windows(self, cache):
        for fraction in (0.2, 0.5):
            result = run(cache, refresh_every=1, churn_fraction=fraction)
            assert result.average_complete_windows_percentage(20.0) > 90.0

    def test_static_mesh_much_worse_under_churn(self, cache):
        dynamic = run(cache, refresh_every=1, churn_fraction=0.35)
        static = run(cache, refresh_every=INFINITE, churn_fraction=0.35)
        assert (
            dynamic.average_complete_windows_percentage(20.0)
            > static.average_complete_windows_percentage(20.0) + 15.0
        )

    def test_only_requested_fraction_fails(self, cache):
        result = run(cache, refresh_every=1, churn_fraction=0.2)
        expected_failures = round((CLAIMS.num_nodes - 1) * 0.2)
        assert len(result.failed_nodes) == expected_failures
