"""Tests for the ablation studies (run at the tiny scale)."""


from repro.experiments.ablations import (
    ALL_ABLATIONS,
    detection_delay_ablation,
    fec_ablation,
    retransmission_ablation,
    source_fanout_ablation,
)


class TestRetransmissionAblation:
    def test_structure_and_metrics(self, tiny_scale):
        result = retransmission_ablation(tiny_scale, loss_probability=0.05)
        assert result.figure_id == "ablation-retransmission"
        assert len(result.series) == 4
        for series in result.series:
            assert series.xs() == [1.0, 2.0, 3.0]
            assert all(0.0 <= y <= 100.0 for y in series.ys())

    def test_retransmission_recovers_lost_packets(self, tiny_scale):
        result = retransmission_ablation(tiny_scale, loss_probability=0.08)
        delivery = result.series_by_label("% packets delivered")
        assert delivery.y_at(2.0) >= delivery.y_at(1.0)


class TestFecAblation:
    def test_fec_improves_window_completeness_under_loss(self, tiny_scale):
        result = fec_ablation(tiny_scale)
        windows = result.series_by_label("avg % complete windows (20s lag)")
        without_fec = windows.y_at(0.0)
        with_fec = windows.y_at(float(tiny_scale.fec_packets_per_window))
        assert with_fec >= without_fec

    def test_grid_includes_zero_fec(self, tiny_scale):
        result = fec_ablation(tiny_scale)
        assert 0.0 in result.series[0].xs()


class TestDetectionDelayAblation:
    def test_oracle_detection_is_at_least_as_good_as_slow_detection(self, tiny_scale):
        result = detection_delay_ablation(tiny_scale, churn_fraction=0.4, delays=(0.0, 10.0))
        windows = result.series_by_label("avg % complete windows (20s lag)")
        assert windows.y_at(0.0) >= windows.y_at(10.0) - 2.0

    def test_custom_delay_grid_respected(self, tiny_scale):
        result = detection_delay_ablation(tiny_scale, delays=(0.0, 3.0))
        assert result.series[0].xs() == [0.0, 3.0]


class TestSourceFanoutAblation:
    def test_single_copy_source_is_fragile(self, tiny_scale):
        result = source_fanout_ablation(tiny_scale, source_fanouts=(1, 5))
        delivery = result.series_by_label("% packets delivered")
        assert delivery.y_at(5.0) >= delivery.y_at(1.0)


class TestRegistry:
    def test_all_ablations_registered(self):
        assert set(ALL_ABLATIONS) == {"retransmission", "fec", "detection-delay", "source-fanout"}
