"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

from repro.experiments.__main__ import main


class TestListing:
    def test_list_flag_prints_targets(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "figure8" in output
        assert "ablation:fec" in output

    def test_no_targets_prints_targets(self, capsys):
        assert main([]) == 0
        assert "figure1" in capsys.readouterr().out


class TestErrors:
    def test_unknown_figure_returns_error(self, capsys):
        assert main(["figure99", "--scale", "smoke"]) == 2
        assert "unknown target" in capsys.readouterr().out

    def test_unknown_ablation_returns_error(self, capsys):
        assert main(["ablation:nonexistent", "--scale", "smoke"]) == 2
        assert "unknown ablation" in capsys.readouterr().out

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure1", "--scale", "galactic"])
