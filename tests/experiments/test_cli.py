"""Tests for the ``python -m repro.experiments`` command-line interface."""

import re

import pytest

import repro.experiments.scale as scale_module
from repro.experiments.__main__ import main

from tests.experiments.conftest import TINY


@pytest.fixture
def tiny_cli_scale(monkeypatch):
    """Expose the tiny test scale to the CLI's ``--scale`` choices."""
    monkeypatch.setitem(scale_module._SCALES, TINY.name, TINY)
    return TINY


def _sweep_counts(output: str):
    """Parse '[sweep: executed N point(s), reused M from store, ...]' lines."""
    match = re.search(r"executed (\d+) point\(s\), reused (\d+) from store", output)
    assert match, f"no sweep accounting line in output:\n{output}"
    return int(match.group(1)), int(match.group(2))


class TestListing:
    def test_list_flag_prints_targets(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "figure1" in output
        assert "figure8" in output
        assert "ablation:fec" in output

    def test_no_targets_prints_targets(self, capsys):
        assert main([]) == 0
        assert "figure1" in capsys.readouterr().out


class TestErrors:
    def test_unknown_figure_returns_error(self, capsys):
        assert main(["figure99", "--scale", "smoke"]) == 2
        assert "unknown target" in capsys.readouterr().out

    def test_unknown_ablation_returns_error(self, capsys):
        assert main(["ablation:nonexistent", "--scale", "smoke"]) == 2
        assert "unknown ablation" in capsys.readouterr().out

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure1", "--scale", "galactic"])

    def test_resume_without_store_rejected(self, capsys):
        assert main(["figure1", "--resume"]) == 2
        assert "--resume requires --store" in capsys.readouterr().out

    def test_nonpositive_jobs_rejected(self, capsys):
        assert main(["figure1", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().out


class TestSweepFlags:
    def test_serial_run_reports_sweep_accounting(self, tiny_cli_scale, capsys):
        assert main(["figure1", "--scale", tiny_cli_scale.name]) == 0
        output = capsys.readouterr().out
        executed, reused = _sweep_counts(output)
        assert executed == len(tiny_cli_scale.fanout_grid)
        assert reused == 0
        assert "figure1" in output

    def test_jobs_flag_produces_identical_tables(self, tiny_cli_scale, capsys):
        assert main(["figure1", "--scale", tiny_cli_scale.name]) == 0
        serial_output = capsys.readouterr().out
        assert main(["figure1", "--scale", tiny_cli_scale.name, "--jobs", "2"]) == 0
        parallel_output = capsys.readouterr().out

        def table_of(output: str) -> str:
            start = output.index("figure1: ")
            end = output.index("\n[figure1 regenerated")
            return output[start:end]

        assert table_of(serial_output) == table_of(parallel_output)

    def test_overlapping_figures_share_points(self, tiny_cli_scale, capsys):
        """Figures 7 and 8 request identical points; the sweep dedupes them."""
        assert main(["figure7", "figure8", "--scale", tiny_cli_scale.name]) == 0
        executed, _ = _sweep_counts(capsys.readouterr().out)
        expected = len(tiny_cli_scale.churn_grid) * len(tiny_cli_scale.churn_refresh_values)
        assert executed == expected


class TestKillAndResume:
    def test_interrupted_sweep_resumes_missing_cells_only(
        self, tiny_cli_scale, tmp_path, capsys
    ):
        store = tmp_path / "cli-store.jsonl"
        scale_name = tiny_cli_scale.name

        # Full run, persisting every completed point.
        assert main(["figure1", "--scale", scale_name, "--store", str(store)]) == 0
        first_output = capsys.readouterr().out
        executed, reused = _sweep_counts(first_output)
        assert (executed, reused) == (len(tiny_cli_scale.fanout_grid), 0)

        # Simulate a kill mid-sweep: only the first two records survived.
        lines = store.read_text(encoding="utf-8").splitlines(keepends=True)
        store.write_text("".join(lines[:2]), encoding="utf-8")

        # Resuming re-runs only the missing cells...
        assert main(
            ["figure1", "--scale", scale_name, "--store", str(store), "--resume"]
        ) == 0
        resumed_output = capsys.readouterr().out
        executed, reused = _sweep_counts(resumed_output)
        assert reused == 2
        assert executed == len(tiny_cli_scale.fanout_grid) - 2

        # ...and a second resume re-runs nothing at all.
        assert main(
            ["figure1", "--scale", scale_name, "--store", str(store), "--resume"]
        ) == 0
        executed, reused = _sweep_counts(capsys.readouterr().out)
        assert executed == 0
        assert reused == len(tiny_cli_scale.fanout_grid)

    def test_resumed_table_matches_uninterrupted_run(self, tiny_cli_scale, tmp_path, capsys):
        store = tmp_path / "cli-store.jsonl"
        scale_name = tiny_cli_scale.name

        assert main(["figure1", "--scale", scale_name]) == 0
        baseline = capsys.readouterr().out
        baseline_table = baseline[baseline.index("figure1: ") : baseline.index("\n[figure1")]

        assert main(["figure1", "--scale", scale_name, "--store", str(store)]) == 0
        capsys.readouterr()
        lines = store.read_text(encoding="utf-8").splitlines(keepends=True)
        store.write_text("".join(lines[:3]), encoding="utf-8")
        assert main(
            ["figure1", "--scale", scale_name, "--store", str(store), "--resume"]
        ) == 0
        resumed = capsys.readouterr().out
        resumed_table = resumed[resumed.index("figure1: ") : resumed.index("\n[figure1")]
        assert resumed_table == baseline_table

    def test_ablations_resume_through_the_store(self, tiny_cli_scale, tmp_path, capsys):
        store = tmp_path / "ablation-store.jsonl"
        scale_name = tiny_cli_scale.name
        target = "ablation:source-fanout"

        assert main([target, "--scale", scale_name, "--store", str(store)]) == 0
        first = capsys.readouterr().out
        assert "ablation-source-fanout" in first
        records = store.read_text(encoding="utf-8").splitlines()
        assert len(records) == 4  # one per source fanout in the default grid

        # A resumed run re-runs nothing and prints the identical table.
        assert main([target, "--scale", scale_name, "--store", str(store), "--resume"]) == 0
        second = capsys.readouterr().out
        assert len(store.read_text(encoding="utf-8").splitlines()) == 4

        def table_of(output: str) -> str:
            start = output.index("ablation-source-fanout:")
            end = output.index("\n[ablation:source-fanout regenerated")
            return output[start:end]

        assert table_of(first) == table_of(second)
