"""Unit tests for experiment scales."""

import pytest

from repro.experiments.scale import (
    METROPOLIS,
    PAPER,
    REDUCED,
    SMOKE,
    XLARGE,
    ExperimentScale,
    available_scales,
    scale_by_name,
)
from repro.membership.partners import INFINITE


class TestPresets:
    def test_lookup_by_name(self):
        assert scale_by_name("smoke") is SMOKE
        assert scale_by_name("reduced") is REDUCED
        assert scale_by_name("paper") is PAPER
        assert scale_by_name("xlarge") is XLARGE
        assert scale_by_name("metropolis") is METROPOLIS

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            scale_by_name("galactic")

    def test_available_scales(self):
        assert available_scales() == [
            "metropolis",
            "paper",
            "reduced",
            "smoke",
            "xlarge",
        ]

    def test_paper_scale_matches_paper_constants(self):
        stream = PAPER.stream_config()
        assert PAPER.num_nodes == 230
        assert stream.rate_kbps == 600.0
        assert stream.packets_per_window == 110
        assert stream.fec_packets_per_window == 9
        assert PAPER.gossip_period == pytest.approx(0.2)
        assert PAPER.source_fanout == 7

    def test_smoke_scale_is_smaller_than_reduced(self):
        assert SMOKE.num_nodes < REDUCED.num_nodes
        assert SMOKE.stream_duration < REDUCED.stream_duration

    def test_fanout_grids_fit_system_size(self):
        for scale in (SMOKE, REDUCED, PAPER, XLARGE, METROPOLIS):
            assert max(scale.fanout_grid) < scale.num_nodes

    def test_xlarge_scale_keeps_paper_stream_geometry(self):
        stream = XLARGE.stream_config()
        assert XLARGE.num_nodes == 1000
        assert stream.rate_kbps == 600.0
        assert stream.source_packets_per_window == 101
        assert stream.fec_packets_per_window == 9
        assert XLARGE.optimal_fanout in XLARGE.fanout_grid

    def test_only_smoke_lacks_the_collapse_regime(self):
        assert not SMOKE.fanout_collapse_expected
        for scale in (REDUCED, PAPER, XLARGE):
            assert scale.fanout_collapse_expected

    def test_metropolis_scale_matches_its_scenario(self):
        stream = METROPOLIS.stream_config()
        assert METROPOLIS.num_nodes == 10_000
        assert stream.rate_kbps == 600.0
        assert stream.source_packets_per_window == 101
        assert stream.fec_packets_per_window == 9
        assert METROPOLIS.optimal_fanout in METROPOLIS.fanout_grid
        assert METROPOLIS.fanout_collapse_expected

    def test_xlarge_session_config_composes_through_the_builder(self):
        config = XLARGE.session_config(fanout=10, cap_kbps=1000.0)
        assert config.num_nodes == 1000
        assert config.gossip.fanout == 10
        assert config.network.upload_cap_kbps == pytest.approx(1000.0)
        assert config.stream.packets_per_window == 110


class TestBuilders:
    def test_session_config_defaults(self):
        config = REDUCED.session_config()
        assert config.num_nodes == REDUCED.num_nodes
        assert config.gossip.fanout == REDUCED.optimal_fanout
        assert config.network.upload_cap_kbps == pytest.approx(700.0)
        assert config.churn is None
        assert config.source_uncapped

    def test_session_config_overrides(self):
        config = REDUCED.session_config(
            fanout=20, cap_kbps=2000.0, refresh_every=INFINITE, churn_fraction=0.3, seed_offset=5
        )
        assert config.gossip.fanout == 20
        assert config.network.upload_cap_kbps == pytest.approx(2000.0)
        assert config.gossip.refresh_every == INFINITE
        assert config.churn is not None
        assert config.seed == REDUCED.seed + 5

    def test_network_config_uses_default_cap(self):
        assert REDUCED.network_config().upload_cap_kbps == pytest.approx(700.0)
        assert REDUCED.network_config(1000.0).upload_cap_kbps == pytest.approx(1000.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentScale(
                name="bad",
                num_nodes=10,
                payload_bytes=1000,
                source_packets_per_window=10,
                fec_packets_per_window=1,
                num_windows=5,
                max_backlog_seconds=5.0,
                extra_time=10.0,
                fanout_grid=(20,),
            )

    def test_describe_mentions_name_and_size(self):
        text = REDUCED.describe()
        assert "reduced" in text
        assert "60" in text
