"""Tests for race-free UDP port allocation."""

import socket

import pytest

from repro.realnet.ports import PortPlan, address_of, bind_fleet, bind_node_socket


def _close_all(sockets):
    for sock in sockets:
        sock.close()


class TestPortPlan:
    def test_defaults(self):
        plan = PortPlan()
        assert plan.bind_host == "127.0.0.1"
        assert plan.base_port is None

    def test_base_port_range_validated(self):
        with pytest.raises(ValueError):
            PortPlan(base_port=0)
        with pytest.raises(ValueError):
            PortPlan(base_port=70000)


class TestKernelAssigned:
    def test_binds_distinct_ephemeral_ports(self):
        plan = PortPlan()
        sockets = bind_fleet(plan, range(5))
        try:
            ports = {address_of(sock)[1] for sock in sockets.values()}
            assert len(ports) == 5
            assert all(port > 0 for port in ports)
        finally:
            _close_all(sockets.values())

    def test_socket_is_nonblocking(self):
        sock = bind_node_socket(PortPlan(), 0)
        try:
            assert sock.getblocking() is False
        finally:
            sock.close()


class TestExplicitBase:
    def test_node_id_maps_to_base_plus_id(self):
        # Ask the kernel for a currently free port, then claim it explicitly.
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        base = address_of(probe)[1]
        probe.close()

        sock = bind_node_socket(PortPlan(base_port=base), 0)
        try:
            assert address_of(sock)[1] == base
        finally:
            sock.close()

    def test_fleet_bind_is_all_or_nothing(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        base = address_of(probe)[1]
        probe.close()

        # Occupy base+1 so a two-node fleet cannot complete.
        blocker = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        blocker.bind(("127.0.0.1", base + 1))
        try:
            with pytest.raises(OSError):
                bind_fleet(PortPlan(base_port=base), [0, 1])
            # Node 0's socket must have been released by the failed bind.
            retry = bind_node_socket(PortPlan(base_port=base), 0)
            retry.close()
        finally:
            blocker.close()
