"""Round-trip and robustness tests for the realnet wire codec."""

import pytest

from repro.core.messages import (
    FeedMePayload,
    ProposePayload,
    RequestPayload,
    ServePayload,
    ServedPacket,
)
from repro.network.message import Message
from repro.realnet.codec import MAX_DATAGRAM_BYTES, decode_message, encode_message
from repro.realnet.errors import CodecError


def roundtrip(message: Message) -> Message:
    return decode_message(encode_message(message))


class TestRoundTrip:
    def test_no_payload(self):
        msg = Message(sender=3, receiver=9, kind="feed-me", size_bytes=64)
        out = roundtrip(msg)
        assert (out.sender, out.receiver, out.kind, out.size_bytes) == (3, 9, "feed-me", 64)
        assert out.payload is None

    def test_propose_payload(self):
        msg = Message(
            sender=1,
            receiver=2,
            kind="propose",
            size_bytes=200,
            payload=ProposePayload(packet_ids=(0, 5, 17, 4000000000)),
        )
        out = roundtrip(msg)
        assert isinstance(out.payload, ProposePayload)
        assert out.payload.packet_ids == (0, 5, 17, 4000000000)

    def test_request_payload(self):
        msg = Message(
            sender=1,
            receiver=2,
            kind="request",
            size_bytes=100,
            payload=RequestPayload(packet_ids=(7,)),
        )
        out = roundtrip(msg)
        assert isinstance(out.payload, RequestPayload)
        assert out.payload.packet_ids == (7,)

    def test_crafted_empty_id_list_rejected(self):
        # An empty PROPOSE violates the payload invariant; a datagram
        # crafted to carry one must fail as a CodecError, not a raw
        # ValueError escaping into the receive path.
        msg = Message(
            sender=0, receiver=1, kind="propose", size_bytes=200,
            payload=ProposePayload((9,)),
        )
        wire = bytearray(encode_message(msg))
        id_list_offset = wire.index(b"propose") + len(b"propose")
        wire[id_list_offset : id_list_offset + 2] = b"\x00\x00"
        with pytest.raises(CodecError):
            decode_message(bytes(wire))

    def test_serve_payload_without_raw_bytes(self):
        msg = Message(
            sender=4,
            receiver=6,
            kind="serve",
            size_bytes=1100,
            payload=ServePayload(packet=ServedPacket(packet_id=42, size_bytes=1000)),
        )
        out = roundtrip(msg)
        assert out.payload.packet.packet_id == 42
        assert out.payload.packet.size_bytes == 1000
        assert out.payload.packet.payload is None

    def test_serve_payload_with_raw_bytes(self):
        raw = bytes(range(256)) * 2
        msg = Message(
            sender=4,
            receiver=6,
            kind="serve",
            size_bytes=1100,
            payload=ServePayload(
                packet=ServedPacket(packet_id=1, size_bytes=len(raw), payload=raw)
            ),
        )
        out = roundtrip(msg)
        assert out.payload.packet.payload == raw

    def test_feed_me_payload(self):
        msg = Message(
            sender=8,
            receiver=0,
            kind="feed-me",
            size_bytes=80,
            payload=FeedMePayload(requester=8),
        )
        out = roundtrip(msg)
        assert isinstance(out.payload, FeedMePayload)
        assert out.payload.requester == 8


class TestSizeHonesty:
    def test_datagram_padded_to_modeled_size(self):
        msg = Message(sender=0, receiver=1, kind="propose", size_bytes=500,
                      payload=ProposePayload((1, 2, 3)))
        assert len(encode_message(msg)) == 500

    def test_oversized_encoding_sent_unpadded(self):
        # Modeled size smaller than the structural encoding: wire length is
        # the real encoding length, and the declared size survives decoding.
        msg = Message(sender=0, receiver=1, kind="propose", size_bytes=1,
                      payload=ProposePayload(tuple(range(50))))
        wire = encode_message(msg)
        assert len(wire) > 1
        assert decode_message(wire).size_bytes == 1

    def test_udp_ceiling_enforced(self):
        raw = b"x" * (MAX_DATAGRAM_BYTES + 100)
        msg = Message(
            sender=0,
            receiver=1,
            kind="serve",
            size_bytes=100,
            payload=ServePayload(
                packet=ServedPacket(packet_id=0, size_bytes=len(raw), payload=raw)
            ),
        )
        with pytest.raises(CodecError):
            encode_message(msg)


class TestRobustness:
    def test_unknown_payload_type_rejected(self):
        msg = Message(sender=0, receiver=1, kind="weird", size_bytes=10, payload=object())
        with pytest.raises(CodecError):
            encode_message(msg)

    def test_short_datagram_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b"RN")

    def test_bad_magic_rejected(self):
        wire = bytearray(encode_message(Message(sender=0, receiver=1, kind="x", size_bytes=64)))
        wire[0:2] = b"XX"
        with pytest.raises(CodecError):
            decode_message(bytes(wire))

    def test_bad_version_rejected(self):
        wire = bytearray(encode_message(Message(sender=0, receiver=1, kind="x", size_bytes=64)))
        wire[2] = 99
        with pytest.raises(CodecError):
            decode_message(bytes(wire))

    def test_truncated_payload_rejected(self):
        msg = Message(sender=0, receiver=1, kind="propose", size_bytes=1,
                      payload=ProposePayload(tuple(range(20))))
        wire = encode_message(msg)
        with pytest.raises(CodecError):
            decode_message(wire[: len(wire) // 2])
