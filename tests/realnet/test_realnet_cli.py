"""Tests for the ``python -m repro.realnet`` command line."""

import json

import pytest

from repro.realnet.cli import main

# CLI smoke scenarios: tiny stream, 4x wall clock.
RUN_ARGS = [
    "--scenario", "homogeneous",
    "--nodes", "8",
    "--windows", "2",
    "--extra-time", "4",
    "--time-scale", "0.25",
    "--seed", "3",
]


class TestRunCommand:
    def test_plain_run_succeeds(self, capsys):
        assert main(["run", *RUN_ARGS]) == 0
        out = capsys.readouterr().out
        assert "delivery=" in out

    def test_run_writes_artifacts(self, tmp_path, capsys):
        rc = main(["run", *RUN_ARGS, "--run-dir", str(tmp_path), "--trace"])
        assert rc == 0
        run_dirs = list(tmp_path.iterdir())
        assert len(run_dirs) == 1
        artifacts = {path.name for path in run_dirs[0].iterdir()}
        assert artifacts == {"delivery.jsonl", "summary.json", "trace.jsonl"}
        summary = json.loads((run_dirs[0] / "summary.json").read_text())
        assert summary["backend"] == "realnet-asyncio"
        assert summary["num_nodes"] == 8

    def test_trace_requires_run_dir(self):
        with pytest.raises(SystemExit):
            main(["run", *RUN_ARGS, "--trace"])

    def test_delivery_gate_failure_exits_nonzero(self, capsys):
        # A ratio above 1.0 is unreachable; the gate must trip.
        rc = main(["run", *RUN_ARGS, "--assert-delivery-ratio", "1.5"])
        assert rc == 1
        assert "DELIVERY GATE FAILED" in capsys.readouterr().err

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            main(["run", "--scenario", "no-such-scenario"])

    def test_bad_time_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--time-scale", "0"])


class TestCompareCommand:
    def test_compare_table(self, capsys):
        rc = main(["compare", *RUN_ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delivery-ratio gate" in out
        assert "PASS" in out

    def test_compare_json(self, capsys):
        rc = main(["compare", *RUN_ARGS, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is True
        assert any(entry["name"] == "delivery_ratio" for entry in doc["metrics"])
