"""Shared fixtures for the real-network backend tests.

Real sessions burn wall clock (a 6-virtual-second run at ``time_scale``
0.25 is ~1.5 s of real time), so the end-to-end fixtures are module-scoped
and sized to the smallest scenario that still exercises the full pipeline.
"""

from __future__ import annotations

import pytest

from repro.core.config import GossipConfig
from repro.core.session import SessionConfig, SessionResult
from repro.network.transport import NetworkConfig
from repro.realnet.session import RealNetConfig, RealNetSession
from repro.streaming.schedule import StreamConfig

# Fast-but-faithful wall clock: 4x real time keeps the 200 ms gossip period
# well above OS timer resolution (see AsyncioHost's time_scale guidance).
SMOKE_TIME_SCALE = 0.25


def realnet_session_config(num_nodes: int = 8, seed: int = 7, num_windows: int = 3) -> SessionConfig:
    """A real-network session small enough for the test suite."""
    return SessionConfig(
        num_nodes=num_nodes,
        seed=seed,
        gossip=GossipConfig(fanout=5, refresh_every=1.0, retransmit_timeout=2.0),
        stream=StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=20,
            fec_packets_per_window=2,
            num_windows=num_windows,
        ),
        network=NetworkConfig(upload_cap_kbps=700.0, max_backlog_seconds=10.0),
        extra_time=5.0,
    )


@pytest.fixture(scope="module")
def realnet_result() -> SessionResult:
    """One completed 8-node real-network session, shared per test module."""
    config = realnet_session_config()
    return RealNetSession(config, RealNetConfig(time_scale=SMOKE_TIME_SCALE)).run()
