"""Tests for the sim-vs-real comparison report."""

import pytest

from repro.realnet.compare import (
    DELIVERY_RATIO_TOLERANCE,
    BackendComparison,
    MetricDelta,
    compare_backends,
)
from repro.realnet.session import RealNetConfig

from tests.realnet.conftest import SMOKE_TIME_SCALE, realnet_session_config


class TestMetricDelta:
    def test_delta_is_real_minus_sim(self):
        delta = MetricDelta("delivery_ratio", sim=0.95, real=0.90)
        assert delta.delta == pytest.approx(-0.05)

    def test_within_tolerance(self):
        delta = MetricDelta("delivery_ratio", sim=0.95, real=0.90)
        assert delta.within(0.05)
        assert not delta.within(0.04)


@pytest.fixture(scope="module")
def comparison() -> BackendComparison:
    """One completed sim-vs-real comparison, shared per test module."""
    config = realnet_session_config(num_nodes=8, num_windows=2)
    return compare_backends(config, realnet=RealNetConfig(time_scale=SMOKE_TIME_SCALE))


class TestCompareBackends:
    def test_delivery_gate_passes_on_localhost(self, comparison):
        # The documented agreement claim at small n, no loss, ample caps.
        assert comparison.passed()
        assert abs(comparison.delivery_delta.delta) <= DELIVERY_RATIO_TOLERANCE

    def test_both_backends_delivered(self, comparison):
        assert comparison.delivery_delta.sim > 0.9
        assert comparison.delivery_delta.real > 0.9

    def test_report_covers_the_metric_set(self, comparison):
        names = [delta.name for delta in comparison.deltas]
        assert "delivery_ratio" in names
        assert "mean_upload_kbps" in names
        assert any(name.startswith("viewing_pct@") for name in names)
        assert any(name.startswith("complete_windows_pct@") for name in names)

    def test_unknown_metric_raises(self, comparison):
        with pytest.raises(KeyError):
            comparison.metric("nonexistent")

    def test_json_rendering(self, comparison):
        doc = comparison.to_json_dict()
        assert doc["passed"] is True
        assert doc["num_nodes"] == 8
        assert {entry["name"] for entry in doc["metrics"]} == {
            delta.name for delta in comparison.deltas
        }

    def test_text_rendering_carries_the_verdict(self, comparison):
        text = comparison.format_text()
        assert "delivery_ratio" in text
        assert "PASS" in text
