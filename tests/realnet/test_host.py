"""Unit tests for the wall-clock asyncio host."""

import pytest

from repro.core.host import Host, ScheduledHandle
from repro.realnet.errors import RealNetStateError
from repro.realnet.host import AsyncioHost, WallClockHandle
from repro.simulation.engine import Simulator

# Fast wall clock for timer-only tests: no gossip physics involved, so the
# 0.1+ scale guidance for full sessions does not apply here.
FAST = 0.02


class TestHostContract:
    def test_asyncio_host_satisfies_host_protocol(self):
        assert isinstance(AsyncioHost(seed=1), Host)

    def test_simulator_satisfies_host_protocol(self):
        assert isinstance(Simulator(seed=1), Host)

    def test_handle_satisfies_scheduled_handle_protocol(self):
        host = AsyncioHost(seed=1)
        handle = host.schedule(1.0, lambda: None)
        assert isinstance(handle, ScheduledHandle)

    def test_backend_name(self):
        assert AsyncioHost().backend_name == "realnet-asyncio"

    def test_invalid_time_scale_rejected(self):
        with pytest.raises(ValueError):
            AsyncioHost(time_scale=0.0)
        with pytest.raises(ValueError):
            AsyncioHost(time_scale=-1.0)


class TestPreStart:
    def test_now_is_zero_before_run(self):
        assert AsyncioHost().now == 0.0

    def test_schedule_buffers_until_run(self):
        host = AsyncioHost()
        host.schedule(0.5, lambda: None)
        host.schedule(1.0, lambda: None)
        assert host.pending_events == 2
        assert host.events_processed == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            AsyncioHost().schedule(-0.1, lambda: None)

    def test_cancel_before_run(self):
        host = AsyncioHost(time_scale=FAST)
        fired = []
        handle = host.schedule(0.1, fired.append, 1)
        handle.cancel()
        assert handle.cancelled
        assert host.pending_events == 0
        host.run(until=0.2)
        assert fired == []

    def test_cancel_is_idempotent(self):
        host = AsyncioHost()
        handle = host.schedule(0.1, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_cancel_none_is_ignored(self):
        AsyncioHost().cancel(None)


class TestRun:
    def test_run_requires_until(self):
        with pytest.raises(RealNetStateError):
            AsyncioHost().run()

    def test_run_twice_rejected(self):
        host = AsyncioHost(time_scale=FAST)
        host.run(until=0.01)
        with pytest.raises(RealNetStateError):
            host.run(until=0.01)

    def test_callbacks_fire_in_virtual_order(self):
        host = AsyncioHost(time_scale=FAST)
        fired = []
        host.schedule(0.3, fired.append, "late")
        host.schedule(0.1, fired.append, "early")
        host.schedule(0.2, fired.append, "middle")
        executed = host.run(until=0.5)
        assert fired == ["early", "middle", "late"]
        assert executed == 3
        assert host.events_processed == 3

    def test_callbacks_past_horizon_do_not_fire(self):
        host = AsyncioHost(time_scale=FAST)
        fired = []
        host.schedule(0.1, fired.append, "in")
        host.schedule(10.0, fired.append, "out")
        host.run(until=0.5)
        assert fired == ["in"]
        assert host.pending_events == 0

    def test_now_reaches_horizon_after_run(self):
        host = AsyncioHost(time_scale=FAST)
        host.run(until=0.25)
        assert host.now >= 0.25

    def test_callbacks_can_reschedule(self):
        host = AsyncioHost(time_scale=FAST)
        times = []

        def tick():
            times.append(host.now)
            if len(times) < 3:
                host.schedule(0.1, tick)

        host.schedule(0.1, tick)
        host.run(until=1.0)
        assert len(times) == 3
        assert times == sorted(times)

    def test_schedule_at_clamps_past_times(self):
        host = AsyncioHost(time_scale=FAST)
        fired = []

        def late_scheduler():
            # The wall clock has passed t=0 by now; this must fire, not raise.
            host.schedule_at(0.0, fired.append, "clamped")

        host.schedule(0.1, late_scheduler)
        host.run(until=0.5)
        assert fired == ["clamped"]

    def test_schedule_after_stop_is_born_cancelled(self):
        host = AsyncioHost(time_scale=FAST)
        host.run(until=0.01)
        handle = host.schedule(0.1, lambda: None)
        assert handle.cancelled
        assert host.pending_events == 0

    def test_fire_and_forget_variants(self):
        host = AsyncioHost(time_scale=FAST)
        fired = []
        host.schedule_fire_and_forget(0.1, fired.append, "a")
        host.schedule_fire_and_forget_at(0.2, fired.append, "b")
        host.run(until=0.5)
        assert fired == ["a", "b"]


class _StampRecorder:
    def __init__(self):
        self.stamps = []

    def on_event_dispatch(self, time, callback, args):
        self.stamps.append(time)


class TestObservers:
    def test_dispatch_observer_sees_monotone_stamps(self):
        host = AsyncioHost(time_scale=FAST)
        recorder = _StampRecorder()
        host.add_observer(recorder)
        for i in range(20):
            host.schedule(0.01 * (i + 1), lambda: None)
        host.run(until=0.5)
        assert len(recorder.stamps) == 20
        assert recorder.stamps == sorted(recorder.stamps)

    def test_remove_observer(self):
        host = AsyncioHost(time_scale=FAST)
        recorder = _StampRecorder()
        host.add_observer(recorder)
        host.remove_observer(recorder)
        host.schedule(0.1, lambda: None)
        host.run(until=0.2)
        assert recorder.stamps == []

    def test_now_never_regresses_across_dispatches(self):
        host = AsyncioHost(time_scale=FAST)
        reads = []
        for i in range(20):
            host.schedule(0.01 * (i + 1), lambda: reads.append(host.now))
        host.run(until=0.5)
        assert reads == sorted(reads)


class TestHandles:
    def test_handle_exposes_fired_state(self):
        host = AsyncioHost(time_scale=FAST)
        handle = host.schedule(0.05, lambda: None)
        assert isinstance(handle, WallClockHandle)
        assert not handle.fired
        host.run(until=0.2)
        assert handle.fired
        assert not handle.cancelled

    def test_cancel_after_fire_is_noop(self):
        host = AsyncioHost(time_scale=FAST)
        handle = host.schedule(0.05, lambda: None)
        host.run(until=0.2)
        handle.cancel()
        assert handle.fired
        assert not handle.cancelled
