"""End-to-end tests: a streaming session over real UDP sockets."""

import json
from dataclasses import replace

import pytest

from repro.core.session import StreamingSession
from repro.realnet.host import AsyncioHost
from repro.realnet.net import UdpNetwork
from repro.realnet.session import (
    RealNetConfig,
    RealNetSession,
    make_run_id,
    write_delivery_log,
)

from tests.realnet.conftest import SMOKE_TIME_SCALE, realnet_session_config


class TestRealNetSession:
    def test_uses_realnet_backend(self, realnet_result):
        assert realnet_result.events_processed > 0

    def test_stream_is_delivered(self, realnet_result):
        # Localhost, no loss model, ample bandwidth: the session must
        # essentially complete (the gate leaves room for wall-clock jitter).
        assert realnet_result.delivery_ratio() >= 0.9

    def test_deliveries_are_timestamped_in_order(self, realnet_result):
        for packets in realnet_result.deliveries.raw().values():
            times = list(packets.values())
            assert all(t >= 0.0 for t in times)

    def test_traffic_stats_recorded(self, realnet_result):
        assert realnet_result.traffic.total_bytes_sent() > 0

    def test_sharded_config_rejected(self):
        config = replace(realnet_session_config(), shards=2)
        with pytest.raises(ValueError):
            RealNetSession(config)

    def test_session_builds_asyncio_host_and_udp_network(self):
        session = RealNetSession(realnet_session_config())
        session.build()
        assert isinstance(session.simulator, AsyncioHost)
        assert isinstance(session.network, UdpNetwork)


class TestDeliveryLogSchema:
    def test_sim_and_real_logs_are_schema_identical(self, realnet_result, tmp_path):
        sim_result = StreamingSession(realnet_session_config()).run()
        sim_path = tmp_path / "sim.jsonl"
        real_path = tmp_path / "real.jsonl"
        write_delivery_log(sim_result, str(sim_path))
        write_delivery_log(realnet_result, str(real_path))
        sim_records = [json.loads(line) for line in sim_path.read_text().splitlines()]
        real_records = [json.loads(line) for line in real_path.read_text().splitlines()]
        assert sim_records and real_records
        assert set(sim_records[0]) == set(real_records[0]) == {"node", "packet", "t"}

    def test_log_is_sorted_by_time(self, realnet_result, tmp_path):
        path = tmp_path / "log.jsonl"
        count = write_delivery_log(realnet_result, str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == count
        times = [record["t"] for record in records]
        assert times == sorted(times)


class TestRunIdentity:
    def test_make_run_id_embeds_seed(self):
        assert make_run_id(42).endswith("-s42")

    def test_run_ids_differ_by_seed(self):
        assert make_run_id(1) != make_run_id(2)


class TestRealNetConfig:
    def test_rejects_nonpositive_time_scale(self):
        with pytest.raises(ValueError):
            RealNetConfig(time_scale=0.0)

    def test_port_plan_carries_knobs(self):
        plan = RealNetConfig(bind_host="127.0.0.1", base_port=40000).port_plan()
        assert plan.base_port == 40000


class TestTelemetryIntegration:
    def test_trace_records_and_validates(self, tmp_path):
        from repro.telemetry.config import TelemetryConfig
        from repro.telemetry.schema import validate_trace

        trace_path = tmp_path / "trace.jsonl"
        config = replace(
            realnet_session_config(num_nodes=6, num_windows=2),
            telemetry=TelemetryConfig(trace_path=str(trace_path)),
        )
        result = RealNetSession(config, RealNetConfig(time_scale=SMOKE_TIME_SCALE)).run()
        assert result.delivery_ratio() > 0.0
        header, count = validate_trace(trace_path)
        assert header.meta.get("backend") == "realnet-asyncio"
        assert count > 0
