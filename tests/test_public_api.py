"""The package's public import surface stays importable and consistent."""

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is missing"

    def test_core_entry_points_exposed(self):
        assert callable(repro.run_session)
        assert callable(repro.StreamingSession)
        assert callable(repro.GossipConfig)
        assert callable(repro.SessionConfig)

    def test_substrate_types_exposed(self):
        assert callable(repro.BandwidthCap)
        assert callable(repro.ReedSolomonCode)
        assert callable(repro.CatastrophicChurn)
        assert callable(repro.StreamConfig)

    def test_recommended_fanout_matches_membership_helper(self):
        from repro.membership.partners import recommended_fanout

        assert repro.recommended_fanout is recommended_fanout

    def test_infinite_sentinel_is_float_inf(self):
        import math

        assert repro.INFINITE == math.inf
        assert repro.OFFLINE_LAG == math.inf

    def test_experiments_package_importable(self):
        from repro import experiments

        assert hasattr(experiments, "figure1_fanout_700")
        assert hasattr(experiments, "REDUCED")

    def test_sweep_package_importable(self):
        from repro import sweep

        for name in sweep.__all__:
            assert hasattr(sweep, name), f"repro.sweep.__all__ lists {name} but it is missing"
        assert callable(sweep.run_sweep)
        assert callable(sweep.ParallelExecutor)

    def test_validation_package_importable(self):
        from repro import validation

        for name in validation.__all__:
            assert hasattr(
                validation, name
            ), f"repro.validation.__all__ lists {name} but it is missing"
        assert callable(validation.validate_session)
        assert callable(validation.ScenarioFuzzer)
        assert callable(validation.replay_bundle)

    def test_bench_package_importable(self):
        from repro import bench

        for name in bench.__all__:
            assert hasattr(bench, name), f"repro.bench.__all__ lists {name} but it is missing"
        assert callable(bench.run_selected)
        assert callable(bench.compare_report)
        assert len(bench.default_registry()) == 15

    def test_telemetry_package_importable(self):
        from repro import telemetry

        for name in telemetry.__all__:
            assert hasattr(
                telemetry, name
            ), f"repro.telemetry.__all__ lists {name} but it is missing"
        assert callable(telemetry.TelemetryConfig)
        assert callable(telemetry.MetricsRegistry)
        assert callable(telemetry.diff_traces)
        assert callable(telemetry.SessionTelemetry)
