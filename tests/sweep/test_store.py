"""Tests for the JSONL result store: persistence, resume, crash safety."""

import json

from repro.sweep.store import ResultStore, code_fingerprint, run_fingerprint, scale_fingerprint
from repro.sweep.summary import PointSummary


def _summary(cell: str, seed: int) -> PointSummary:
    return PointSummary(
        cell_id=cell,
        seed=seed,
        viewing=((20.0, 85.0),),
        delivery_ratio=0.97,
    )


class TestFingerprint:
    def test_fingerprint_is_stable_within_a_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16

    def test_scale_fingerprint_sees_contents_not_just_name(self):
        import dataclasses

        from repro.experiments.scale import SMOKE

        impostor = dataclasses.replace(SMOKE, num_nodes=SMOKE.num_nodes + 1)
        assert impostor.name == SMOKE.name
        assert scale_fingerprint(impostor) != scale_fingerprint(SMOKE)
        assert run_fingerprint(SMOKE) == f"{code_fingerprint()}+{scale_fingerprint(SMOKE)}"


class TestPersistence:
    def test_missing_file_loads_empty(self, tmp_path):
        store = ResultStore(tmp_path / "absent.jsonl")
        assert len(store) == 0
        assert store.get("cell", 1, "fp") is None

    def test_append_then_reload(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append("cell-a", 42, "fp", _summary("cell-a", 42))
        store.append("cell-b", 43, "fp", _summary("cell-b", 43))

        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        record = reloaded.get("cell-a", 42, "fp")
        assert record is not None
        assert record.viewing_percentage(20.0) == 85.0

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append("cell-a", 42, "old-code", _summary("cell-a", 42))
        assert ResultStore(path).get("cell-a", 42, "new-code") is None

    def test_append_does_not_parse_the_existing_file(self, tmp_path):
        """Write-mostly runs stay O(1) per point regardless of store size."""
        path = tmp_path / "store.jsonl"
        path.write_text("corrupt line that would be skipped on load\n", encoding="utf-8")
        store = ResultStore(path)
        store.append("cell-a", 42, "fp", _summary("cell-a", 42))
        assert store.skipped_lines == 0  # load() never ran
        # A reader still sees the appended record.
        assert ResultStore(path).get("cell-a", 42, "fp") is not None

    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append("cell-a", 42, "fp", _summary("cell-a", 42))
        newer = PointSummary(cell_id="cell-a", seed=42, delivery_ratio=1.0)
        store.append("cell-a", 42, "fp", newer)
        assert ResultStore(path).get("cell-a", 42, "fp").delivery_ratio == 1.0


class TestCrashSafety:
    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append("cell-a", 42, "fp", _summary("cell-a", 42))
        store.append("cell-b", 43, "fp", _summary("cell-b", 43))
        # Simulate a writer killed mid-record: truncate the last line.
        content = path.read_text(encoding="utf-8")
        path.write_text(content[: len(content) // 2 + len(content) // 3], encoding="utf-8")

        reloaded = ResultStore(path)
        assert reloaded.get("cell-a", 42, "fp") is not None
        assert reloaded.get("cell-b", 43, "fp") is None
        assert reloaded.skipped_lines == 1

    def test_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('not json at all\n{"cell_id": "x"}\n', encoding="utf-8")
        store = ResultStore(path)
        store.load()
        assert len(store) == 0
        assert store.skipped_lines == 2

    def test_reappend_after_torn_write_round_trips(self, tmp_path):
        """Regression: a record appended after a torn line must not be glued
        onto the torn fragment (which would corrupt *both* records)."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append("cell-a", 42, "fp", _summary("cell-a", 42))
        store.append("cell-b", 43, "fp", _summary("cell-b", 43))
        # A writer killed mid-append leaves a newline-less truncated tail.
        content = path.read_text(encoding="utf-8")
        torn = content[: -len(content.splitlines()[-1]) // 2 - 1]
        assert not torn.endswith("\n")
        path.write_text(torn, encoding="utf-8")

        # A fresh store (a restarted process) appends the lost point again.
        fresh = ResultStore(path)
        fresh.append("cell-b", 43, "fp", _summary("cell-b", 43))

        reloaded = ResultStore(path)
        reloaded.load()
        assert reloaded.get("cell-a", 42, "fp") is not None
        assert reloaded.get("cell-b", 43, "fp") is not None
        assert reloaded.skipped_lines == 1  # the torn fragment, nothing else

    def test_append_to_clean_file_adds_no_blank_lines(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ResultStore(path).append("cell-a", 42, "fp", _summary("cell-a", 42))
        ResultStore(path).append("cell-b", 43, "fp", _summary("cell-b", 43))
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert all(line.strip() for line in lines)

    def test_corrupt_lines_do_not_poison_resume(self, sweep_scale, tmp_path):
        """A store whose file holds torn/foreign lines still resumes: intact
        records are reused, the corrupted point is simply re-run."""
        from repro.sweep.executor import SerialExecutor, run_sweep
        from repro.sweep.spec import SweepGrid, SweepSpec
        from repro.sweep.store import run_fingerprint

        path = tmp_path / "sweep.jsonl"
        tasks = SweepSpec(
            name="resume-sweep",
            scale_name=sweep_scale.name,
            grid=SweepGrid(fanouts=(2, 4)),
        ).expand()
        run_sweep(sweep_scale, tasks, executor=SerialExecutor(), store=ResultStore(path))

        # Corrupt the *last* record (torn write) and prepend a foreign line.
        lines = path.read_text(encoding="utf-8").splitlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        path.write_text("not json\n" + "\n".join(lines), encoding="utf-8")

        store = ResultStore(path)
        resumed = run_sweep(
            sweep_scale, tasks, executor=SerialExecutor(), store=store, resume=True
        )
        assert store.skipped_lines == 2  # foreign + torn
        assert resumed.reused == len(tasks) - 1
        assert resumed.executed == 1
        # The re-run point was re-appended; a second resume reuses everything.
        second = run_sweep(
            sweep_scale,
            tasks,
            executor=SerialExecutor(),
            store=ResultStore(path),
            resume=True,
        )
        assert second.reused == len(tasks)
        assert second.executed == 0
        fingerprint = run_fingerprint(sweep_scale)
        for task in tasks:
            seed = sweep_scale.seed + task.point.seed_offset
            assert ResultStore(path).get(task.cell_id, seed, fingerprint) is not None

    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.append("cell-a", 42, "fp", _summary("cell-a", 42))
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["cell_id"] == "cell-a"
        assert record["seed"] == 42
        assert record["fingerprint"] == "fp"
