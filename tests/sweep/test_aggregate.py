"""Tests for replica aggregation (mean/stdev/CI) and table rendering."""

import math

import pytest

from repro.experiments.runner import ExperimentPoint
from repro.sweep.aggregate import Stat, aggregate, aggregate_table, stat_of, t_quantile_975
from repro.sweep.spec import SweepTask
from repro.sweep.summary import PointSummary


def _summary(seed: int, viewing: float, delivery: float = 0.9) -> PointSummary:
    return PointSummary(
        cell_id="unused",
        seed=seed,
        viewing=((20.0, viewing), (math.inf, viewing + 5.0)),
        complete_windows=((20.0, viewing - 1.0),),
        delivery_ratio=delivery,
    )


def _results(cell_values):
    """Build a results mapping: {fanout: [replica viewing values]}."""
    results = {}
    for fanout, values in cell_values.items():
        for offset, value in enumerate(values):
            point = ExperimentPoint(scale_name="smoke", fanout=fanout, seed_offset=offset)
            results[SweepTask(point=point)] = _summary(42 + offset, value)
    return results


class TestStatOf:
    def test_single_value_has_no_spread(self):
        stat = stat_of([80.0])
        assert stat == Stat(mean=80.0, stdev=0.0, ci95=0.0, n=1)
        assert str(stat) == "80.00"

    def test_mean_stdev_and_ci(self):
        stat = stat_of([10.0, 20.0, 30.0])
        assert stat.mean == pytest.approx(20.0)
        assert stat.stdev == pytest.approx(10.0)
        # Small samples use the Student-t quantile (df = 2 → 4.303), not z.
        assert stat.ci95 == pytest.approx(4.303 * 10.0 / math.sqrt(3))
        assert "±" in str(stat)

    def test_t_quantile_shrinks_toward_z(self):
        assert t_quantile_975(1) == pytest.approx(12.706)
        assert t_quantile_975(4) == pytest.approx(2.776)
        assert t_quantile_975(200) == pytest.approx(1.96)
        with pytest.raises(ValueError):
            t_quantile_975(0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stat_of([])


class TestAggregate:
    def test_groups_replicas_by_cell(self):
        results = _results({4: [70.0, 80.0], 7: [90.0, 92.0]})
        cells = aggregate(results)
        assert len(cells) == 2
        assert all(cell.n == 2 for cell in cells)
        by_mean = sorted(cell.viewing_stat(20.0).mean for cell in cells)
        assert by_mean == [75.0, 91.0]

    def test_cells_sorted_by_cell_id(self):
        results = _results({7: [90.0], 4: [70.0]})
        cells = aggregate(results)
        assert [cell.cell_id for cell in cells] == sorted(cell.cell_id for cell in cells)

    def test_aggregation_independent_of_insertion_order(self):
        forward = _results({4: [70.0, 80.0, 75.0]})
        backward = {task: summary for task, summary in reversed(list(forward.items()))}
        assert aggregate(forward) == aggregate(backward)

    def test_unknown_lag_raises(self):
        cells = aggregate(_results({4: [70.0]}))
        with pytest.raises(KeyError):
            cells[0].viewing_stat(123.0)
        with pytest.raises(KeyError):
            cells[0].complete_windows_stat(123.0)


class TestAggregateTable:
    def test_table_contains_cells_and_stats(self):
        cells = aggregate(_results({4: [70.0, 80.0], 7: [90.0, 92.0]}))
        table = aggregate_table(cells)
        assert "fanout=4" in table
        assert "fanout=7" in table
        assert "view@20s" in table
        assert "view@offline" in table
        assert "delivery" in table
        assert "75.00±" in table

    def test_empty_aggregates_render_placeholder(self):
        assert aggregate_table([]) == "(no cells)"
