"""Tests for point summaries: extraction, accessors, pickling, JSON."""

import math
import pickle

import pytest

from repro.experiments.runner import ExperimentPoint
from repro.metrics.quality import OFFLINE_LAG
from repro.sweep.executor import compute_summary, run_task
from repro.sweep.spec import SweepTask
from repro.sweep.summary import MetricsRequest, PointSummary, summarize


@pytest.fixture(scope="module")
def summary(sweep_scale):
    task = SweepTask(point=ExperimentPoint(scale_name=sweep_scale.name, fanout=4))
    return compute_summary(sweep_scale, task, MetricsRequest.for_scale(sweep_scale))


class TestMetricsRequest:
    def test_for_scale_covers_every_figure_lag(self, sweep_scale):
        request = MetricsRequest.for_scale(sweep_scale)
        assert 10.0 in request.viewing_lags
        assert 20.0 in request.viewing_lags
        assert OFFLINE_LAG in request.viewing_lags
        assert request.lag_cdf_grid == tuple(sweep_scale.fig2_lag_grid)
        assert 20.0 in request.window_lags


class TestExtraction:
    def test_summary_matches_session_result(self, sweep_scale):
        task = SweepTask(point=ExperimentPoint(scale_name=sweep_scale.name, fanout=4))
        result = run_task(sweep_scale, task)
        summary = summarize(
            result, MetricsRequest.for_scale(sweep_scale), task.cell_id, seed=99
        )
        assert summary.viewing_percentage(20.0) == result.viewing_percentage(lag=20.0)
        assert summary.viewing_percentage(OFFLINE_LAG) == result.viewing_percentage(
            lag=OFFLINE_LAG
        )
        assert (
            summary.average_complete_windows_percentage(20.0)
            == result.average_complete_windows_percentage(20.0)
        )
        assert summary.delivery_ratio == result.delivery_ratio()
        assert summary.sorted_usage() == result.bandwidth_usage().sorted_usage()
        assert summary.lag_cdf_values(sweep_scale.fig2_lag_grid) == list(
            result.quality().lag_cdf(sweep_scale.fig2_lag_grid)
        )
        assert summary.num_receivers == sweep_scale.num_nodes - 1

    def test_unknown_lag_raises(self, summary):
        with pytest.raises(KeyError):
            summary.viewing_percentage(123.456)
        with pytest.raises(KeyError):
            summary.average_complete_windows_percentage(123.456)
        with pytest.raises(KeyError):
            summary.lag_cdf_values([123.456])


class TestPickle:
    def test_summary_round_trips_through_pickle(self, summary):
        clone = pickle.loads(pickle.dumps(summary))
        assert clone == summary
        assert clone.viewing_percentage(20.0) == summary.viewing_percentage(20.0)

    def test_task_and_point_round_trip_through_pickle(self):
        task = SweepTask(
            point=ExperimentPoint(scale_name="smoke", fanout=7, seed_offset=2),
            patch=(("gossip.source_fanout", 3),),
        )
        assert pickle.loads(pickle.dumps(task)) == task


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, summary):
        clone = PointSummary.from_json_dict(summary.to_json_dict())
        assert clone == summary
        assert clone.wall_seconds == summary.wall_seconds

    def test_infinite_lags_encode_as_strings(self, summary):
        import json

        data = summary.to_json_dict()
        text = json.dumps(data)  # must be standard JSON: no bare Infinity
        assert "Infinity" not in text
        clone = PointSummary.from_json_dict(json.loads(text))
        assert clone.viewing_percentage(OFFLINE_LAG) == summary.viewing_percentage(
            OFFLINE_LAG
        )

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError):
            PointSummary.from_json_dict({"cell_id": "c", "seed": 1, "bogus": 2})

    def test_wall_seconds_excluded_from_equality(self):
        first = PointSummary(cell_id="c", seed=1, wall_seconds=1.0)
        second = PointSummary(cell_id="c", seed=1, wall_seconds=9.0)
        assert first == second


class TestZeroWindows:
    def test_summary_handles_inf_sentinels(self):
        summary = PointSummary(
            cell_id="c",
            seed=1,
            viewing=((math.inf, 42.0),),
        )
        assert summary.viewing_percentage(math.inf) == 42.0


class TestTelemetryMetrics:
    def test_metrics_key_omitted_when_empty(self):
        """Store records written before telemetry existed — and the golden
        files pinning them — must stay byte-identical."""
        summary = PointSummary(cell_id="c", seed=1)
        assert "metrics" not in summary.to_json_dict()

    def test_metrics_round_trip_when_present(self):
        import json

        summary = PointSummary(
            cell_id="c",
            seed=1,
            metrics=(("engine.events_dispatched", 123.0), ("net.bytes_sent", 456.0)),
        )
        data = summary.to_json_dict()
        assert data["metrics"] == [
            ["engine.events_dispatched", 123.0],
            ["net.bytes_sent", 456.0],
        ]
        clone = PointSummary.from_json_dict(json.loads(json.dumps(data)))
        assert clone == summary
        assert clone.metric("net.bytes_sent") == 456.0

    def test_metric_accessor_raises_for_missing_name(self):
        with pytest.raises(KeyError):
            PointSummary(cell_id="c", seed=1).metric("nope")

    def test_include_metrics_flows_through_compute_summary(self, sweep_scale):
        import dataclasses

        task = SweepTask(point=ExperimentPoint(scale_name=sweep_scale.name))
        request = dataclasses.replace(
            MetricsRequest.for_scale(sweep_scale), include_metrics=True
        )
        armed = compute_summary(sweep_scale, task, request)
        assert armed.metrics
        assert armed.metric("engine.events_dispatched") == float(armed.events_processed)
        bare = compute_summary(
            sweep_scale, task, MetricsRequest.for_scale(sweep_scale)
        )
        # Arming metrics never perturbs the figure-facing numbers.
        assert dataclasses.replace(armed, metrics=()) == bare
