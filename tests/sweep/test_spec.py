"""Tests for sweep grids, specs, tasks and cell ids."""

import pytest

from repro.experiments.runner import ExperimentPoint
from repro.membership.partners import INFINITE
from repro.sweep.spec import SweepGrid, SweepSpec, SweepTask, dedupe_tasks


class TestSweepGrid:
    def test_default_grid_is_one_cell(self):
        grid = SweepGrid()
        assert len(grid) == 1
        points = list(grid.cells("smoke"))
        assert points == [ExperimentPoint(scale_name="smoke")]

    def test_cross_product_size(self):
        grid = SweepGrid(fanouts=(4, 7), caps_kbps=(None, 2000.0), churn_fractions=(0.0, 0.2, 0.5))
        assert len(grid) == 12
        assert len(list(grid.cells("smoke"))) == 12

    def test_cells_order_is_deterministic(self):
        grid = SweepGrid(fanouts=(4, 7), refresh_values=(1, INFINITE))
        first = list(grid.cells("smoke"))
        second = list(grid.cells("smoke"))
        assert first == second

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepGrid(fanouts=())


class TestSweepSpec:
    def test_expand_replicates_over_seeds(self):
        spec = SweepSpec(
            name="s", scale_name="smoke", grid=SweepGrid(fanouts=(4, 7)), replicas=3
        )
        tasks = spec.expand()
        assert len(tasks) == len(spec) == 6
        offsets = sorted({task.point.seed_offset for task in tasks})
        assert offsets == [0, 1, 2]
        # Replicas of a cell share the cell id.
        by_cell = {}
        for task in tasks:
            by_cell.setdefault(task.cell_id, []).append(task)
        assert all(len(replicas) == 3 for replicas in by_cell.values())
        assert len(by_cell) == 2

    def test_base_seed_offset_shifts_replicas(self):
        spec = SweepSpec(name="s", scale_name="smoke", replicas=2, base_seed_offset=10)
        offsets = [task.point.seed_offset for task in spec.expand()]
        assert offsets == [10, 11]

    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(name="s", scale_name="smoke", replicas=0)


class TestCellIds:
    def test_cell_id_is_stable_and_excludes_seed(self):
        base = ExperimentPoint(scale_name="smoke", fanout=7)
        replica = ExperimentPoint(scale_name="smoke", fanout=7, seed_offset=3)
        assert SweepTask(point=base).cell_id == SweepTask(point=replica).cell_id

    def test_cell_id_distinguishes_every_axis(self):
        base = SweepTask(point=ExperimentPoint(scale_name="smoke"))
        variants = [
            SweepTask(point=ExperimentPoint(scale_name="reduced")),
            SweepTask(point=ExperimentPoint(scale_name="smoke", fanout=9)),
            SweepTask(point=ExperimentPoint(scale_name="smoke", cap_kbps=2000.0)),
            SweepTask(point=ExperimentPoint(scale_name="smoke", refresh_every=2)),
            SweepTask(point=ExperimentPoint(scale_name="smoke", feed_me_every=5)),
            SweepTask(point=ExperimentPoint(scale_name="smoke", churn_fraction=0.2)),
            SweepTask(point=ExperimentPoint(scale_name="smoke", protocol="eager-push")),
            SweepTask(point=ExperimentPoint(scale_name="smoke"), patch=(("gossip.source_fanout", 3),)),
        ]
        ids = {task.cell_id for task in variants}
        assert base.cell_id not in ids
        assert len(ids) == len(variants)

    def test_fractional_rates_render_honestly(self):
        task = SweepTask(point=ExperimentPoint(scale_name="smoke", refresh_every=0.5))
        assert "X=0.5" in task.cell_id

    def test_infinite_rates_render_as_inf(self):
        task = SweepTask(
            point=ExperimentPoint(scale_name="smoke", refresh_every=INFINITE)
        )
        assert "X=inf" in task.cell_id

    def test_describe_mentions_replica(self):
        task = SweepTask(point=ExperimentPoint(scale_name="smoke", seed_offset=2))
        assert "seed+2" in task.describe()


class TestDedupe:
    def test_dedupe_preserves_first_seen_order(self):
        a = SweepTask(point=ExperimentPoint(scale_name="smoke", fanout=4))
        b = SweepTask(point=ExperimentPoint(scale_name="smoke", fanout=7))
        assert dedupe_tasks([a, b, a, b, a]) == [a, b]
