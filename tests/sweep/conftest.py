"""Fixtures for the sweep subsystem tests: a tiny scale that runs in seconds."""

from __future__ import annotations

import pytest

from repro.experiments.scale import ExperimentScale
from repro.membership.partners import INFINITE

SWEEP_TINY = ExperimentScale(
    name="sweep-tiny",
    num_nodes=14,
    payload_bytes=1000,
    source_packets_per_window=10,
    fec_packets_per_window=1,
    num_windows=10,
    max_backlog_seconds=6.0,
    extra_time=10.0,
    fanout_grid=(2, 4, 6),
    fig2_fanouts=(2, 4),
    fig2_lag_grid=(0.0, 5.0, 10.0, 20.0),
    fig3_caps_kbps=(2000.0,),
    fig4_pairs=((4, 700.0),),
    refresh_grid=(1, INFINITE),
    feedme_grid=(1, INFINITE),
    churn_grid=(0.2,),
    churn_refresh_values=(1,),
    optimal_fanout=4,
    seed=23,
)
"""A deliberately tiny scale so sweep tests complete in a few seconds."""


@pytest.fixture(scope="session")
def sweep_scale() -> ExperimentScale:
    return SWEEP_TINY
