"""Tests for the summary cache, plan recording, and figure integration."""

import pytest

from repro.experiments.figures import figure_points, figure1_fanout_700
from repro.experiments.runner import ExperimentPoint
from repro.sweep.cache import RecordingCache, SummaryCache
from repro.sweep.executor import SerialExecutor, run_sweep
from repro.sweep.spec import SweepTask


class TestSummaryCache:
    def test_cache_avoids_reruns(self, sweep_scale):
        cache = SummaryCache()
        point = ExperimentPoint(scale_name=sweep_scale.name, fanout=4)
        first = cache.get(sweep_scale, point)
        second = cache.get(sweep_scale, point)
        assert first is second
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_scale_mismatch_rejected(self, sweep_scale):
        cache = SummaryCache()
        with pytest.raises(ValueError):
            cache.get(sweep_scale, ExperimentPoint(scale_name="reduced", fanout=4))

    def test_clear_empties_cache(self, sweep_scale):
        cache = SummaryCache()
        cache.get(sweep_scale, ExperimentPoint(scale_name=sweep_scale.name, fanout=4))
        cache.clear()
        assert len(cache) == 0

    def test_primed_results_serve_without_running(self, sweep_scale):
        tasks = [
            SweepTask(point=ExperimentPoint(scale_name=sweep_scale.name, fanout=f))
            for f in (2, 4)
        ]
        outcome = run_sweep(sweep_scale, tasks, executor=SerialExecutor())
        cache = SummaryCache()
        assert cache.prime(outcome.results) == 2
        summary = cache.get(sweep_scale, tasks[0].point)
        assert summary is outcome.results[tasks[0]]
        assert cache.misses == 0  # nothing was computed

    def test_patched_tasks_are_not_primed(self, sweep_scale):
        task = SweepTask(
            point=ExperimentPoint(scale_name=sweep_scale.name),
            patch=(("gossip.source_fanout", 1),),
        )
        outcome = run_sweep(sweep_scale, [task], executor=SerialExecutor())
        cache = SummaryCache()
        assert cache.prime(outcome.results) == 0
        assert len(cache) == 0


class TestRecordingCache:
    def test_records_points_without_simulating(self, sweep_scale):
        recorder = RecordingCache()
        result = figure1_fanout_700(sweep_scale, recorder)
        # A dry run: real series structure, all-zero values.
        assert [series.label for series in result.series]
        assert all(y == 0.0 for series in result.series for y in series.ys())
        assert len(recorder.points()) == len(sweep_scale.fanout_grid)

    def test_figure_points_matches_generator_requests(self, sweep_scale):
        points = figure_points("figure1", sweep_scale)
        expected = [
            ExperimentPoint(scale_name=sweep_scale.name, fanout=f)
            for f in sweep_scale.fanout_grid
        ]
        assert points == expected

    def test_figure_points_unknown_figure(self, sweep_scale):
        with pytest.raises(KeyError):
            figure_points("figure99", sweep_scale)

    def test_tasks_wrap_points_patch_free(self, sweep_scale):
        recorder = RecordingCache()
        figure1_fanout_700(sweep_scale, recorder)
        tasks = recorder.tasks()
        assert [task.point for task in tasks] == recorder.points()
        assert all(task.patch == () for task in tasks)

    def test_figures_share_overlapping_points(self, sweep_scale):
        """Figure 7 and Figure 8 request identical points (shared runs)."""
        assert set(figure_points("figure7", sweep_scale)) == set(
            figure_points("figure8", sweep_scale)
        )
