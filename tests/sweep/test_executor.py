"""Tests for the executors: patches, determinism, resume accounting.

The headline guarantee lives in ``test_parallel_matches_serial_exactly``: a
4-worker sweep must produce byte-identical aggregate tables to the serial
path for the same seeds.
"""

import pytest

from repro.core.session import SessionConfig
from repro.experiments.runner import ExperimentPoint
from repro.sweep.aggregate import aggregate, aggregate_table
from repro.sweep.executor import (
    ParallelExecutor,
    SerialExecutor,
    apply_patch,
    make_executor,
    run_sweep,
    run_task,
)
from repro.sweep.spec import SweepGrid, SweepSpec, SweepTask
from repro.sweep.store import ResultStore


def _spec(scale, **overrides):
    options = dict(
        name="test-sweep",
        scale_name=scale.name,
        grid=SweepGrid(fanouts=(2, 4, 6)),
        replicas=2,
    )
    options.update(overrides)
    return SweepSpec(**options)


class TestApplyPatch:
    def test_nested_patch_replaces_sub_config(self):
        config = SessionConfig()
        patched = apply_patch(config, (("gossip.source_fanout", 3),))
        assert patched.gossip.source_fanout == 3
        assert config.gossip.source_fanout != 3  # original untouched

    def test_top_level_patch(self):
        config = SessionConfig()
        patched = apply_patch(config, (("failure_detection_delay", 2.5),))
        assert patched.failure_detection_delay == 2.5

    def test_unknown_path_rejected(self):
        with pytest.raises(ValueError):
            apply_patch(SessionConfig(), (("gossip.no_such_knob", 1),))
        with pytest.raises(ValueError):
            apply_patch(SessionConfig(), (("no_such_section.x", 1),))


class TestRunTask:
    def test_scale_mismatch_rejected(self, sweep_scale):
        task = SweepTask(point=ExperimentPoint(scale_name="reduced"))
        with pytest.raises(ValueError):
            run_task(sweep_scale, task)

    def test_patched_task_differs_from_unpatched(self, sweep_scale):
        plain = SweepTask(point=ExperimentPoint(scale_name=sweep_scale.name))
        patched = SweepTask(
            point=ExperimentPoint(scale_name=sweep_scale.name),
            patch=(("gossip.source_fanout", 1),),
        )
        plain_result = run_task(sweep_scale, plain)
        patched_result = run_task(sweep_scale, patched)
        assert plain_result.config.gossip.source_fanout != 1
        assert patched_result.config.gossip.source_fanout == 1


class TestMakeExecutor:
    def test_one_job_is_serial(self):
        assert isinstance(make_executor(1), SerialExecutor)

    def test_many_jobs_is_parallel(self):
        executor = make_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 3

    def test_zero_jobs_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(jobs=0)
        with pytest.raises(ValueError):
            make_executor(0)


class TestDeterminism:
    def test_parallel_matches_serial_exactly(self, sweep_scale):
        """A 4-worker sweep is byte-identical to the serial one (same seeds)."""
        tasks = _spec(sweep_scale).expand()
        serial = run_sweep(sweep_scale, tasks, executor=SerialExecutor())
        parallel = run_sweep(sweep_scale, tasks, executor=ParallelExecutor(jobs=4))

        assert serial.results == parallel.results
        serial_table = aggregate_table(aggregate(serial.results))
        parallel_table = aggregate_table(aggregate(parallel.results))
        assert serial_table == parallel_table

    def test_results_keyed_by_task_in_order(self, sweep_scale):
        tasks = _spec(sweep_scale, replicas=1).expand()
        outcome = run_sweep(sweep_scale, tasks, executor=SerialExecutor())
        assert list(outcome.results) == tasks
        assert len(outcome.summaries(tasks)) == len(tasks)


class TestResume:
    def test_interrupted_sweep_resumes_missing_cells_only(self, sweep_scale, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = _spec(sweep_scale, replicas=1).expand()

        # "Crash" after two points: only a prefix reaches the store.
        first = run_sweep(
            sweep_scale, tasks[:2], executor=SerialExecutor(), store=ResultStore(path)
        )
        assert first.executed == 2

        # A fresh process resumes: completed cells come from the store.
        resumed = run_sweep(
            sweep_scale,
            tasks,
            executor=SerialExecutor(),
            store=ResultStore(path),
            resume=True,
        )
        assert resumed.reused == 2
        assert resumed.executed == len(tasks) - 2

        # And the resumed sweep's table equals an uninterrupted run's.
        uninterrupted = run_sweep(sweep_scale, tasks, executor=SerialExecutor())
        assert aggregate_table(aggregate(resumed.results)) == aggregate_table(
            aggregate(uninterrupted.results)
        )

    def test_resume_requires_store(self, sweep_scale):
        with pytest.raises(ValueError):
            run_sweep(sweep_scale, [], resume=True)

    def test_resume_rejects_results_from_a_different_scale(self, sweep_scale, tmp_path):
        """Same scale *name*, different contents → stored results are a miss."""
        import dataclasses

        path = tmp_path / "sweep.jsonl"
        tasks = [SweepTask(point=ExperimentPoint(scale_name=sweep_scale.name, fanout=4))]
        run_sweep(sweep_scale, tasks, executor=SerialExecutor(), store=ResultStore(path))

        impostor = dataclasses.replace(sweep_scale, num_nodes=sweep_scale.num_nodes + 4)
        resumed = run_sweep(
            impostor,
            tasks,
            executor=SerialExecutor(),
            store=ResultStore(path),
            resume=True,
        )
        assert resumed.reused == 0
        assert resumed.executed == 1

    def test_duplicate_tasks_run_once(self, sweep_scale):
        task = SweepTask(point=ExperimentPoint(scale_name=sweep_scale.name, fanout=4))
        outcome = run_sweep(sweep_scale, [task, task, task], executor=SerialExecutor())
        assert outcome.executed == 1
        assert len(outcome.results) == 1

    def test_progress_callback_sees_every_executed_task(self, sweep_scale):
        tasks = _spec(sweep_scale, replicas=1, grid=SweepGrid(fanouts=(2, 4))).expand()
        seen = []
        run_sweep(
            sweep_scale,
            tasks,
            executor=SerialExecutor(),
            progress=lambda task, summary: seen.append(task),
        )
        assert seen == tasks
