"""Smoke-run every example script at reduced scale.

The README promises that each walkthrough under ``examples/`` is runnable;
this module holds the promise.  Every script honours the
``REPRO_EXAMPLE_SMOKE`` environment variable (smaller swarms, fewer stream
windows, shorter sweeps), so the whole set executes in seconds while still
driving the real code paths end to end — scenario registry, session
wiring, metrics reporting, the FEC codec and the real-network backend.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def _smoke_env() -> dict:
    env = dict(os.environ)
    env["REPRO_EXAMPLE_SMOKE"] = "1"
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    return env


def test_every_example_is_covered():
    names = {path.stem for path in EXAMPLES}
    # The scripts the documentation points at must exist and be picked up.
    assert {"quickstart", "realnet_quickstart", "fec_codec_roundtrip"} <= names


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        env=_smoke_env(),
        cwd=ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited with {completed.returncode}\n"
        f"--- stdout ---\n{completed.stdout}\n--- stderr ---\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
