"""Property-based tests for partner selection."""

import random

from hypothesis import given, settings, strategies as st

from repro.membership.directory import MembershipDirectory
from repro.membership.partners import INFINITE, PartnerSelector


@st.composite
def selector_setup(draw):
    num_nodes = draw(st.integers(min_value=2, max_value=40))
    fanout = draw(st.integers(min_value=1, max_value=50))
    refresh = draw(st.sampled_from([1, 2, 3, 5, 10, INFINITE]))
    node_id = draw(st.integers(min_value=0, max_value=num_nodes - 1))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rounds = draw(st.integers(min_value=1, max_value=30))
    return num_nodes, fanout, refresh, node_id, seed, rounds


class TestPartnerSelectorProperties:
    @given(selector_setup())
    @settings(deadline=None)
    def test_partner_sets_are_always_valid(self, setup):
        num_nodes, fanout, refresh, node_id, seed, rounds = setup
        directory = MembershipDirectory()
        directory.add_all(range(num_nodes))
        selector = PartnerSelector(node_id, directory, fanout, refresh, random.Random(seed))
        for _ in range(rounds):
            partners = selector.partners_for_round(now=0.0)
            assert node_id not in partners
            assert len(partners) == len(set(partners))
            assert len(partners) == min(fanout, num_nodes - 1)
            assert all(partner in directory for partner in partners)

    @given(selector_setup())
    @settings(deadline=None)
    def test_refresh_count_respects_refresh_rate(self, setup):
        num_nodes, fanout, refresh, node_id, seed, rounds = setup
        directory = MembershipDirectory()
        directory.add_all(range(num_nodes))
        selector = PartnerSelector(node_id, directory, fanout, refresh, random.Random(seed))
        for _ in range(rounds):
            selector.partners_for_round(now=0.0)
        if refresh == INFINITE:
            assert selector.refresh_count == 1
        else:
            expected = -(-rounds // int(refresh))  # ceil division
            assert selector.refresh_count == expected

    @given(selector_setup(), st.integers(min_value=0, max_value=39))
    @settings(deadline=None)
    def test_insert_requester_preserves_set_size(self, setup, requester):
        num_nodes, fanout, refresh, node_id, seed, __ = setup
        directory = MembershipDirectory()
        directory.add_all(range(num_nodes))
        selector = PartnerSelector(node_id, directory, fanout, refresh, random.Random(seed))
        selector.partners_for_round(now=0.0)
        size_before = len(selector.current_partners())
        selector.insert_requester(requester, now=0.0)
        partners = selector.current_partners()
        assert len(partners) in (size_before, size_before + (1 if size_before == 0 else 0))
        assert node_id not in partners
