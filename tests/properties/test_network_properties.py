"""Property-based tests for the upload limiter and traffic accounting."""

from hypothesis import given, settings, strategies as st

from repro.network.bandwidth import BandwidthCap, UploadLimiter

message_sizes = st.lists(st.integers(min_value=1, max_value=20_000), min_size=1, max_size=60)
gaps = st.lists(st.floats(min_value=0.0, max_value=2.0, allow_nan=False), min_size=1, max_size=60)


class TestUploadLimiterProperties:
    @given(message_sizes, gaps, st.floats(min_value=50.0, max_value=5000.0))
    @settings(deadline=None)
    def test_finish_times_never_decrease(self, sizes, gaps_between, cap_kbps):
        limiter = UploadLimiter(BandwidthCap.from_kbps(cap_kbps, max_backlog_seconds=30.0))
        now = 0.0
        last_finish = 0.0
        for size, gap in zip(sizes, gaps_between):
            now += gap
            finish = limiter.enqueue(size, now)
            if finish is not None:
                assert finish >= now
                assert finish >= last_finish
                last_finish = finish

    @given(message_sizes, st.floats(min_value=50.0, max_value=5000.0))
    @settings(deadline=None)
    def test_backlog_never_exceeds_configured_capacity(self, sizes, cap_kbps):
        cap = BandwidthCap.from_kbps(cap_kbps, max_backlog_seconds=5.0)
        limiter = UploadLimiter(cap)
        for size in sizes:
            limiter.enqueue(size, now=0.0)
            assert limiter.backlog_seconds(0.0) <= cap.max_backlog_seconds + 1e-9

    @given(message_sizes, st.floats(min_value=50.0, max_value=5000.0))
    @settings(deadline=None)
    def test_accounting_is_conserved(self, sizes, cap_kbps):
        limiter = UploadLimiter(BandwidthCap.from_kbps(cap_kbps, max_backlog_seconds=2.0))
        for size in sizes:
            limiter.enqueue(size, now=0.0)
        assert limiter.bytes_accepted + limiter.bytes_dropped == sum(sizes)
        assert limiter.messages_accepted + limiter.messages_dropped == len(sizes)

    @given(message_sizes)
    @settings(deadline=None)
    def test_unlimited_cap_never_drops_or_delays(self, sizes):
        limiter = UploadLimiter(BandwidthCap.unlimited())
        for index, size in enumerate(sizes):
            finish = limiter.enqueue(size, now=float(index))
            assert finish == float(index)
        assert limiter.messages_dropped == 0

    @given(
        st.integers(min_value=1, max_value=1000),
        st.floats(min_value=50.0, max_value=5000.0),
        st.floats(min_value=0.5, max_value=20.0),
    )
    @settings(deadline=None)
    def test_serialization_time_matches_rate_exactly(self, size, cap_kbps, start):
        limiter = UploadLimiter(BandwidthCap.from_kbps(cap_kbps, max_backlog_seconds=100.0))
        finish = limiter.enqueue(size, now=start)
        expected = start + size * 8.0 / (cap_kbps * 1000.0)
        assert abs(finish - expected) < 1e-9
