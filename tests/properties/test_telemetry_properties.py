"""Telemetry purity as a property: armed recording never changes a run.

Every registered scenario is shrunk to test size and run twice — once bare,
once with metrics *and* tracing armed.  The two
:class:`~repro.sweep.summary.PointSummary` records must be equal field for
field: the telemetry layer rides the PR 4 observer edges, whose contract is
pure observation, so arming it may never perturb a result.  This is the
telemetry mirror of ``test_scenario_properties`` and the property the
``telemetry-overhead`` benchmark's identity gate enforces in CI.
"""

from hypothesis import given, settings, strategies as st

from repro.scenarios import available_scenarios, build_scenario
from repro.scenarios.builder import run_spec
from repro.sweep.summary import MetricsRequest, summarize
from repro.telemetry.config import TelemetryConfig

REQUEST = MetricsRequest(
    viewing_lags=(10.0, 20.0, float("inf")),
    window_lags=(20.0,),
    lag_cdf_grid=(0.0, 5.0, 10.0, 20.0),
    include_usage=True,
)

SMALL = {"num_nodes": 16}
PER_SCENARIO_OVERRIDES = {
    "large-session": {
        "num_nodes": 16,
        "stream": build_scenario("homogeneous").stream,
    },
    # Scalar here: this suite inspects a single TelemetrySnapshot, and a
    # sharded run returns one snapshot per shard (a tuple).
    "metropolis": {
        "num_nodes": 16,
        "stream": build_scenario("homogeneous").stream,
        "shards": None,
    },
}


def _small_spec(name, seed, telemetry=None):
    overrides = dict(PER_SCENARIO_OVERRIDES.get(name, SMALL))
    overrides["seed"] = seed
    overrides["telemetry"] = telemetry
    return build_scenario(name, **overrides)


def _summary_of(spec):
    result = run_spec(spec)
    return result, summarize(result, REQUEST, cell_id=spec.name, seed=spec.seed)


class TestTelemetryPurity:
    @settings(max_examples=8, deadline=None)
    @given(
        name=st.sampled_from(sorted(available_scenarios())),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_armed_telemetry_leaves_summary_identical(self, name, seed, tmp_path_factory):
        trace_dir = tmp_path_factory.mktemp("traces")
        bare_result, bare = _summary_of(_small_spec(name, seed))
        armed_spec = _small_spec(
            name,
            seed,
            telemetry=TelemetryConfig(
                metrics=True, trace_path=str(trace_dir / f"{name}-{seed}.jsonl")
            ),
        )
        armed_result, armed = _summary_of(armed_spec)
        assert bare == armed
        assert bare_result.events_processed == armed_result.events_processed
        # The armed run actually recorded something.
        snapshot = armed_result.telemetry
        assert snapshot is not None
        assert snapshot.trace_events > 0
        assert snapshot.metric("engine.events_dispatched") == float(
            armed_result.events_processed
        )

    def test_every_registered_scenario_accepts_telemetry(self):
        for name in available_scenarios():
            spec = _small_spec(name, seed=1, telemetry=TelemetryConfig(metrics=True))
            assert spec.telemetry is not None and spec.telemetry.armed
