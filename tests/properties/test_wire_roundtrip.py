"""Wire-format exactness: ``decode(encode(batch))`` is the identity.

The compact cross-shard encoding (:mod:`repro.shard.wire`) claims *exact*
reconstruction — same delivery floats, same ``Message`` field values, same
payload dataclasses — because the shard parity contract is byte-identity,
not approximation.  This suite drives the claim with hypothesis over every
protocol payload shape (PROPOSE / REQUEST / SERVE with and without payload
bytes / FEED_ME / bare ``None``) plus the pickle fallback for foreign
payload types, and checks the two batch-level guarantees the runner builds
on: pickling a :class:`~repro.shard.wire.WireBatch` is lossless, and
``merge_inbound`` reproduces the total order ``(deliver_time, sender,
seq)`` no matter how a window's traffic was split into batches.
"""

import pickle

from hypothesis import given, settings, strategies as st

from repro.core.messages import (
    FEED_ME,
    PROPOSE,
    REQUEST,
    SERVE,
    FeedMePayload,
    ProposePayload,
    RequestPayload,
    ServedPacket,
    ServePayload,
)
from repro.network.message import Message
from repro.shard.wire import (
    WireBatch,
    decode_batch,
    encode_batch,
    iter_headers,
    merge_inbound,
)

U32_MAX = 0xFFFFFFFF
node_ids = st.integers(min_value=0, max_value=U32_MAX)
sizes = st.integers(min_value=1, max_value=U32_MAX)
seqs = st.integers(min_value=0, max_value=U32_MAX)
times = st.floats(allow_nan=False)
packet_id_tuples = st.lists(node_ids, min_size=1, max_size=8).map(tuple)

payloads = st.one_of(
    st.none(),
    st.builds(ProposePayload, packet_ids=packet_id_tuples),
    st.builds(RequestPayload, packet_ids=packet_id_tuples),
    st.builds(
        ServePayload,
        st.builds(
            ServedPacket,
            packet_id=node_ids,
            size_bytes=sizes,
            payload=st.one_of(st.none(), st.binary(max_size=64)),
        ),
    ),
    st.builds(FeedMePayload, requester=node_ids),
    # Foreign payload types ride the pickle fallback; they must round-trip
    # exactly too (future protocols will introduce such messages).
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=3),
    st.lists(st.binary(max_size=8), max_size=3).map(tuple),
)

kinds = st.one_of(
    st.sampled_from((PROPOSE, REQUEST, SERVE, FEED_ME)),
    st.text(min_size=1, max_size=12),
)

messages = st.builds(
    Message,
    sender=node_ids,
    receiver=node_ids,
    kind=kinds,
    size_bytes=sizes,
    payload=payloads,
)


@st.composite
def routed_datagrams(draw):
    # The router invariant: the datagram's sender column is the message's
    # sender (it sets ``(deliver_time, message.sender, seq, message)``).
    message = draw(messages)
    return (draw(times), message.sender, draw(seqs), message)


batches = st.lists(routed_datagrams(), max_size=24)


class TestWireRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(batch=batches)
    def test_decode_encode_is_identity(self, batch):
        encoded = encode_batch(batch)
        assert len(encoded) == len(batch)
        assert decode_batch(encoded) == batch

    @settings(max_examples=50, deadline=None)
    @given(batch=batches)
    def test_pickled_wire_batch_is_lossless(self, batch):
        encoded = encode_batch(batch)
        shipped = pickle.loads(pickle.dumps(encoded, protocol=5))
        assert isinstance(shipped, WireBatch)
        assert shipped == encoded
        assert decode_batch(shipped) == batch

    @settings(max_examples=50, deadline=None)
    @given(batch=batches)
    def test_headers_match_without_decoding(self, batch):
        headers = list(iter_headers(encode_batch(batch)))
        assert headers == [
            (deliver_time, sender, seq, message.receiver)
            for deliver_time, sender, seq, message in batch
        ]

    @settings(max_examples=50, deadline=None)
    @given(batch=batches, cut=st.integers(min_value=0, max_value=24))
    def test_merge_inbound_restores_total_order_across_formats(self, batch, cut):
        # Split one window's traffic into a compact batch and a legacy one:
        # the merged result must equal the sorted whole — delivery order may
        # not depend on how the coordinator concatenated the batches.
        cut = min(cut, len(batch))
        pieces = [encode_batch(batch[:cut]), batch[cut:]]
        merged = merge_inbound(pieces)
        assert merged == sorted(batch, key=lambda datagram: datagram[:3])
