"""End-to-end builder determinism: same spec + seed ⇒ identical summary.

Every registered scenario is shrunk to a test-sized system (the scenario's
*shape* — protocol, network model, perturbation schedules — is untouched)
and run twice through two completely fresh builds.  The resulting
:class:`~repro.sweep.summary.PointSummary` records must be equal field for
field: this is the property the sweep layer, the result store and the
fuzzer's repro bundles all stand on.
"""

from hypothesis import given, settings, strategies as st

from repro.scenarios import available_scenarios, build_scenario
from repro.scenarios.builder import run_spec
from repro.sweep.summary import MetricsRequest, summarize

REQUEST = MetricsRequest(
    viewing_lags=(10.0, 20.0, float("inf")),
    window_lags=(20.0,),
    lag_cdf_grid=(0.0, 5.0, 10.0, 20.0),
    include_usage=True,
)

# Shrink every scenario to test size.  Only the system size (and, for the
# 1,000-node flagship, the stream length) is overridden: stream-derived
# churn/join instants stay valid because the stream itself is untouched for
# every scenario that carries a perturbation schedule.
SMALL = {"num_nodes": 16}
PER_SCENARIO_OVERRIDES = {
    "large-session": {
        "num_nodes": 16,
        "stream": build_scenario("homogeneous").stream,
    },
    # Shrunk like the flagship; metropolis keeps its shards so the property
    # also pins determinism of the sharded runner across fresh builds.
    "metropolis": {
        "num_nodes": 16,
        "stream": build_scenario("homogeneous").stream,
        "shards": 2,
    },
}


def _small_spec(name, seed):
    overrides = dict(PER_SCENARIO_OVERRIDES.get(name, SMALL))
    overrides["seed"] = seed
    return build_scenario(name, **overrides)


def _summary_of_fresh_run(spec):
    result = run_spec(spec)
    return summarize(result, REQUEST, cell_id=spec.name, seed=spec.seed)


class TestScenarioDeterminism:
    @settings(max_examples=12, deadline=None)
    @given(
        name=st.sampled_from(sorted(available_scenarios())),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_same_seed_same_summary_across_fresh_builds(self, name, seed):
        spec = _small_spec(name, seed)
        first = _summary_of_fresh_run(spec)
        second = _summary_of_fresh_run(spec)
        # PointSummary equality covers every extracted metric (viewing
        # curves, window completeness, lag CDF, sorted usage, delivery
        # ratio, event counts); wall_seconds is excluded by design.
        assert first == second
        assert first.events_processed == second.events_processed

    def test_different_seeds_actually_differ(self):
        """Guard against the trivial way the property above could pass:
        seeds being ignored entirely."""
        summary_a = _summary_of_fresh_run(_small_spec("homogeneous", seed=1))
        summary_b = _summary_of_fresh_run(_small_spec("homogeneous", seed=2))
        assert summary_a != summary_b


def test_every_registered_scenario_is_covered():
    """The sampled_from universe tracks the registry automatically; this
    pins that nothing new silently escapes the determinism property."""
    names = set(available_scenarios())
    assert {"homogeneous", "churn-window", "flash-crowd", "eager-push"} <= names
    for name in names:
        _small_spec(name, seed=1)  # every scenario shrinks cleanly
