"""Shard-count invariance: K shards ⇒ byte-identical PointSummary.

The sharded runner (:mod:`repro.shard`) claims *exact* equivalence with the
scalar session — not statistical closeness.  This suite runs every
registered scenario shrunk to test size with ``shards`` set, once through
the scalar :class:`~repro.core.session.StreamingSession` oracle and once
through :func:`~repro.shard.run_sharded` for each shard count in {1, 2, 4},
and asserts the resulting :class:`~repro.sweep.summary.PointSummary`
records are equal field for field (delivery log metrics, viewing curves,
lag CDF, usage, event counts).

The oracle has ``shards`` set too: setting the field arms the per-sender
transport RNG streams, which intentionally diverge from the historical
shared streams (``shards=None``); the contract is that once a config is
declared sharded, *how many* workers execute it can never change a bit of
the outcome.  This is the sharded mirror of
``tests/properties/test_backend_equivalence.py``.
"""

from dataclasses import replace

from hypothesis import given, settings, strategies as st

from repro.core.session import StreamingSession
from repro.scenarios import available_scenarios, build_scenario
from repro.scenarios.builder import SessionBuilder
from repro.shard import run_sharded
from repro.sweep.summary import MetricsRequest, summarize

REQUEST = MetricsRequest(
    viewing_lags=(10.0, 20.0, float("inf")),
    window_lags=(20.0,),
    lag_cdf_grid=(0.0, 5.0, 10.0, 20.0),
    include_usage=True,
)

SHARD_COUNTS = (1, 2, 4)

SMALL = {"num_nodes": 16}
PER_SCENARIO_OVERRIDES = {
    "large-session": {
        "num_nodes": 16,
        "stream": build_scenario("homogeneous").stream,
    },
    # Metropolis ships with shards=4 already; only its size needs shrinking
    # (the per-test shard counts below override the spec default anyway).
    "metropolis": {
        "num_nodes": 16,
        "stream": build_scenario("homogeneous").stream,
    },
}


def _small_config(name, seed, shards):
    overrides = dict(PER_SCENARIO_OVERRIDES.get(name, SMALL))
    overrides["seed"] = seed
    overrides["shards"] = shards
    spec = build_scenario(name, **overrides)
    return SessionBuilder.from_spec(spec).to_config()


def _summarized(result, config):
    return summarize(result, REQUEST, cell_id="shard-parity", seed=config.seed)


class TestShardEquivalence:
    @settings(max_examples=6, deadline=None)
    @given(
        name=st.sampled_from(sorted(available_scenarios())),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_every_shard_count_matches_scalar_oracle(self, name, seed):
        oracle_config = _small_config(name, seed, shards=1)
        oracle_result = StreamingSession(oracle_config).run()
        oracle = _summarized(oracle_result, oracle_config)
        for shards in SHARD_COUNTS:
            config = _small_config(name, seed, shards=shards)
            result = run_sharded(config)
            sharded = _summarized(result, config)
            # PointSummary equality covers every extracted metric;
            # wall_seconds is excluded from comparison by design.
            assert sharded == oracle, f"{name} diverged at {shards} shards"
            assert result.events_processed == oracle_result.events_processed
            assert result.end_time == oracle_result.end_time
            assert result.failed_nodes == oracle_result.failed_nodes
            assert result.late_joiners == oracle_result.late_joiners

    def test_scalar_oracle_is_shard_count_agnostic(self):
        """The scalar path only cares *that* shards is set, never the count."""
        one = StreamingSession(_small_config("homogeneous", seed=3, shards=1)).run()
        four = StreamingSession(_small_config("homogeneous", seed=3, shards=4)).run()
        config = _small_config("homogeneous", seed=3, shards=1)
        assert _summarized(one, config) == _summarized(four, config)

    def test_process_mode_matches_thread_mode(self):
        config = _small_config("homogeneous", seed=5, shards=2)
        thread = run_sharded(config, mode="thread")
        process = run_sharded(config, mode="process")
        assert _summarized(thread, config) == _summarized(process, config)
        assert thread.events_processed == process.events_processed

    def test_empty_shards_still_reach_parity(self):
        """More shards than hash buckets in use: some workers own no nodes."""
        from repro.shard.partition import partition_nodes

        spec = build_scenario("homogeneous", num_nodes=2, seed=1, shards=4)
        config = SessionBuilder.from_spec(spec).to_config()
        assert any(not group for group in partition_nodes(config.num_nodes, 4))
        oracle = StreamingSession(replace(config, shards=4)).run()
        sharded = run_sharded(config)
        assert _summarized(sharded, config) == _summarized(oracle, config)

    def test_every_registered_scenario_is_exercised(self):
        names = set(available_scenarios())
        assert {"homogeneous", "churn-window", "flash-crowd", "metropolis"} <= names
        for name in names:
            for shards in SHARD_COUNTS:
                _small_config(name, seed=1, shards=shards)  # shrinks cleanly
