"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings, strategies as st

from repro.simulation.engine import Simulator
from repro.simulation.event_queue import EventQueue


class TestEventQueueProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=100))
    def test_events_always_pop_in_nondecreasing_time_order(self, times):
        queue = EventQueue()
        for time in times:
            queue.push(time, lambda: None)
        popped = []
        while True:
            event = queue.pop()
            if event is None:
                break
            popped.append(event.time)
        assert popped == sorted(popped)
        assert len(popped) == len(times)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1, max_size=50),
        st.data(),
    )
    def test_cancellation_never_loses_other_events(self, times, data):
        queue = EventQueue()
        handles = [queue.push(time, lambda: None) for time in times]
        to_cancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(times) - 1), max_size=len(times))
        )
        for index in to_cancel:
            handles[index].cancel()
        surviving = 0
        while queue.pop() is not None:
            surviving += 1
        assert surviving == len(times) - len(to_cancel)


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=50))
    @settings(deadline=None)
    def test_clock_is_monotone_across_any_schedule(self, delays):
        simulator = Simulator(seed=1)
        observed = []
        for delay in delays:
            simulator.schedule(delay, lambda: observed.append(simulator.now))
        simulator.run_until_idle()
        assert observed == sorted(observed)

    @given(st.integers(min_value=0, max_value=2**32), st.text(min_size=1, max_size=20))
    def test_named_streams_reproducible(self, seed, name):
        first = Simulator(seed=seed).rng.stream(name).random()
        second = Simulator(seed=seed).rng.stream(name).random()
        assert first == second
