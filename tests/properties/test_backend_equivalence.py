"""Backend equivalence: numpy fast path ⇒ byte-identical PointSummary.

The batched backend (and the numpy kernels it enables) claims *exact*
equivalence with the pure-python oracle — not statistical closeness.  This
suite runs every registered scenario under ``REPRO_BACKEND=python`` and
``REPRO_BACKEND=numpy`` through completely fresh builds and asserts the
resulting :class:`~repro.sweep.summary.PointSummary` records are equal field
for field (delivery log metrics, viewing curves, lag CDF, usage, event
counts).  On interpreters without numpy the ``numpy`` request degrades to
``python`` by design, so the property still holds (trivially) on the
no-numpy CI leg.
"""

import os
from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.scenarios import available_scenarios, build_scenario
from repro.scenarios.builder import run_spec
from repro.simulation import BACKEND_ENV
from repro.sweep.summary import MetricsRequest, summarize

REQUEST = MetricsRequest(
    viewing_lags=(10.0, 20.0, float("inf")),
    window_lags=(20.0,),
    lag_cdf_grid=(0.0, 5.0, 10.0, 20.0),
    include_usage=True,
)

SMALL = {"num_nodes": 16}
PER_SCENARIO_OVERRIDES = {
    "large-session": {
        "num_nodes": 16,
        "stream": build_scenario("homogeneous").stream,
    },
    # The sharded runner installs its own dispatch backend, which would
    # bypass the $REPRO_BACKEND request this suite is about; run the
    # metropolis geometry scalar here (sharded parity has its own suite,
    # tests/properties/test_shard_equivalence.py).
    "metropolis": {
        "num_nodes": 16,
        "stream": build_scenario("homogeneous").stream,
        "shards": None,
    },
}


@contextmanager
def forced_backend(name):
    previous = os.environ.get(BACKEND_ENV)
    os.environ[BACKEND_ENV] = name
    try:
        yield
    finally:
        if previous is None:
            del os.environ[BACKEND_ENV]
        else:
            os.environ[BACKEND_ENV] = previous


def _small_spec(name, seed):
    overrides = dict(PER_SCENARIO_OVERRIDES.get(name, SMALL))
    overrides["seed"] = seed
    return build_scenario(name, **overrides)


def _summary_under_backend(spec, backend_name):
    with forced_backend(backend_name):
        result = run_spec(spec)
    return summarize(result, REQUEST, cell_id=spec.name, seed=spec.seed)


class TestBackendEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        name=st.sampled_from(sorted(available_scenarios())),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_numpy_backend_matches_python_oracle(self, name, seed):
        spec = _small_spec(name, seed)
        oracle = _summary_under_backend(spec, "python")
        fast = _summary_under_backend(spec, "numpy")
        # PointSummary equality covers every extracted metric; wall_seconds
        # is excluded from comparison by design.
        assert fast == oracle
        assert fast.events_processed == oracle.events_processed

    def test_every_registered_scenario_is_exercised(self):
        names = set(available_scenarios())
        assert {"homogeneous", "churn-window", "flash-crowd", "eager-push"} <= names
        for name in names:
            _small_spec(name, seed=1)  # every scenario shrinks cleanly
