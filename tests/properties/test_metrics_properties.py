"""Property-based tests for the quality analyzer's invariants."""

from hypothesis import given, settings, strategies as st

from repro.metrics.delivery import DeliveryLog
from repro.metrics.quality import OFFLINE_LAG, StreamQualityAnalyzer
from repro.streaming.schedule import StreamConfig, StreamSchedule


@st.composite
def random_delivery_scenario(draw):
    """A small random stream plus a random partial delivery log for 3 nodes."""
    source_packets = draw(st.integers(min_value=2, max_value=8))
    fec_packets = draw(st.integers(min_value=0, max_value=2))
    num_windows = draw(st.integers(min_value=1, max_value=5))
    schedule = StreamSchedule(
        StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=source_packets,
            fec_packets_per_window=fec_packets,
            num_windows=num_windows,
        )
    )
    log = DeliveryLog()
    nodes = [1, 2, 3]
    for node in nodes:
        for packet in schedule.packets():
            delivered = draw(st.booleans())
            if delivered:
                extra_delay = draw(st.floats(min_value=0.0, max_value=60.0, allow_nan=False))
                log.record(node, packet.packet_id, packet.publish_time + extra_delay)
    return schedule, log, nodes


class TestQualityAnalyzerProperties:
    @given(random_delivery_scenario(), st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=50, deadline=None)
    def test_jitter_is_a_valid_fraction(self, scenario, lag):
        schedule, log, nodes = scenario
        analyzer = StreamQualityAnalyzer(schedule, log, nodes)
        for node in nodes:
            assert 0.0 <= analyzer.node_jitter(node, lag) <= 1.0

    @given(random_delivery_scenario(), st.floats(min_value=0.0, max_value=50.0), st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=50, deadline=None)
    def test_jitter_never_increases_with_longer_lag(self, scenario, lag_a, lag_b):
        schedule, log, nodes = scenario
        analyzer = StreamQualityAnalyzer(schedule, log, nodes)
        shorter, longer = sorted((lag_a, lag_b))
        for node in nodes:
            assert analyzer.node_jitter(node, longer) <= analyzer.node_jitter(node, shorter) + 1e-12

    @given(random_delivery_scenario())
    @settings(max_examples=50, deadline=None)
    def test_offline_viewing_is_best_case(self, scenario):
        schedule, log, nodes = scenario
        analyzer = StreamQualityAnalyzer(schedule, log, nodes)
        for node in nodes:
            offline = analyzer.node_jitter(node, OFFLINE_LAG)
            assert offline <= analyzer.node_jitter(node, 10.0) + 1e-12

    @given(random_delivery_scenario())
    @settings(max_examples=50, deadline=None)
    def test_critical_lag_consistent_with_viewing(self, scenario):
        schedule, log, nodes = scenario
        analyzer = StreamQualityAnalyzer(schedule, log, nodes)
        for node in nodes:
            critical = analyzer.node_critical_lag(node)
            if critical != OFFLINE_LAG and critical != float("inf"):
                assert analyzer.node_views_stream(node, critical)

    @given(random_delivery_scenario())
    @settings(max_examples=50, deadline=None)
    def test_lag_cdf_is_monotone(self, scenario):
        schedule, log, nodes = scenario
        analyzer = StreamQualityAnalyzer(schedule, log, nodes)
        grid = [0.0, 1.0, 5.0, 20.0, 100.0]
        cdf = analyzer.lag_cdf(grid)
        assert all(later >= earlier for earlier, later in zip(cdf, cdf[1:]))
        assert all(0.0 <= value <= 1.0 for value in cdf)

    @given(random_delivery_scenario())
    @settings(max_examples=30, deadline=None)
    def test_viewing_ratio_matches_per_node_checks(self, scenario):
        schedule, log, nodes = scenario
        analyzer = StreamQualityAnalyzer(schedule, log, nodes)
        lag = 20.0
        expected = sum(analyzer.node_views_stream(node, lag) for node in nodes) / len(nodes)
        assert analyzer.viewing_ratio(lag) == expected
