"""Property-based tests: the erasure code recovers from any tolerable loss."""

import random

from hypothesis import given, settings, strategies as st

from repro.streaming.fec import ReedSolomonCode


@st.composite
def code_and_data(draw):
    """A small RS code plus random data shards and a random erasure pattern."""
    data_shards = draw(st.integers(min_value=1, max_value=8))
    parity_shards = draw(st.integers(min_value=0, max_value=4))
    shard_length = draw(st.integers(min_value=1, max_value=24))
    data = [
        bytes(draw(st.lists(st.integers(0, 255), min_size=shard_length, max_size=shard_length)))
        for _ in range(data_shards)
    ]
    erasure_count = draw(st.integers(min_value=0, max_value=parity_shards))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return data_shards, parity_shards, data, erasure_count, seed


class TestErasureRecovery:
    @given(code_and_data())
    @settings(max_examples=60, deadline=None)
    def test_decoding_recovers_data_after_tolerable_erasures(self, example):
        data_shards, parity_shards, data, erasure_count, seed = example
        code = ReedSolomonCode(data_shards, parity_shards)
        codeword = code.encode_window(data)
        erased = set(random.Random(seed).sample(range(len(codeword)), erasure_count))
        received = {i: shard for i, shard in enumerate(codeword) if i not in erased}
        assert code.decode(received) == data

    @given(code_and_data())
    @settings(max_examples=40, deadline=None)
    def test_parity_shards_have_data_shard_length(self, example):
        data_shards, parity_shards, data, __, ___ = example
        code = ReedSolomonCode(data_shards, parity_shards)
        parity = code.encode(data)
        assert len(parity) == parity_shards
        assert all(len(shard) == len(data[0]) for shard in parity)

    @given(code_and_data())
    @settings(max_examples=40, deadline=None)
    def test_encoding_is_deterministic(self, example):
        data_shards, parity_shards, data, __, ___ = example
        first = ReedSolomonCode(data_shards, parity_shards).encode(data)
        second = ReedSolomonCode(data_shards, parity_shards).encode(data)
        assert first == second

    @given(code_and_data())
    @settings(max_examples=40, deadline=None)
    def test_reconstruct_all_reproduces_codeword(self, example):
        data_shards, parity_shards, data, erasure_count, seed = example
        code = ReedSolomonCode(data_shards, parity_shards)
        codeword = code.encode_window(data)
        erased = set(random.Random(seed).sample(range(len(codeword)), erasure_count))
        received = {i: shard for i, shard in enumerate(codeword) if i not in erased}
        assert code.reconstruct_all(received) == codeword
