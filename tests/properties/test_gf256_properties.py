"""Property-based tests: GF(256) satisfies the field axioms."""

from hypothesis import given, strategies as st

from repro.streaming import gf256

field_element = st.integers(min_value=0, max_value=255)
nonzero_element = st.integers(min_value=1, max_value=255)


class TestAdditionProperties:
    @given(field_element, field_element)
    def test_addition_commutative(self, a, b):
        assert gf256.add(a, b) == gf256.add(b, a)

    @given(field_element, field_element, field_element)
    def test_addition_associative(self, a, b, c):
        assert gf256.add(gf256.add(a, b), c) == gf256.add(a, gf256.add(b, c))

    @given(field_element)
    def test_zero_is_additive_identity(self, a):
        assert gf256.add(a, 0) == a

    @given(field_element)
    def test_every_element_is_its_own_additive_inverse(self, a):
        assert gf256.add(a, a) == 0


class TestMultiplicationProperties:
    @given(field_element, field_element)
    def test_multiplication_commutative(self, a, b):
        assert gf256.multiply(a, b) == gf256.multiply(b, a)

    @given(field_element, field_element, field_element)
    def test_multiplication_associative(self, a, b, c):
        assert gf256.multiply(gf256.multiply(a, b), c) == gf256.multiply(a, gf256.multiply(b, c))

    @given(field_element)
    def test_one_is_multiplicative_identity(self, a):
        assert gf256.multiply(a, 1) == a

    @given(field_element, field_element, field_element)
    def test_distributivity(self, a, b, c):
        left = gf256.multiply(a, gf256.add(b, c))
        right = gf256.add(gf256.multiply(a, b), gf256.multiply(a, c))
        assert left == right

    @given(nonzero_element)
    def test_inverse_property(self, a):
        assert gf256.multiply(a, gf256.inverse(a)) == 1

    @given(field_element, nonzero_element)
    def test_division_is_multiplication_by_inverse(self, a, b):
        assert gf256.divide(a, b) == gf256.multiply(a, gf256.inverse(b))

    @given(field_element, nonzero_element)
    def test_product_stays_in_field(self, a, b):
        assert 0 <= gf256.multiply(a, b) <= 255

    @given(nonzero_element, nonzero_element)
    def test_no_zero_divisors(self, a, b):
        assert gf256.multiply(a, b) != 0
