"""Unit tests for the gossip configuration and message size model."""

import math

import pytest

from repro.core.config import GossipConfig, MessageSizeModel
from repro.membership.partners import INFINITE


class TestMessageSizeModel:
    def test_propose_and_request_sizes_grow_with_ids(self):
        sizes = MessageSizeModel(header_bytes=40, id_bytes=8)
        assert sizes.propose_size(0) == 40
        assert sizes.propose_size(10) == 120
        assert sizes.request_size(3) == 64

    def test_serve_size_includes_payload_and_overhead(self):
        sizes = MessageSizeModel(header_bytes=40, per_packet_overhead_bytes=16)
        assert sizes.serve_size(1000) == 1056

    def test_feed_me_size_is_header_only(self):
        assert MessageSizeModel(header_bytes=40).feed_me_size() == 40

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MessageSizeModel(header_bytes=0)


class TestGossipConfig:
    def test_paper_baseline(self):
        config = GossipConfig.paper_baseline()
        assert config.fanout == 7
        assert config.gossip_period == pytest.approx(0.2)
        assert config.refresh_every == 1
        assert config.feed_me_every == INFINITE
        assert config.source_fanout == 7

    def test_with_fanout_returns_modified_copy(self):
        base = GossipConfig()
        changed = base.with_fanout(20)
        assert changed.fanout == 20
        assert base.fanout == 7
        assert changed.gossip_period == base.gossip_period

    def test_with_refresh_and_feedme(self):
        config = GossipConfig().with_refresh_every(INFINITE).with_feed_me_every(5)
        assert config.refresh_every == INFINITE
        assert config.feed_me_every == 5

    def test_retransmission_enabled_flag(self):
        assert GossipConfig(max_request_attempts=2).retransmission_enabled
        assert not GossipConfig(max_request_attempts=1).retransmission_enabled

    def test_theoretical_minimum_fanout(self):
        assert GossipConfig.theoretical_minimum_fanout(230) == pytest.approx(math.log(230))
        with pytest.raises(ValueError):
            GossipConfig.theoretical_minimum_fanout(1)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            GossipConfig(fanout=0)
        with pytest.raises(ValueError):
            GossipConfig(gossip_period=0.0)
        with pytest.raises(ValueError):
            GossipConfig(refresh_every=0)
        with pytest.raises(ValueError):
            GossipConfig(refresh_every=1.5)
        with pytest.raises(ValueError):
            GossipConfig(feed_me_every=-2)
        with pytest.raises(ValueError):
            GossipConfig(retransmit_timeout=0.0)
        with pytest.raises(ValueError):
            GossipConfig(max_request_attempts=0)
        with pytest.raises(ValueError):
            GossipConfig(source_fanout=0)
