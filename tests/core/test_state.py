"""Unit tests for per-node protocol state."""

from repro.core.state import NodeState, PendingRequest


class TestDelivery:
    def test_deliver_records_time(self):
        state = NodeState()
        assert state.deliver(1, 2.5)
        assert state.has_delivered(1)
        assert state.delivery_time(1) == 2.5
        assert state.delivered_count == 1

    def test_duplicate_delivery_is_rejected(self):
        state = NodeState()
        state.deliver(1, 2.5)
        assert not state.deliver(1, 3.5)
        assert state.delivery_time(1) == 2.5

    def test_delivery_time_of_unknown_packet(self):
        assert NodeState().delivery_time(9) is None

    def test_delivered_set_snapshot(self):
        state = NodeState()
        state.deliver(1, 0.1)
        state.deliver(2, 0.2)
        snapshot = state.delivered_set()
        assert snapshot == {1, 2}
        snapshot.add(3)
        assert not state.has_delivered(3)


class TestProposalQueue:
    def test_drain_returns_and_clears(self):
        state = NodeState()
        state.queue_for_proposal(1)
        state.queue_for_proposal(2)
        assert state.drain_proposals() == [1, 2]
        assert state.drain_proposals() == []

    def test_infect_and_die_semantics(self):
        """Each delivered packet is proposed in exactly one round."""
        state = NodeState()
        state.deliver(7, 0.0)
        state.queue_for_proposal(7)
        first_round = state.drain_proposals()
        second_round = state.drain_proposals()
        assert first_round == [7]
        assert second_round == []


class TestRequestBookkeeping:
    def test_never_requested_initially(self):
        state = NodeState()
        assert state.never_requested(5)
        assert state.times_requested(5) == 0

    def test_record_request_increments(self):
        state = NodeState()
        state.record_request(5)
        state.record_request(5)
        assert state.times_requested(5) == 2
        assert not state.never_requested(5)

    def test_may_request_again_respects_limit(self):
        state = NodeState()
        state.record_request(5)
        assert state.may_request_again(5, max_attempts=2)
        state.record_request(5)
        assert not state.may_request_again(5, max_attempts=2)

    def test_missing_from(self):
        state = NodeState()
        state.deliver(1, 0.0)
        state.deliver(3, 0.0)
        assert state.missing_from((1, 2, 3, 4)) == [2, 4]


class TestPendingRequests:
    def test_add_and_remove(self):
        state = NodeState()
        pending = PendingRequest(proposer=3, packet_ids=(1, 2))
        state.add_pending(pending)
        assert pending in state.pending_requests
        state.remove_pending(pending)
        assert pending not in state.pending_requests

    def test_remove_unknown_pending_is_noop(self):
        state = NodeState()
        state.remove_pending(PendingRequest(proposer=3, packet_ids=(1,)))

    def test_cancel_all_pending_disarms_timers(self, simulator):
        from repro.simulation.timers import Timer

        state = NodeState()
        fired = []
        for index in range(3):
            pending = PendingRequest(proposer=index, packet_ids=(index,))
            timer = Timer(simulator, lambda: fired.append(1))
            timer.arm(1.0)
            pending.timer = timer
            state.add_pending(pending)
        state.cancel_all_pending()
        simulator.run_until_idle()
        assert fired == []
        assert state.pending_requests == []
