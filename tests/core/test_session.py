"""Integration tests for the streaming session (full system wiring)."""

import pytest

from repro.core.session import SessionConfig, StreamingSession, run_session
from repro.membership.churn import CatastrophicChurn
from repro.membership.partners import INFINITE

from tests.conftest import small_session_config


class TestSessionConfig:
    def test_source_is_node_zero(self):
        config = small_session_config()
        assert config.source_id == 0
        assert 0 not in config.receiver_ids()
        assert len(config.receiver_ids()) == config.num_nodes - 1

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig(num_nodes=1)

    def test_negative_extra_time_rejected(self):
        with pytest.raises(ValueError):
            small_session_config().__class__(num_nodes=5, extra_time=-1.0)


class TestHealthySession:
    def test_every_receiver_gets_nearly_all_packets(self, healthy_session_result):
        result = healthy_session_result
        assert result.delivery_ratio() > 0.98

    def test_most_nodes_view_the_stream(self, healthy_session_result):
        assert healthy_session_result.viewing_percentage() >= 90.0
        assert healthy_session_result.viewing_percentage(lag=20.0) >= 90.0

    def test_no_failures_without_churn(self, healthy_session_result):
        assert healthy_session_result.failed_nodes == []
        assert set(healthy_session_result.survivors()) == set(
            healthy_session_result.receivers()
        )

    def test_source_delivers_everything_to_itself(self, healthy_session_result):
        result = healthy_session_result
        source_deliveries = result.deliveries.packets_delivered(result.source_id)
        assert source_deliveries == result.schedule.num_packets

    def test_upload_usage_accounts_for_one_stream_copy_per_receiver(self, healthy_session_result):
        result = healthy_session_result
        usage = result.bandwidth_usage()
        # Every receiver downloads one copy of the stream, and all of it is
        # served by peers, so total upload ≈ (receivers × stream bytes) plus
        # protocol overhead, averaged over the whole run.
        stream_bits = (
            result.schedule.num_packets * result.schedule.config.payload_bytes * 8.0
        )
        expected_mean_kbps = stream_bits / result.end_time / 1000.0
        assert expected_mean_kbps * 0.8 < usage.mean_kbps() < expected_mean_kbps * 1.5

    def test_no_receiver_exceeds_its_upload_cap(self, healthy_session_result):
        result = healthy_session_result
        cap = result.config.network.upload_cap_kbps
        usage = result.bandwidth_usage()
        # Usage is averaged over the full run, so the byte-accurate limiter
        # keeps every node at or below its cap (up to one in-flight backlog).
        assert usage.max_kbps() <= cap * 1.05

    def test_node_stats_are_consistent(self, healthy_session_result):
        result = healthy_session_result
        total_serves = sum(stats.packets_served for stats in result.node_stats.values())
        total_deliveries = result.deliveries.total_deliveries
        receivers = len(result.receivers())
        # Every receiver delivery except those at the source itself came from a serve.
        assert total_serves >= total_deliveries - result.schedule.num_packets
        assert total_deliveries <= result.schedule.num_packets * (receivers + 1)

    def test_events_processed_recorded(self, healthy_session_result):
        assert healthy_session_result.events_processed > 1000


class TestDeterminism:
    def test_same_config_same_seed_is_bitwise_identical(self):
        config = small_session_config(num_nodes=15, num_windows=6, seed=11)
        first = StreamingSession(config).run()
        second = StreamingSession(config).run()
        assert first.deliveries.total_deliveries == second.deliveries.total_deliveries
        assert first.events_processed == second.events_processed
        assert first.deliveries.raw() == second.deliveries.raw()

    def test_different_seed_changes_outcome(self):
        first = StreamingSession(small_session_config(num_nodes=15, num_windows=6, seed=1)).run()
        second = StreamingSession(small_session_config(num_nodes=15, num_windows=6, seed=2)).run()
        assert first.deliveries.raw() != second.deliveries.raw()


class TestChurnSession:
    def test_churn_fails_requested_fraction(self):
        config = small_session_config(
            num_nodes=20, num_windows=10, churn=CatastrophicChurn(time=3.0, fraction=0.3)
        )
        result = run_session(config)
        # 30% of the 19 non-source nodes, rounded.
        assert len(result.failed_nodes) == 6
        assert result.source_id not in result.failed_nodes
        assert set(result.survivors()).isdisjoint(result.failed_nodes)

    def test_survivors_keep_receiving_with_dynamic_views(self):
        config = small_session_config(
            num_nodes=20, num_windows=12, churn=CatastrophicChurn(time=3.0, fraction=0.3)
        )
        result = run_session(config)
        quality = result.quality()
        assert result.average_complete_windows_percentage(20.0) > 80.0
        assert quality.nodes == result.survivors()

    def test_static_views_suffer_more_from_churn(self):
        """The paper's central proactiveness claim, at small scale.

        A fully static mesh (X = infinity) both concentrates load and keeps
        pointing at crashed nodes, so after a 50 % catastrophic failure it
        delivers clearly less of the stream than the fully dynamic X = 1.
        """
        common = dict(
            num_nodes=30,
            fanout=5,
            num_windows=25,
            churn=CatastrophicChurn(time=3.0, fraction=0.5),
            seed=6,
        )
        dynamic = run_session(small_session_config(refresh_every=1, **common))
        static = run_session(small_session_config(refresh_every=INFINITE, **common))
        # At this small test scale the playout-lag metrics are noisy; the
        # robust consequence of a static mesh is that a chunk of the stream
        # never reaches some survivors at all.  The full-scale comparison is
        # exercised in tests/experiments/test_paper_claims.py.
        assert dynamic.delivery_ratio() > static.delivery_ratio() + 0.03


class TestSessionLifecycle:
    def test_build_twice_rejected(self):
        session = StreamingSession(small_session_config(num_nodes=5, num_windows=2))
        session.build()
        with pytest.raises(RuntimeError):
            session.build()

    def test_run_builds_automatically(self):
        result = run_session(small_session_config(num_nodes=5, num_windows=2))
        assert result.schedule.num_windows == 2
