"""Unit tests for the gossip node engine (Algorithm 1)."""

import pytest

from repro.core.config import GossipConfig
from repro.core.messages import FEED_ME, PROPOSE, REQUEST, SERVE, FeedMePayload
from repro.core.node import GossipNode
from repro.membership.directory import MembershipDirectory
from repro.membership.partners import INFINITE
from repro.network.latency import ConstantLatency
from repro.network.loss import LossModel
from repro.network.message import Message
from repro.network.transport import Network
from repro.simulation.engine import Simulator
from repro.streaming.schedule import StreamConfig, StreamSchedule


class ScriptedLoss(LossModel):
    """Loses the first ``count`` messages of the given kind, then nothing."""

    def __init__(self, kind: str, count: int) -> None:
        self.kind = kind
        self.remaining = count

    def is_lost(self, message: Message) -> bool:
        if message.kind == self.kind and self.remaining > 0:
            self.remaining -= 1
            return True
        return False


class Harness:
    """A tiny fully-wired system for protocol-level tests."""

    def __init__(self, num_nodes=5, loss_model=None, **config_overrides):
        defaults = dict(
            fanout=2,
            gossip_period=0.2,
            refresh_every=1,
            retransmit_timeout=0.5,
            max_request_attempts=2,
            source_fanout=2,
            desynchronize_rounds=False,
        )
        defaults.update(config_overrides)
        self.config = GossipConfig(**defaults)
        self.simulator = Simulator(seed=3)
        self.schedule = StreamSchedule(
            StreamConfig(
                rate_kbps=600.0,
                payload_bytes=1000,
                source_packets_per_window=5,
                fec_packets_per_window=1,
                num_windows=2,
            )
        )
        self.directory = MembershipDirectory(detection_delay=1.0)
        self.directory.add_all(range(num_nodes))
        self.network = Network(
            self.simulator, latency_model=ConstantLatency(0.01), loss_model=loss_model
        )
        self.deliveries = []
        self.nodes = {}
        for node_id in range(num_nodes):
            node = GossipNode(
                node_id=node_id,
                simulator=self.simulator,
                network=self.network,
                directory=self.directory,
                schedule=self.schedule,
                config=self.config,
                delivery_listener=lambda n, p, t: self.deliveries.append((n, p, t)),
                is_source=(node_id == 0),
            )
            self.nodes[node_id] = node
            self.network.register(node_id, node.on_message)

    def start_all(self):
        for node in self.nodes.values():
            node.start()


class TestSourcePublish:
    def test_publish_delivers_locally_and_proposes(self):
        harness = Harness()
        source = harness.nodes[0]
        source.publish(harness.schedule.packet(0))
        assert source.state.has_delivered(0)
        assert source.stats.proposes_sent == harness.config.source_fanout
        assert (0, 0, 0.0) in harness.deliveries

    def test_publish_targets_follow_refresh_policy(self):
        harness = Harness(num_nodes=10, refresh_every=INFINITE, source_fanout=3)
        source = harness.nodes[0]
        source.publish(harness.schedule.packet(0))
        first_targets = set(source._source_targets)
        # Publish many more packets: with X = infinity the target set never changes.
        for packet_id in range(1, 8):
            source.publish(harness.schedule.packet(packet_id))
        assert set(source._source_targets) == first_targets

    def test_dead_source_does_not_publish(self):
        harness = Harness()
        source = harness.nodes[0]
        source.fail()
        source.publish(harness.schedule.packet(0))
        assert not source.state.has_delivered(0)


class TestThreePhaseExchange:
    def test_propose_request_serve_delivers_packet(self):
        harness = Harness()
        source = harness.nodes[0]
        source.publish(harness.schedule.packet(0))
        harness.simulator.run_until_idle()
        receivers_with_packet = [
            node_id
            for node_id, node in harness.nodes.items()
            if node_id != 0 and node.state.has_delivered(0)
        ]
        assert len(receivers_with_packet) == harness.config.source_fanout

    def test_full_dissemination_with_gossip_rounds(self):
        harness = Harness(num_nodes=8, fanout=3)
        harness.start_all()
        source = harness.nodes[0]
        source.publish(harness.schedule.packet(0))
        harness.simulator.run(until=5.0)
        delivered = [n for n, node in harness.nodes.items() if node.state.has_delivered(0)]
        assert len(delivered) == 8

    def test_duplicate_proposal_not_requested_twice(self):
        harness = Harness(num_nodes=4)
        node = harness.nodes[1]
        # Two different proposers advertise the same packet id.
        node.on_message(Message(2, 1, PROPOSE, 48, harness_propose((5,))))
        node.on_message(Message(3, 1, PROPOSE, 48, harness_propose((5,))))
        assert node.stats.requests_sent == 1
        assert node.state.times_requested(5) == 1

    def test_request_is_served_only_for_held_packets(self):
        harness = Harness()
        holder = harness.nodes[1]
        holder.state.deliver(3, 0.0)
        from repro.core.messages import RequestPayload

        holder.on_message(Message(2, 1, REQUEST, 56, RequestPayload(packet_ids=(3, 4))))
        assert holder.stats.serves_sent == 1
        assert holder.stats.packets_served == 1

    def test_served_packet_queued_for_next_proposal(self):
        harness = Harness()
        node = harness.nodes[1]
        from repro.core.messages import ServePayload, ServedPacket

        node.on_message(
            Message(2, 1, SERVE, 1056, ServePayload(ServedPacket(packet_id=7, size_bytes=1000)))
        )
        assert node.state.has_delivered(7)
        assert 7 in node.state.events_to_propose

    def test_duplicate_serve_counted_not_redelivered(self):
        harness = Harness()
        node = harness.nodes[1]
        from repro.core.messages import ServePayload, ServedPacket

        serve = Message(2, 1, SERVE, 1056, ServePayload(ServedPacket(packet_id=7, size_bytes=1000)))
        node.on_message(serve)
        node.on_message(serve)
        assert node.stats.duplicate_serves_received == 1
        assert sum(1 for (n, p, _) in harness.deliveries if n == 1 and p == 7) == 1


class TestInfectAndDie:
    def test_packet_proposed_in_exactly_one_round(self):
        harness = Harness(num_nodes=6, fanout=2)
        node = harness.nodes[1]
        node.start()
        from repro.core.messages import ServePayload, ServedPacket

        node.on_message(
            Message(2, 1, SERVE, 1056, ServePayload(ServedPacket(packet_id=3, size_bytes=1000)))
        )
        harness.simulator.run(until=1.0)
        proposes_after_first_round = node.stats.proposes_sent
        harness.simulator.run(until=3.0)
        assert proposes_after_first_round == harness.config.fanout
        assert node.stats.proposes_sent == proposes_after_first_round

    def test_no_proposal_sent_when_nothing_to_propose(self):
        harness = Harness(num_nodes=4)
        node = harness.nodes[1]
        node.start()
        harness.simulator.run(until=2.0)
        assert node.stats.proposes_sent == 0
        assert node.stats.gossip_rounds >= 9


class TestRetransmission:
    def test_lost_serve_is_recovered_by_retry(self):
        harness = Harness(num_nodes=3, loss_model=ScriptedLoss(SERVE, 1))
        source = harness.nodes[0]
        source.publish(harness.schedule.packet(0))
        harness.simulator.run(until=3.0)
        requesters = [n for n, node in harness.nodes.items() if n != 0 and node.state.has_delivered(0)]
        assert len(requesters) == harness.config.source_fanout
        total_retries = sum(node.stats.retransmission_requests_sent for node in harness.nodes.values())
        assert total_retries >= 1

    def test_retries_bounded_by_max_attempts(self):
        harness = Harness(num_nodes=3, loss_model=ScriptedLoss(SERVE, 10_000), max_request_attempts=3)
        source = harness.nodes[0]
        source.publish(harness.schedule.packet(0))
        harness.simulator.run(until=20.0)
        for node_id, node in harness.nodes.items():
            if node_id == 0:
                continue
            assert node.state.times_requested(0) <= 3
            assert not node.state.has_delivered(0)

    def test_no_retransmission_when_disabled(self):
        harness = Harness(num_nodes=3, loss_model=ScriptedLoss(SERVE, 10_000), max_request_attempts=1)
        source = harness.nodes[0]
        source.publish(harness.schedule.packet(0))
        harness.simulator.run(until=10.0)
        total_retries = sum(node.stats.retransmission_requests_sent for node in harness.nodes.values())
        assert total_retries == 0
        for node_id, node in harness.nodes.items():
            if node_id != 0:
                assert node.state.times_requested(0) <= 1


class TestFeedMe:
    def test_feed_me_inserts_requester_into_view(self):
        harness = Harness(num_nodes=10, refresh_every=INFINITE)
        node = harness.nodes[1]
        node.partners.partners_for_round(0.0)
        before = set(node.partners.current_partners())
        outsider = next(n for n in range(2, 10) if n not in before)
        node.on_message(Message(outsider, 1, FEED_ME, 40, FeedMePayload(requester=outsider)))
        assert outsider in node.partners.current_partners()
        assert node.stats.feed_me_received == 1

    def test_feed_me_timer_sends_requests(self):
        harness = Harness(num_nodes=10, feed_me_every=2, refresh_every=INFINITE)
        node = harness.nodes[1]
        node.start()
        harness.simulator.run(until=1.0)
        # Y=2 with a 0.2 s period: one feed-me burst every 0.4 s.
        assert node.stats.feed_me_sent >= harness.config.fanout

    def test_no_feed_me_when_disabled(self):
        harness = Harness(num_nodes=10)
        node = harness.nodes[1]
        node.start()
        harness.simulator.run(until=2.0)
        assert node.stats.feed_me_sent == 0


class TestFailure:
    def test_failed_node_ignores_messages(self):
        harness = Harness()
        node = harness.nodes[1]
        node.fail()
        node.on_message(Message(2, 1, PROPOSE, 48, harness_propose((5,))))
        assert node.stats.proposals_received == 0

    def test_failed_node_stops_gossiping(self):
        harness = Harness(num_nodes=6)
        node = harness.nodes[1]
        node.start()
        node.state.queue_for_proposal(3)
        node.state.deliver(3, 0.0)
        node.fail()
        harness.simulator.run(until=2.0)
        assert node.stats.proposes_sent == 0

    def test_unknown_message_kind_rejected(self):
        harness = Harness()
        with pytest.raises(ValueError):
            harness.nodes[1].on_message(Message(2, 1, "bogus", 10, None))


def harness_propose(packet_ids):
    from repro.core.messages import ProposePayload

    return ProposePayload(packet_ids=tuple(packet_ids))
