"""SessionResult (and everything it exposes) must round-trip through pickle.

This is a hard prerequisite for the multiprocess sweep executor: workers can
only hand results (or objects derived from them) back to the parent through
pickle.  The parallel path ships compact summaries, but the full result must
stay picklable too — both as a safety net and for users who parallelize
their own analyses.
"""

import math
import pickle

import pytest

from repro.core.config import GossipConfig
from repro.core.session import SessionConfig, StreamingSession
from repro.membership.churn import CatastrophicChurn
from repro.network.transport import NetworkConfig
from repro.streaming.schedule import StreamConfig


def _run(churn=None):
    config = SessionConfig(
        num_nodes=12,
        seed=5,
        gossip=GossipConfig(fanout=4),
        stream=StreamConfig.scaled_down(num_windows=6),
        network=NetworkConfig(upload_cap_kbps=700.0, random_loss=0.01),
        churn=churn,
        extra_time=10.0,
    )
    return StreamingSession(config).run()


@pytest.fixture(scope="module")
def result():
    return _run()


class TestSessionResultPickle:
    def test_round_trip_preserves_headline_metrics(self, result):
        clone = pickle.loads(pickle.dumps(result))
        assert clone.viewing_percentage(lag=10.0) == result.viewing_percentage(lag=10.0)
        assert clone.viewing_percentage(lag=math.inf) == result.viewing_percentage(
            lag=math.inf
        )
        assert clone.delivery_ratio() == result.delivery_ratio()
        assert (
            clone.average_complete_windows_percentage(20.0)
            == result.average_complete_windows_percentage(20.0)
        )

    def test_round_trip_preserves_analyzers(self, result):
        clone = pickle.loads(pickle.dumps(result))
        assert (
            clone.bandwidth_usage().sorted_usage()
            == result.bandwidth_usage().sorted_usage()
        )
        grid = (0.0, 5.0, 10.0, 20.0)
        assert clone.quality().lag_cdf(grid) == result.quality().lag_cdf(grid)

    def test_round_trip_preserves_logs_and_counters(self, result):
        clone = pickle.loads(pickle.dumps(result))
        assert clone.deliveries.total_deliveries == result.deliveries.total_deliveries
        assert clone.traffic.total_bytes_sent() == result.traffic.total_bytes_sent()
        assert clone.events_processed == result.events_processed
        assert clone.end_time == result.end_time
        for node_id, stats in result.node_stats.items():
            assert clone.node_stats[node_id].as_dict() == stats.as_dict()

    def test_round_trip_after_analyzer_cache_is_warm(self, result):
        # Populate the internal quality cache, then pickle: the cached
        # analyzers must not break serialization.
        result.quality()
        result.quality(survivors_only=False)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.viewing_percentage(lag=10.0) == result.viewing_percentage(lag=10.0)

    def test_churn_session_round_trips(self):
        result = _run(churn=CatastrophicChurn(time=3.0, fraction=0.25))
        clone = pickle.loads(pickle.dumps(result))
        assert clone.failed_nodes == result.failed_nodes
        assert clone.survivors() == result.survivors()
        assert clone.viewing_percentage(lag=20.0) == result.viewing_percentage(lag=20.0)

    def test_config_round_trips(self, result):
        clone = pickle.loads(pickle.dumps(result.config))
        assert clone.num_nodes == result.config.num_nodes
        assert clone.gossip == result.config.gossip
        assert clone.stream == result.config.stream
