"""Unit tests for the protocol payload dataclasses."""

import pytest

from repro.core.messages import (
    FeedMePayload,
    ProposePayload,
    RequestPayload,
    ServePayload,
    ServedPacket,
)


class TestProposePayload:
    def test_holds_ids(self):
        payload = ProposePayload(packet_ids=(1, 2, 3))
        assert len(payload) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ProposePayload(packet_ids=())


class TestRequestPayload:
    def test_holds_ids(self):
        assert len(RequestPayload(packet_ids=(9,))) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RequestPayload(packet_ids=())


class TestServedPacket:
    def test_defaults_to_no_payload(self):
        packet = ServedPacket(packet_id=4, size_bytes=1000)
        assert packet.payload is None

    def test_payload_carried(self):
        packet = ServedPacket(packet_id=4, size_bytes=4, payload=b"abcd")
        assert packet.payload == b"abcd"

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ServedPacket(packet_id=4, size_bytes=0)


class TestServePayload:
    def test_wraps_packet(self):
        packet = ServedPacket(packet_id=1, size_bytes=10)
        assert ServePayload(packet=packet).packet is packet


class TestFeedMePayload:
    def test_requester_recorded(self):
        assert FeedMePayload(requester=5).requester == 5

    def test_negative_requester_rejected(self):
        with pytest.raises(ValueError):
            FeedMePayload(requester=-1)
