"""Every legacy ``benchmarks/bench_*.py`` entry point still executes.

The twelve scripts became thin shims over :mod:`repro.bench` — these tests
pin that the *historical invocations* (standalone CLI with ``--smoke``,
pytest for the figure benches) keep working at smoke scale.  Sizes are
shrunk to the minimum each interface allows; this is an execution pin, not
a measurement.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"

FIGURE_SCRIPTS = sorted(BENCH_DIR.glob("bench_fig*.py"))

CLI_INVOCATIONS = {
    "bench_engine_throughput.py": ["--smoke", "--nodes", "12", "--windows", "2"],
    "bench_observer_overhead.py": [
        "--smoke", "--nodes", "12", "--windows", "2", "--assert-idle-overhead", "100",
    ],
    "bench_large_session.py": [
        "--smoke", "--nodes", "25", "--windows", "2", "--codec-windows", "1",
    ],
    "bench_sweep_parallel.py": ["--smoke", "--jobs", "2"],
}


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_BENCH_SCALE"] = "smoke"
    return env


def test_the_twelve_scripts_are_all_accounted_for():
    scripts = sorted(p.name for p in BENCH_DIR.glob("bench_*.py"))
    assert len(scripts) == 12
    covered = set(CLI_INVOCATIONS) | {p.name for p in FIGURE_SCRIPTS}
    assert covered == set(scripts)


@pytest.mark.parametrize("script", sorted(CLI_INVOCATIONS))
def test_cli_entry_point_executes_at_smoke_scale(script, tmp_path):
    json_path = tmp_path / f"{script}.json"
    result = subprocess.run(
        [sys.executable, str(BENCH_DIR / script), *CLI_INVOCATIONS[script],
         "--json", str(json_path)],
        cwd=REPO_ROOT,
        env=_env(),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stdout}\n{result.stderr}"
    # Every shim now writes the unified report schema.
    from repro.bench.report import BenchReport

    report = BenchReport.load(json_path)
    assert len(report.results) == 1


def test_figure_pytest_entry_points_execute_at_smoke_scale():
    """All eight figure shims in one pytest run (they share the run cache)."""
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
         *(str(path) for path in FIGURE_SCRIPTS)],
        cwd=REPO_ROOT,
        env=_env(),
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, f"figure shims failed:\n{result.stdout}\n{result.stderr}"
    assert "8 passed" in result.stdout
