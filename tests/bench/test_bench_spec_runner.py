"""Benchmark specs, registry selection, and the warmup/repeat harness."""

import pytest

from repro.bench.report import BenchReport
from repro.bench.runner import BenchmarkRunError, run_benchmark, run_selected
from repro.bench.spec import Benchmark, BenchContext, BenchmarkRegistry, Metric


def counting_benchmark(samples, name="count", **kwargs) -> Benchmark:
    """Returns the next dict from ``samples`` on every run call."""
    iterator = iter(samples)
    return Benchmark(
        name=name,
        description="synthetic",
        run=lambda ctx: next(iterator),
        metrics=(
            Metric("det", kind="identity"),
            Metric("best_high", kind="rate", higher_is_better=True),
            Metric("best_low", kind="rate", higher_is_better=False),
        ),
        **kwargs,
    )


class TestMetricSpec:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            Metric("x", kind="wallclock")

    def test_kind_defaults_drive_gating(self):
        assert Metric("a", kind="identity").gated
        assert Metric("a", kind="counter").gated
        assert Metric("a", kind="ratio").gated
        assert not Metric("a", kind="rate").gated
        assert not Metric("a", kind="info").gated
        # An explicit tolerance opts a rate into gating.
        assert Metric("a", kind="rate", tolerance=0.5).gated

    def test_ratio_default_band(self):
        assert Metric("a", kind="ratio").band == 0.5
        assert Metric("a", kind="ratio", tolerance=0.25).band == 0.25


class TestRegistry:
    def test_duplicate_names_are_rejected(self):
        registry = BenchmarkRegistry()
        registry.register(counting_benchmark([{}]))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(counting_benchmark([{}]))

    def test_selection_matches_name_and_tags(self):
        registry = BenchmarkRegistry()
        registry.register(counting_benchmark([{}], name="alpha-engine", tags=("hot",)))
        registry.register(counting_benchmark([{}], name="beta", tags=("figures",)))
        assert [b.name for b in registry.select(["engine"])] == ["alpha-engine"]
        assert [b.name for b in registry.select(["figures"])] == ["beta"]
        assert [b.name for b in registry.select(["hot", "beta"])] == ["alpha-engine", "beta"]
        assert len(registry.select([])) == 2
        assert registry.select(["nothing"]) == []

    def test_comma_separated_patterns_union(self):
        registry = BenchmarkRegistry()
        registry.register(counting_benchmark([{}], name="alpha-engine", tags=("hot",)))
        registry.register(counting_benchmark([{}], name="beta", tags=("figures",)))
        registry.register(counting_benchmark([{}], name="gamma", tags=()))
        assert [b.name for b in registry.select(["engine,beta"])] == ["alpha-engine", "beta"]
        # Whitespace around commas is forgiven; empty fragments are ignored.
        assert [b.name for b in registry.select([" engine , gamma ,"])] == [
            "alpha-engine",
            "gamma",
        ]

    def test_tag_prefix_matches_tags_exactly(self):
        registry = BenchmarkRegistry()
        registry.register(counting_benchmark([{}], name="figure-ish", tags=("other",)))
        registry.register(counting_benchmark([{}], name="real", tags=("figure",)))
        registry.register(counting_benchmark([{}], name="wide", tags=("figure-wide",)))
        # Plain substring catches all three; tag: catches only the exact tag.
        assert len(registry.select(["figure"])) == 3
        assert [b.name for b in registry.select(["tag:figure"])] == ["real"]
        assert [b.name for b in registry.select(["tag:figure,wide"])] == ["real", "wide"]

    def test_default_suite_registers_all_fifteen(self):
        from repro.bench import default_registry

        names = default_registry().names()
        assert len(names) == 15
        assert names[:3] == [
            "engine-throughput",
            "observer-overhead",
            "telemetry-overhead",
        ]
        assert [f"figure{i}" for i in range(1, 9)] == names[3:11]
        assert names[11:] == [
            "large-session",
            "sharded-session",
            "wire",
            "sweep-parallel",
        ]


class TestRepeatHarness:
    def test_best_of_combines_by_direction(self):
        samples = [
            {"det": 5.0, "best_high": 10.0, "best_low": 3.0},
            {"det": 5.0, "best_high": 12.0, "best_low": 2.0},
            {"det": 5.0, "best_high": 11.0, "best_low": 4.0},
        ]
        benchmark = counting_benchmark(samples, repeats=3)
        record = run_benchmark(benchmark, BenchContext("reduced", verbose=False))
        assert record.repeats == 3
        assert record.metrics == {"det": 5.0, "best_high": 12.0, "best_low": 2.0}

    def test_smoke_scale_uses_smoke_repeats(self):
        samples = [{"det": 1.0, "best_high": 1.0, "best_low": 1.0}]
        benchmark = counting_benchmark(samples, repeats=3, smoke_repeats=1)
        record = run_benchmark(benchmark, BenchContext("smoke", verbose=False))
        assert record.repeats == 1

    def test_drifting_deterministic_metric_fails_loudly(self):
        samples = [
            {"det": 5.0, "best_high": 1.0, "best_low": 1.0},
            {"det": 6.0, "best_high": 1.0, "best_low": 1.0},
        ]
        benchmark = counting_benchmark(samples, repeats=2)
        with pytest.raises(BenchmarkRunError, match="varied across"):
            run_benchmark(benchmark, BenchContext("reduced", verbose=False))

    def test_undeclared_metric_is_rejected(self):
        benchmark = counting_benchmark([{"det": 1.0, "best_high": 1.0, "best_low": 1.0, "x": 1.0}])
        with pytest.raises(BenchmarkRunError, match="undeclared"):
            run_benchmark(benchmark, BenchContext("smoke", verbose=False))

    def test_omitted_metric_is_rejected(self):
        benchmark = counting_benchmark([{"det": 1.0}])
        with pytest.raises(BenchmarkRunError, match="omitted"):
            run_benchmark(benchmark, BenchContext("smoke", verbose=False))

    def test_warmup_runs_once_before_repeats(self):
        calls = []
        samples = [{"det": 1.0, "best_high": 1.0, "best_low": 1.0} for _ in range(3)]
        benchmark = counting_benchmark(samples, repeats=3)
        benchmark = Benchmark(
            name=benchmark.name,
            description=benchmark.description,
            run=lambda ctx: (calls.append("run"), samples[0])[1],
            metrics=benchmark.metrics,
            repeats=3,
            warmup=lambda ctx: calls.append("warmup"),
        )
        run_benchmark(benchmark, BenchContext("reduced", verbose=False))
        assert calls == ["warmup", "run", "run", "run"]

    def test_profile_dir_writes_loadable_pstats(self, tmp_path):
        import pstats

        benchmark = counting_benchmark([{"det": 1.0, "best_high": 1.0, "best_low": 1.0}])
        record = run_benchmark(
            benchmark, BenchContext("smoke", verbose=False), profile_dir=str(tmp_path)
        )
        assert record.metrics["det"] == 1.0
        stats_path = tmp_path / "PROFILE_count.pstats"
        assert stats_path.exists()
        pstats.Stats(str(stats_path))  # parses as a valid profile dump

    def test_no_profile_by_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        benchmark = counting_benchmark([{"det": 1.0, "best_high": 1.0, "best_low": 1.0}])
        run_benchmark(benchmark, BenchContext("smoke", verbose=False))
        assert list(tmp_path.rglob("*.pstats")) == []


class TestRunSelected:
    def test_unknown_filter_raises(self):
        registry = BenchmarkRegistry()
        registry.register(counting_benchmark([{}]))
        with pytest.raises(KeyError, match="no benchmark matches"):
            run_selected(registry, patterns=["ghost"], verbose=False)

    def test_report_carries_scale_and_fingerprint(self):
        from repro.sweep import code_fingerprint

        registry = BenchmarkRegistry()
        registry.register(
            counting_benchmark([{"det": 1.0, "best_high": 1.0, "best_low": 1.0}])
        )
        report = run_selected(registry, scale_name="smoke", verbose=False)
        assert isinstance(report, BenchReport)
        assert report.scale == "smoke"
        assert report.fingerprint == code_fingerprint()
        assert report.results[0].benchmark == "count"

    def test_repeat_override_applies(self):
        samples = [{"det": 1.0, "best_high": float(i), "best_low": 1.0} for i in range(4)]
        registry = BenchmarkRegistry()
        registry.register(counting_benchmark(samples, repeats=1))
        report = run_selected(registry, scale_name="reduced", repeats_override=4, verbose=False)
        assert report.results[0].repeats == 4
        assert report.results[0].metrics["best_high"] == 3.0


class TestContextOptions:
    def test_option_int_parses_and_defaults(self):
        ctx = BenchContext("smoke", options={"nodes": "25"})
        assert ctx.option_int("nodes", 40) == 25
        assert ctx.option_int("windows", 7) == 7
        assert ctx.option_int("windows") is None

    def test_summary_cache_is_lazily_shared(self):
        ctx = BenchContext("smoke")
        assert ctx.cache is None
        cache = ctx.summary_cache()
        assert ctx.summary_cache() is cache
