"""Report schema: round-trips, validation, fingerprint and host hints."""

import json

import pytest

from repro.bench.report import (
    SCHEMA,
    BenchmarkRecord,
    BenchReport,
    ReportError,
    current_fingerprint,
    host_hints,
)
from repro.sweep import code_fingerprint


def sample_report() -> BenchReport:
    return BenchReport(
        scale="smoke",
        fingerprint="abcd1234abcd1234",
        results=[
            BenchmarkRecord(
                benchmark="engine-throughput",
                metrics={"events_processed": 10280.0, "events_per_second": 81234.5},
                repeats=2,
                wall_seconds=0.25,
            ),
            BenchmarkRecord(
                benchmark="figure1",
                metrics={"table_checksum": 246641906086627.0, "headline": 96.55172413793103},
            ),
        ],
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_metrics_exactly(self):
        report = sample_report()
        rebuilt = BenchReport.from_json_dict(report.to_json_dict())
        assert rebuilt.scale == report.scale
        assert rebuilt.fingerprint == report.fingerprint
        assert [r.benchmark for r in rebuilt.results] == [r.benchmark for r in report.results]
        for mine, theirs in zip(report.results, rebuilt.results):
            # Floats must survive bit-for-bit: the comparison gate relies on
            # exact equality for identity metrics.
            assert mine.metrics == theirs.metrics
            assert mine.repeats == theirs.repeats

    def test_file_round_trip(self, tmp_path):
        report = sample_report()
        path = report.write(tmp_path / "deep" / "BENCH_x.json")
        assert path.exists()
        rebuilt = BenchReport.load(path)
        assert rebuilt.to_json_dict() == report.to_json_dict()

    def test_schema_field_is_versioned(self):
        data = sample_report().to_json_dict()
        assert data["schema"] == SCHEMA == "repro.bench/1"

    def test_record_lookup(self):
        report = sample_report()
        assert report.record_for("figure1").metrics["headline"] == pytest.approx(96.5517, abs=1e-3)
        assert report.record_for("nope") is None


class TestValidation:
    def test_unknown_schema_version_is_rejected(self):
        data = sample_report().to_json_dict()
        data["schema"] = "repro.bench/99"
        with pytest.raises(ReportError, match="unsupported report schema"):
            BenchReport.from_json_dict(data)

    def test_missing_fields_are_rejected(self):
        data = sample_report().to_json_dict()
        del data["results"]
        with pytest.raises(ReportError):
            BenchReport.from_json_dict(data)

    def test_malformed_record_is_rejected(self):
        data = sample_report().to_json_dict()
        del data["results"][0]["metrics"]
        with pytest.raises(ReportError, match="malformed benchmark record"):
            BenchReport.from_json_dict(data)

    def test_non_json_file_is_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ReportError, match="not valid JSON"):
            BenchReport.load(path)

    def test_missing_file_is_rejected(self, tmp_path):
        with pytest.raises(ReportError, match="no report at"):
            BenchReport.load(tmp_path / "absent.json")

    def test_single_requires_exactly_one_record(self):
        with pytest.raises(ReportError, match="single-benchmark"):
            sample_report().single()


class TestContext:
    def test_fingerprint_reuses_the_sweep_hash(self):
        assert current_fingerprint() == code_fingerprint()

    def test_host_hints_carry_interpretation_context(self):
        hints = host_hints()
        assert set(hints) == {"cpu_count", "platform", "python"}
        assert hints["cpu_count"] >= 1

    def test_written_json_is_plain_and_sorted(self, tmp_path):
        path = sample_report().write(tmp_path / "r.json")
        data = json.loads(path.read_text(encoding="utf-8"))
        metrics = data["results"][0]["metrics"]
        assert list(metrics) == sorted(metrics)
