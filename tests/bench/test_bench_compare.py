"""Baseline store + comparison verdicts: improvement / within-band / regression."""

import pytest

from repro.bench.baseline import (
    IMPROVED,
    INFO,
    NEW,
    OK,
    REGRESSED,
    BaselineStore,
    compare_report,
)
from repro.bench.report import BenchmarkRecord, BenchReport, ReportError
from repro.bench.spec import Benchmark, BenchmarkRegistry, Metric


def toy_benchmark() -> Benchmark:
    return Benchmark(
        name="toy",
        description="synthetic benchmark for verdict tests",
        run=lambda ctx: {},
        metrics=(
            Metric("checksum", kind="identity"),
            Metric("quality", kind="counter", higher_is_better=True),
            Metric("speedup", kind="ratio", tolerance=0.5),
            Metric("latency", kind="ratio", tolerance=0.2, higher_is_better=False),
            Metric("events_per_second", kind="rate"),
            Metric("jobs", kind="info"),
        ),
    )


def registry_with_toy() -> BenchmarkRegistry:
    registry = BenchmarkRegistry()
    registry.register(toy_benchmark())
    return registry


def report_with(metrics: dict) -> BenchReport:
    return BenchReport(
        scale="smoke",
        fingerprint="f" * 16,
        results=[BenchmarkRecord(benchmark="toy", metrics=metrics)],
    )


BASE = {
    "checksum": 123456789012345.0,
    "quality": 90.0,
    "speedup": 4.0,
    "latency": 2.0,
    "events_per_second": 50_000.0,
    "jobs": 2.0,
}


@pytest.fixture
def store(tmp_path) -> BaselineStore:
    store = BaselineStore(tmp_path / "baselines")
    store.record(report_with(dict(BASE)))
    return store


def verdicts_for(metrics: dict, store) -> dict:
    outcome = compare_report(report_with(metrics), registry_with_toy(), store)
    return {v.metric: v for v in outcome.verdicts}


class TestVerdicts:
    def test_identical_report_is_all_ok(self, store):
        verdicts = verdicts_for(dict(BASE), store)
        assert verdicts["checksum"].status == OK
        assert verdicts["quality"].status == OK
        assert verdicts["speedup"].status == OK
        assert verdicts["latency"].status == OK
        # Wall-clock and config echoes never gate.
        assert verdicts["events_per_second"].status == INFO
        assert verdicts["jobs"].status == INFO

    def test_identity_flags_any_drift_as_regression(self, store):
        up = verdicts_for({**BASE, "checksum": BASE["checksum"] + 1}, store)
        down = verdicts_for({**BASE, "checksum": BASE["checksum"] - 1}, store)
        assert up["checksum"].status == REGRESSED
        assert down["checksum"].status == REGRESSED
        assert "re-record" in up["checksum"].note

    def test_counter_is_exact_but_directional(self, store):
        assert verdicts_for({**BASE, "quality": 90.5}, store)["quality"].status == IMPROVED
        assert verdicts_for({**BASE, "quality": 89.5}, store)["quality"].status == REGRESSED

    def test_ratio_within_band_is_ok(self, store):
        # 4.0 baseline, ±50% band: anything in [2.0, 6.0] is within band.
        assert verdicts_for({**BASE, "speedup": 2.5}, store)["speedup"].status == OK
        assert verdicts_for({**BASE, "speedup": 5.9}, store)["speedup"].status == OK

    def test_ratio_below_band_regresses_and_above_improves(self, store):
        assert verdicts_for({**BASE, "speedup": 1.9}, store)["speedup"].status == REGRESSED
        assert verdicts_for({**BASE, "speedup": 6.1}, store)["speedup"].status == IMPROVED

    def test_lower_is_better_ratio_band_is_mirrored(self, store):
        # 2.0 baseline, ±20% band, lower is better.
        assert verdicts_for({**BASE, "latency": 2.3}, store)["latency"].status == OK
        assert verdicts_for({**BASE, "latency": 2.5}, store)["latency"].status == REGRESSED
        assert verdicts_for({**BASE, "latency": 1.5}, store)["latency"].status == IMPROVED

    def test_rate_never_regresses_however_bad(self, store):
        verdicts = verdicts_for({**BASE, "events_per_second": 5.0}, store)
        assert verdicts["events_per_second"].status == INFO

    def test_missing_metric_in_report_is_a_regression(self, store):
        metrics = dict(BASE)
        del metrics["checksum"]
        verdicts = verdicts_for(metrics, store)
        assert verdicts["checksum"].status == REGRESSED
        assert "missing from report" in verdicts["checksum"].note

    def test_outcome_gate_flags(self, store):
        good = compare_report(report_with(dict(BASE)), registry_with_toy(), store)
        assert not good.has_regressions
        bad = compare_report(
            report_with({**BASE, "speedup": 0.1}), registry_with_toy(), store
        )
        assert bad.has_regressions
        assert [v.metric for v in bad.regressions] == ["speedup"]
        assert "REGRESSED".lower() in bad.table().lower()


class TestStore:
    def test_no_baseline_yields_new_not_regression(self, tmp_path):
        store = BaselineStore(tmp_path / "empty")
        outcome = compare_report(report_with(dict(BASE)), registry_with_toy(), store)
        assert not outcome.has_regressions
        gated = [v for v in outcome.verdicts if v.status == NEW]
        assert len(gated) == 4  # identity + counter + both ratios
        assert any("no baseline" in note for note in outcome.notes)

    def test_record_writes_one_file_per_benchmark(self, tmp_path):
        store = BaselineStore(tmp_path / "b")
        report = report_with(dict(BASE))
        report.results.append(BenchmarkRecord(benchmark="other", metrics={"x": 1.0}))
        written = store.record(report)
        assert sorted(p.name for p in written) == ["BENCH_other.json", "BENCH_toy.json"]
        assert all(p.parent.name == "smoke" for p in written)
        assert store.load("smoke", "toy").metrics == BASE

    def test_load_missing_returns_none(self, tmp_path):
        assert BaselineStore(tmp_path).load("smoke", "toy") is None

    def test_baseline_in_wrong_scale_directory_is_rejected(self, tmp_path):
        store = BaselineStore(tmp_path / "b")
        store.record(report_with(dict(BASE)))
        wrong = (tmp_path / "b" / "reduced")
        wrong.mkdir()
        (tmp_path / "b" / "smoke" / "BENCH_toy.json").rename(wrong / "BENCH_toy.json")
        with pytest.raises(ReportError, match="recorded at scale"):
            store.load("reduced", "toy")

    def test_unregistered_benchmark_is_skipped_with_note(self, store):
        report = report_with(dict(BASE))
        report.results.append(BenchmarkRecord(benchmark="ghost", metrics={"x": 1.0}))
        outcome = compare_report(report, registry_with_toy(), store)
        assert not outcome.has_regressions
        assert any("unregistered benchmark 'ghost'" in note for note in outcome.notes)
