"""CLI smoke: ``run`` / ``compare`` / ``record`` / ``list`` end to end.

``run`` is exercised through the cheapest real benchmark
(``engine-throughput`` at smoke scale with tiny overrides) so the test
drives the actual simulation path without burning minutes; the
compare/record flow then runs entirely on the produced report.
"""

import json

import pytest

from repro.bench.cli import main
from repro.bench.report import BenchReport


@pytest.fixture(scope="module")
def run_report_path(tmp_path_factory):
    """One tiny real run shared by every CLI test of this module."""
    path = tmp_path_factory.mktemp("cli") / "BENCH_smoke.json"
    code = main(
        [
            "run",
            "--filter",
            "engine-throughput",
            "--scale",
            "smoke",
            "--option",
            "nodes=12",
            "--option",
            "windows=2",
            "--repeat",
            "1",
            "--quiet",
            "--json",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestRun:
    def test_report_is_valid_and_scoped(self, run_report_path):
        report = BenchReport.load(run_report_path)
        assert report.scale == "smoke"
        assert [r.benchmark for r in report.results] == ["engine-throughput"]
        assert report.results[0].metrics["events_processed"] > 0

    def test_unknown_filter_fails_cleanly(self, capsys):
        assert main(["run", "--filter", "ghost-bench", "--quiet"]) == 2
        assert "no benchmark matches" in capsys.readouterr().err

    def test_bad_option_syntax_fails(self):
        with pytest.raises(SystemExit):
            main(["run", "--option", "nodes", "--quiet"])


class TestCompare:
    def test_fresh_report_against_own_baseline_passes(self, run_report_path, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        assert main(["record", str(run_report_path), "--baseline-dir", str(baseline_dir)]) == 0
        assert (baseline_dir / "smoke" / "BENCH_engine-throughput.json").exists()
        assert (
            main(["compare", str(run_report_path), "--baseline-dir", str(baseline_dir)]) == 0
        )
        assert "no regressions" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, run_report_path, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        main(["record", str(run_report_path), "--baseline-dir", str(baseline_dir)])
        regressed = json.loads(run_report_path.read_text(encoding="utf-8"))
        regressed["results"][0]["metrics"]["events_processed"] += 7
        bad_path = tmp_path / "regressed.json"
        bad_path.write_text(json.dumps(regressed), encoding="utf-8")
        assert main(["compare", str(bad_path), "--baseline-dir", str(baseline_dir)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_no_gate_env_downgrades_to_warning(
        self, run_report_path, tmp_path, capsys, monkeypatch
    ):
        baseline_dir = tmp_path / "baselines"
        main(["record", str(run_report_path), "--baseline-dir", str(baseline_dir)])
        regressed = json.loads(run_report_path.read_text(encoding="utf-8"))
        regressed["results"][0]["metrics"]["events_processed"] += 7
        bad_path = tmp_path / "regressed.json"
        bad_path.write_text(json.dumps(regressed), encoding="utf-8")
        monkeypatch.setenv("REPRO_BENCH_NO_GATE", "1")
        assert main(["compare", str(bad_path), "--baseline-dir", str(baseline_dir)]) == 0
        assert "ignored" in capsys.readouterr().out

    def test_missing_baselines_pass_with_new_verdicts(self, run_report_path, tmp_path, capsys):
        assert (
            main(["compare", str(run_report_path), "--baseline-dir", str(tmp_path / "none")])
            == 0
        )
        out = capsys.readouterr().out
        assert "no baseline for 'engine-throughput'" in out

    def test_malformed_report_fails_with_error(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("[]", encoding="utf-8")
        assert main(["compare", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestCommittedBaselines:
    """The in-repo smoke baselines stay consistent with the registry."""

    def test_every_registered_benchmark_has_a_smoke_baseline(self):
        from repro.bench import default_baseline_root, default_registry

        root = default_baseline_root() / "smoke"
        missing = [
            name
            for name in default_registry().names()
            if not (root / f"BENCH_{name}.json").exists()
        ]
        assert missing == [], f"run `python -m repro.bench run --record-baseline` for {missing}"

    def test_committed_baselines_parse_and_declare_known_metrics(self):
        from repro.bench import default_baseline_root, default_registry

        registry = default_registry()
        root = default_baseline_root() / "smoke"
        for path in sorted(root.glob("BENCH_*.json")):
            report = BenchReport.load(path)
            record = report.single()
            benchmark = registry.get(record.benchmark)
            declared = {metric.name for metric in benchmark.metrics}
            assert set(record.metrics) == declared, path.name


class TestList:
    def test_list_shows_all(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("engine-throughput", "figure8", "large-session", "sweep-parallel"):
            assert name in out

    def test_list_filter(self, capsys):
        assert main(["list", "--filter", "sweep"]) == 0
        out = capsys.readouterr().out
        assert "sweep-parallel" in out
        assert "figure1" not in out

    def test_list_no_match(self, capsys):
        assert main(["list", "--filter", "ghost"]) == 1
