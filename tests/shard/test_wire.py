"""Unit tests for the compact wire format: layout limits, fallbacks, stats.

The round-trip property suite (``tests/properties/test_wire_roundtrip``)
pins exactness; these tests pin the edges the fuzzer rarely lands on — head
fields that overflow the fixed-width columns, the pickle escape hatch, the
corrupt-tag error path — and the size claim the whole tentpole exists for:
a typical protocol batch serializes at least 2x smaller than pickling the
equivalent ``Message`` objects.
"""

import pickle

import pytest

from repro.core.messages import (
    FeedMePayload,
    ProposePayload,
    ServedPacket,
    ServePayload,
)
from repro.network.message import Message
from repro.shard.wire import (
    WIRE_FORMATS,
    WireBatch,
    WireFormatError,
    WireStats,
    batch_length,
    batch_nbytes,
    check_wire_format,
    decode_any,
    decode_batch,
    encode_batch,
)


def datagram(deliver_time=1.0, sender=0, seq=1, receiver=1, kind="propose", payload=None):
    message = Message(sender, receiver, kind, 100, payload)
    return (deliver_time, sender, seq, message)


class TestLayoutLimits:
    def test_empty_batch_round_trips(self):
        encoded = encode_batch([])
        assert len(encoded) == 0
        assert encoded.kinds == ()
        assert decode_batch(encoded) == []

    def test_sender_beyond_u32_rejected(self):
        with pytest.raises(WireFormatError, match="sender"):
            encode_batch([datagram(sender=2**32)])

    def test_huge_seq_values_fit_via_delta_encoding(self):
        # Sequence numbers are a lifetime counter: absolute values beyond
        # u32 are fine as long as the spread inside one batch stays narrow.
        batch = [datagram(seq=2**40 + offset) for offset in range(3)]
        assert decode_batch(encode_batch(batch)) == batch

    def test_seq_spread_beyond_u32_rejected(self):
        with pytest.raises(WireFormatError, match="seq delta"):
            encode_batch([datagram(seq=0), datagram(seq=2**32)])

    def test_size_beyond_u32_rejected(self):
        bloated = (1.0, 0, 1, Message(0, 1, "serve", 2**32))
        with pytest.raises(WireFormatError, match="size_bytes"):
            encode_batch([bloated])

    def test_kind_table_overflow_rejected(self):
        batch = [datagram(seq=i, kind=f"kind-{i}") for i in range(257)]
        with pytest.raises(WireFormatError, match="256 distinct message kinds"):
            encode_batch(batch)

    def test_corrupt_tag_rejected_on_decode(self):
        encoded = encode_batch([datagram()])
        # The payload tag is the last byte of the (single) head record.
        head = bytearray(encoded.head)
        head[-1] = 200
        corrupt = WireBatch(
            encoded.count,
            encoded.kinds,
            encoded.seq_base,
            encoded.widths,
            bytes(head),
            encoded.aux,
            encoded.ids,
            encoded.blob,
        )
        with pytest.raises(WireFormatError, match="unknown payload tag"):
            decode_batch(corrupt)


class TestFallbacks:
    def test_oversized_packet_ids_fall_back_to_pickle(self):
        payload = ProposePayload((2**40,))  # id column is u32; must still work
        batch = [datagram(payload=payload)]
        assert decode_batch(encode_batch(batch)) == batch

    def test_foreign_payload_type_falls_back_to_pickle(self):
        batch = [datagram(kind="custom", payload={"window": 3, "bitmap": b"\x01"})]
        assert decode_batch(encode_batch(batch)) == batch

    def test_serve_with_and_without_payload_bytes(self):
        with_bytes = datagram(
            seq=1, kind="serve", payload=ServePayload(ServedPacket(7, 1200, b"x" * 32))
        )
        without = datagram(
            seq=2, kind="serve", payload=ServePayload(ServedPacket(8, 1200))
        )
        batch = [with_bytes, without]
        assert decode_batch(encode_batch(batch)) == batch


class TestHelpers:
    def test_batch_length_spans_both_formats(self):
        legacy = [datagram(seq=1), datagram(seq=2)]
        assert batch_length(legacy) == 2
        assert batch_length(encode_batch(legacy)) == 2

    def test_decode_any_spans_both_formats(self):
        legacy = [datagram()]
        assert decode_any(legacy) == legacy
        assert decode_any(encode_batch(legacy)) == legacy

    def test_batch_nbytes_is_exact_for_compact_and_pickle_for_legacy(self):
        legacy = [datagram()]
        encoded = encode_batch(legacy)
        assert batch_nbytes(encoded) == encoded.nbytes
        assert batch_nbytes(legacy) == len(
            pickle.dumps(legacy, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_check_wire_format(self):
        for wire in WIRE_FORMATS:
            assert check_wire_format(wire) == wire
        with pytest.raises(ValueError, match="unknown wire format"):
            check_wire_format("json")


class TestWireStats:
    def test_accumulates_and_resets(self):
        stats = WireStats()
        stats.record_window(2, 10, 500)
        stats.record_window(1, 5, 200)
        assert stats.snapshot() == {
            "windows": 2,
            "batches": 3,
            "datagrams": 15,
            "wire_bytes": 700,
        }
        stats.reset()
        assert stats.snapshot()["windows"] == 0


class TestSizeClaim:
    def test_typical_protocol_batch_is_at_least_2x_smaller_than_pickle(self):
        # A realistic window mix: propose/request bursts and serve streams,
        # the three kinds that dominate cross-shard traffic in every
        # registered scenario.
        batch = []
        seq = 0
        for sender in range(8):
            for receiver in range(8, 12):
                seq += 1
                batch.append(
                    (
                        0.5 + seq * 0.01,
                        sender,
                        seq,
                        Message(
                            sender,
                            receiver,
                            "propose",
                            120,
                            ProposePayload(tuple(range(seq, seq + 5))),
                        ),
                    )
                )
                seq += 1
                batch.append(
                    (
                        0.6 + seq * 0.01,
                        sender,
                        seq,
                        Message(
                            sender,
                            receiver,
                            "serve",
                            1340,
                            ServePayload(ServedPacket(seq, 1340)),
                        ),
                    )
                )
                seq += 1
                batch.append(
                    (
                        0.7 + seq * 0.01,
                        sender,
                        seq,
                        Message(sender, receiver, "feed-me", 64, FeedMePayload(sender)),
                    )
                )
        encoded = encode_batch(batch)
        pickled = len(pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL))
        assert decode_batch(encoded) == batch
        # The acceptance bar: >= 2x fewer serialized bytes per datagram.
        assert encoded.nbytes * 2 <= pickled, (
            f"compact={encoded.nbytes}B pickle={pickled}B "
            f"ratio={pickled / encoded.nbytes:.2f}"
        )
