"""Window-edge unit tests for the conservative sharded dispatch backend.

The multi-shard machinery is only trustworthy if the windowing itself is:
these tests pin the strict-bound contract (an event exactly at a window
bound belongs to the *next* window), the inclusive final stretch at
``until``, and the barrier-free chunked mode's byte-identity with the
scalar loop — all on a bare :class:`~repro.simulation.engine.Simulator`,
no network or session involved.
"""

import pytest

from repro.simulation.backend.sharded import ShardedBackend, windowed_run_loop
from repro.simulation.engine import Simulator


def _cascade(simulator, trace):
    """A workload with chained events, simultaneous events, and edge times."""

    def emit(tag):
        trace.append((simulator.now, tag))

    def chain(i):
        emit(f"chain-{i}")
        if i < 30:
            simulator.schedule(0.013, chain, i + 1)

    simulator.schedule_at(0.0, chain, 0)
    for i in range(8):
        simulator.schedule_at(i * 0.037, emit, f"tick-{i}")
    simulator.schedule_at(0.1, emit, "on-window-edge")  # exactly k * lookahead
    simulator.schedule_at(0.5, emit, "at-horizon")  # exactly at until
    simulator.schedule_at(0.75, emit, "past-horizon")  # must stay pending


class TestWindowedRunLoop:
    def test_event_at_bound_belongs_to_next_window(self):
        simulator = Simulator(seed=1)
        ran = []
        simulator.schedule_at(1.0, ran.append, "before")
        simulator.schedule_at(2.0, ran.append, "at-bound")
        executed = windowed_run_loop(simulator, bound=2.0, max_events=None)
        assert executed == 1
        assert ran == ["before"]
        # The bound event is still pending, due for the next window (where
        # cross-shard datagrams landing at that instant will have merged in).
        assert simulator._queue.peek_time() == 2.0

    def test_respects_event_budget(self):
        simulator = Simulator(seed=1)
        for i in range(5):
            simulator.schedule_at(float(i), lambda: None)
        assert windowed_run_loop(simulator, bound=10.0, max_events=3) == 3
        assert simulator.pending_events == 2

    def test_empty_queue_executes_nothing(self):
        simulator = Simulator(seed=1)
        assert windowed_run_loop(simulator, bound=5.0, max_events=None) == 0


class TestChunkedMode:
    """Without a barrier the backend is a chunked scalar loop — identical."""

    def test_chunked_trace_is_byte_identical_to_scalar(self):
        scalar_sim = Simulator(seed=7)
        scalar_trace = []
        _cascade(scalar_sim, scalar_trace)
        scalar_executed = scalar_sim.run(until=0.5)

        chunked_sim = Simulator(seed=7, backend=ShardedBackend(lookahead=0.05))
        chunked_trace = []
        _cascade(chunked_sim, chunked_trace)
        chunked_executed = chunked_sim.run(until=0.5)

        assert chunked_trace == scalar_trace
        assert chunked_executed == scalar_executed
        assert chunked_sim.now == scalar_sim.now == 0.5

    def test_final_stretch_is_inclusive_at_until(self):
        simulator = Simulator(seed=1, backend=ShardedBackend(lookahead=0.1))
        trace = []
        _cascade(simulator, trace)
        simulator.run(until=0.5)
        tags = [tag for _, tag in trace]
        assert "at-horizon" in tags  # Simulator.run executes events at until
        assert "past-horizon" not in tags
        assert simulator.pending_events == 1  # the past-horizon event survives

    def test_chunked_jumps_over_empty_stretches(self):
        # Two events 100 lookaheads apart: the chunked loop must not crawl
        # window by window through the gap (that is what peek-jumping is
        # for).  Pin it by bounding executed events, which would be the same
        # either way, and asserting both events ran after one run() call.
        simulator = Simulator(seed=1, backend=ShardedBackend(lookahead=0.01))
        ran = []
        simulator.schedule_at(0.0, ran.append, "early")
        simulator.schedule_at(1.0, ran.append, "late")
        assert simulator.run(until=2.0) == 2
        assert ran == ["early", "late"]

    def test_until_none_degrades_to_scalar_idle_run(self):
        simulator = Simulator(seed=1, backend=ShardedBackend(lookahead=0.05))
        ran = []
        simulator.schedule_at(0.25, ran.append, "x")
        assert simulator.run_until_idle() == 1
        assert ran == ["x"]


class TestBarrieredBackend:
    def test_barrier_drives_bounds_and_done(self):
        lookahead = 0.1
        until = 0.35
        barrier_bounds = []

        simulator = Simulator(seed=1)

        def barrier(bound):
            barrier_bounds.append(bound)
            # Single-shard coordinator logic: jump past the next pending
            # event, cap at the horizon, finish once drained at the horizon.
            peek = simulator._queue.peek_time()
            if bound < until:
                next_bound = until if peek is None else min(until, peek + lookahead)
                return next_bound, False
            return until, peek is None or peek > until

        simulator._backend = ShardedBackend(lookahead, barrier=barrier)
        trace = []
        _cascade(simulator, trace)
        executed = simulator.run(until=until)

        oracle = Simulator(seed=1)
        oracle_trace = []
        _cascade(oracle, oracle_trace)
        assert executed == oracle.run(until=until)
        assert trace == oracle_trace
        # Bounds are monotone non-decreasing and end at the horizon.
        assert barrier_bounds == sorted(barrier_bounds)
        assert barrier_bounds[-1] == until

    def test_barriered_run_requires_horizon(self):
        backend = ShardedBackend(0.1, barrier=lambda bound: (bound, True))
        simulator = Simulator(seed=1, backend=backend)
        with pytest.raises(ValueError, match="explicit time horizon"):
            simulator.run_until_idle()

    def test_event_budget_stops_mid_protocol(self):
        # The budget is a local safety valve: it may abandon the window
        # protocol without calling the barrier again.
        calls = []
        backend = ShardedBackend(10.0, barrier=lambda bound: (calls.append(bound), (bound, True))[1])
        simulator = Simulator(seed=1, backend=backend)
        for i in range(6):
            simulator.schedule_at(0.1 * i, lambda: None)
        assert simulator.run(until=1.0, max_events=4) == 4


class TestBackendValidation:
    def test_zero_lookahead_rejected(self):
        with pytest.raises(ValueError, match="positive lookahead"):
            ShardedBackend(0.0)

    def test_negative_lookahead_rejected(self):
        with pytest.raises(ValueError, match="positive lookahead"):
            ShardedBackend(-0.01)

    def test_lookahead_property(self):
        assert ShardedBackend(0.025).lookahead == 0.025
