"""Unit tests for the deterministic node → shard partitioner.

Placement is part of the reproducibility contract: the lookup table is
computed independently by every worker, the coordinator and the merge step,
so its values are pinned here as literals — a partitioner change silently
re-homing nodes would otherwise only surface as a cryptic merge failure.
"""

import pytest

from repro.shard.partition import partition_nodes, shard_lookup, shard_of_node


class TestShardOfNode:
    def test_pinned_placements_two_way(self):
        # sha256("shard:node-<id>")[:8] % 2 — frozen; changing the hash
        # construction invalidates every cross-version sharded comparison.
        assert [shard_of_node(i, 2) for i in range(12)] == [
            0, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0,
        ]

    def test_pinned_placements_four_way(self):
        assert [shard_of_node(i, 4) for i in range(12)] == [
            0, 0, 3, 3, 2, 1, 2, 2, 1, 3, 3, 0,
        ]

    def test_single_shard_owns_everything(self):
        assert all(shard_of_node(i, 1) == 0 for i in range(100))

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_of_node(0, 0)
        with pytest.raises(ValueError, match="num_shards"):
            shard_of_node(0, -3)

    def test_placement_is_stable_across_calls(self):
        assert [shard_of_node(7, 4) for _ in range(5)] == [shard_of_node(7, 4)] * 5


class TestLookupAndGroups:
    def test_lookup_agrees_with_shard_of_node(self):
        lookup = shard_lookup(50, 4)
        assert len(lookup) == 50
        assert lookup == [shard_of_node(i, 4) for i in range(50)]

    def test_groups_partition_the_id_range(self):
        groups = partition_nodes(40, 3)
        assert len(groups) == 3
        flat = [node_id for group in groups for node_id in group]
        assert sorted(flat) == list(range(40))
        for shard_id, group in enumerate(groups):
            assert group == sorted(group)  # ascending within each shard
            assert all(shard_of_node(node_id, 3) == shard_id for node_id in group)

    def test_empty_shards_are_legal(self):
        # A 2-node session split 4 ways: nodes 0 and 1 both hash to shard 0,
        # so three shards own nothing — they still take part in the window
        # protocol (replicated control plane), hence empty lists, not errors.
        assert partition_nodes(2, 4) == [[0, 1], [], [], []]

    def test_large_partition_is_roughly_balanced(self):
        sizes = [len(group) for group in partition_nodes(1000, 4)]
        assert sum(sizes) == 1000
        assert all(200 <= size <= 300 for size in sizes)

    def test_placement_uncorrelated_with_bandwidth_class(self):
        # Bandwidth classes are assigned by node_id % 10 (scenarios.spec);
        # a modulo partitioner would pile one class onto one shard.  The
        # hash spreads every class across all four shards.
        for klass in range(10):
            shards_of_class = {
                shard_of_node(node_id, 4) for node_id in range(klass, 1000, 10)
            }
            assert shards_of_class == {0, 1, 2, 3}
