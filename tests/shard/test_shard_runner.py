"""Unit tests for the shard runner: router, coordinator, merge, entry point.

The equivalence property suite (``tests/properties/test_shard_equivalence``)
pins the end-to-end contract; these tests pin the individual moving parts
and — above all — the error paths, which a passing parity run never
exercises: protocol violations, diverged control planes, worker crashes.
"""

import dataclasses

import pytest

import repro.shard.runner as runner_module
from repro.network.message import Message
from repro.scenarios.builder import SessionBuilder
from repro.scenarios.registry import build_scenario
from repro.shard.partition import shard_lookup
from repro.shard.runner import (
    ShardProtocolError,
    _Coordinator,
    _run_threaded,
    merge_shard_results,
    run_sharded,
)
from repro.shard.session import (
    ShardRouter,
    WindowReport,
    conservative_lookahead,
    session_horizon,
)


def small_config(num_nodes=8, shards=2, seed=3):
    spec = build_scenario("homogeneous", num_nodes=num_nodes, seed=seed, shards=shards)
    return SessionBuilder.from_spec(spec).to_config()


def message(sender, receiver):
    return Message(sender=sender, receiver=receiver, kind="serve", size_bytes=100)


class FakeNetwork:
    def __init__(self):
        self.delivered = []

    def schedule_delivery(self, msg, deliver_time):
        self.delivered.append((deliver_time, msg))


class TestShardRouter:
    # Pinned placement for 4 nodes, 2 shards: shard 0 owns {0, 1}, shard 1
    # owns {2, 3} (see tests/shard/test_partition.py).
    LOOKUP = [0, 0, 1, 1]

    def test_local_datagrams_schedule_immediately(self):
        network = FakeNetwork()
        router = ShardRouter(network, shard_id=0, lookup=self.LOOKUP)
        router.dispatch(message(0, 1), 1.5)
        assert network.delivered == [(1.5, message(0, 1))]
        assert router.flush() == {}

    def test_remote_datagrams_batch_with_monotone_seq(self):
        network = FakeNetwork()
        router = ShardRouter(network, shard_id=0, lookup=self.LOOKUP, wire="legacy")
        first, second = message(0, 2), message(1, 3)
        router.dispatch(first, 2.0)
        router.dispatch(second, 1.0)  # earlier time, later seq: order kept
        assert network.delivered == []
        assert router.flush() == {1: [(2.0, 0, 1, first), (1.0, 1, 2, second)]}

    def test_flush_clears_but_seq_keeps_counting(self):
        router = ShardRouter(FakeNetwork(), shard_id=0, lookup=self.LOOKUP, wire="legacy")
        router.dispatch(message(0, 2), 1.0)
        assert [seq for _, _, seq, _ in router.flush()[1]] == [1]
        router.dispatch(message(0, 3), 2.0)
        # Seq is a per-shard lifetime counter: uniqueness must span windows.
        assert [seq for _, _, seq, _ in router.flush()[1]] == [2]
        assert router.flush() == {}

    def test_compact_flush_packs_batches_that_decode_exactly(self):
        from repro.shard.wire import WireBatch, decode_batch

        router = ShardRouter(FakeNetwork(), shard_id=0, lookup=self.LOOKUP)
        first, second = message(0, 2), message(1, 3)
        router.dispatch(first, 2.0)
        router.dispatch(second, 1.0)
        batches = router.flush()
        assert set(batches) == {1}
        assert isinstance(batches[1], WireBatch)
        assert decode_batch(batches[1]) == [(2.0, 0, 1, first), (1.0, 1, 2, second)]

    def test_batches_split_per_destination_shard(self):
        lookup = [0, 1, 1, 2]  # three shards, shard 0 owns only node 0
        router = ShardRouter(FakeNetwork(), shard_id=0, lookup=lookup, wire="legacy")
        router.dispatch(message(0, 1), 1.0)
        router.dispatch(message(0, 3), 2.0)
        router.dispatch(message(0, 2), 3.0)
        batches = router.flush()
        assert set(batches) == {1, 2}
        assert [d[3].receiver for d in batches[1]] == [1, 2]
        assert [d[3].receiver for d in batches[2]] == [3]


def owned_node(config, shard_id, index=0):
    """The index-th node a shard owns under the config's partition."""
    lookup = shard_lookup(config.num_nodes, config.shards)
    owned = [n for n in range(config.num_nodes) if lookup[n] == shard_id]
    return owned[index]


class TestCoordinator:
    def coordinator(self, config=None):
        config = config or small_config()
        return _Coordinator(config, config.shards), config

    def report(self, shard_id, bound, outbound=None, peek=None):
        return WindowReport(
            shard_id=shard_id,
            bound=bound,
            outbound=dict(outbound or {}),
            peek_time=peek,
        )

    def cross_datagram(self, config, deliver_time=2.0, seq=1):
        """A valid shard-0 → shard-1 datagram under the config's partition."""
        sender = owned_node(config, 0)
        receiver = owned_node(config, 1)
        return (deliver_time, sender, seq, message(sender, receiver))

    def test_wrong_report_count_rejected(self):
        coordinator, _ = self.coordinator()
        with pytest.raises(ShardProtocolError, match="expected 2 window reports"):
            coordinator.replies([self.report(0, 1.0)])

    def test_invalid_shard_id_set_rejected(self):
        coordinator, _ = self.coordinator()
        with pytest.raises(ShardProtocolError, match="invalid shard ids"):
            coordinator.replies([self.report(0, 1.0), self.report(0, 1.0)])

    def test_diverged_bounds_rejected(self):
        coordinator, _ = self.coordinator()
        with pytest.raises(ShardProtocolError, match="bounds diverged"):
            coordinator.replies([self.report(0, 1.0), self.report(1, 1.5)])

    def test_report_must_echo_the_issued_bound(self):
        coordinator, config = self.coordinator()
        first = coordinator.replies(
            [self.report(0, 1.0, peek=5.0), self.report(1, 1.0, peek=5.0)]
        )
        with pytest.raises(ShardProtocolError, match="coordinator issued"):
            coordinator.replies(
                [
                    self.report(0, first[0].next_bound + 0.5),
                    self.report(1, first[1].next_bound),
                ]
            )

    def test_bounds_widen_per_shard_beyond_global_minimum(self):
        coordinator, config = self.coordinator()
        lookahead = conservative_lookahead(config)
        until = session_horizon(config)
        replies = coordinator.replies(
            [self.report(0, 1.0, peek=7.0), self.report(1, 1.0, peek=5.0)]
        )
        old_common_bound = min(until, 5.0 + lookahead)
        # Shard 0 is constrained by shard 1's earlier event (one hop away);
        # shard 1 only by shard 0's event (one hop) or its own reflected
        # traffic (two hops) — so its window is wider than the old global
        # bound ever allowed.
        assert replies[0].next_bound == min(until, 5.0 + lookahead, 7.0 + 2 * lookahead)
        assert replies[1].next_bound == min(until, 7.0 + lookahead, 5.0 + 2 * lookahead)
        assert replies[1].next_bound > old_common_bound
        assert not any(reply.done for reply in replies)

    def test_in_flight_datagram_caps_the_receiver_bound(self):
        coordinator, config = self.coordinator()
        lookahead = conservative_lookahead(config)
        until = session_horizon(config)
        datagram = self.cross_datagram(config, deliver_time=2.0)
        replies = coordinator.replies(
            [
                self.report(0, 1.0, outbound={1: [datagram]}, peek=9.0),
                self.report(1, 1.0),
            ]
        )
        # The in-flight datagram makes 2.0 shard 1's effective pending time.
        assert replies[0].next_bound == min(until, 2.0 + lookahead, 9.0 + 2 * lookahead)
        assert replies[1].next_bound == min(until, 9.0 + lookahead, 2.0 + 2 * lookahead)

    def test_single_shard_jumps_to_horizon_despite_pending_events(self):
        config = small_config(shards=1)
        coordinator = _Coordinator(config, 1)
        replies = coordinator.replies([self.report(0, 1.0, peek=2.0)])
        # No other shard can ever influence it: one window to the horizon.
        assert replies[0].next_bound == session_horizon(config)

    def test_datagrams_route_to_receiver_shard(self):
        coordinator, config = self.coordinator()
        to_one = self.cross_datagram(config)
        replies = coordinator.replies(
            [self.report(0, 1.0, outbound={1: [to_one]}), self.report(1, 1.0)]
        )
        assert replies[0].inbound == []
        assert replies[1].inbound == [[to_one]]

    def test_compact_batches_forwarded_without_decoding(self):
        from repro.shard.wire import encode_batch

        coordinator, config = self.coordinator()
        batch = encode_batch([self.cross_datagram(config)])
        replies = coordinator.replies(
            [self.report(0, 1.0, outbound={1: batch}), self.report(1, 1.0)]
        )
        assert replies[1].inbound == [batch]
        assert replies[1].inbound[0] is batch

    def test_unknown_receiver_named_in_error(self):
        coordinator, config = self.coordinator()
        sender = owned_node(config, 0)
        bogus = (2.0, sender, 1, message(sender, 999))
        with pytest.raises(ShardProtocolError, match="unknown receiver 999"):
            coordinator.replies(
                [self.report(0, 1.0, outbound={1: [bogus]}), self.report(1, 1.0)]
            )

    def test_misrouted_batch_named_in_error(self):
        coordinator, config = self.coordinator()
        sender = owned_node(config, 0)
        local = owned_node(config, 0, index=1)
        misrouted = (2.0, sender, 1, message(sender, local))
        with pytest.raises(ShardProtocolError, match="misrouted datagram #0"):
            coordinator.replies(
                [self.report(0, 1.0, outbound={1: [misrouted]}), self.report(1, 1.0)]
            )

    def test_misrouted_compact_batch_detected_too(self):
        from repro.shard.wire import encode_batch

        coordinator, config = self.coordinator()
        sender = owned_node(config, 0)
        local = owned_node(config, 0, index=1)
        batch = encode_batch([(2.0, sender, 1, message(sender, local))])
        with pytest.raises(ShardProtocolError, match="misrouted datagram #0"):
            coordinator.replies(
                [self.report(0, 1.0, outbound={1: batch}), self.report(1, 1.0)]
            )

    def test_foreign_sender_rejected(self):
        coordinator, config = self.coordinator()
        intruder = owned_node(config, 1)  # shard 0 reporting shard 1's node
        receiver = owned_node(config, 1, index=1)
        forged = (2.0, intruder, 1, message(intruder, receiver))
        with pytest.raises(ShardProtocolError, match="does not own"):
            coordinator.replies(
                [self.report(0, 1.0, outbound={1: [forged]}), self.report(1, 1.0)]
            )

    def test_invalid_destination_shard_rejected(self):
        coordinator, config = self.coordinator()
        datagram = self.cross_datagram(config)
        with pytest.raises(ShardProtocolError, match="invalid shard 5"):
            coordinator.replies(
                [self.report(0, 1.0, outbound={5: [datagram]}), self.report(1, 1.0)]
            )

    def test_self_addressed_batch_rejected(self):
        coordinator, config = self.coordinator()
        sender = owned_node(config, 0)
        local = owned_node(config, 0, index=1)
        datagram = (2.0, sender, 1, message(sender, local))
        with pytest.raises(ShardProtocolError, match="itself"):
            coordinator.replies(
                [self.report(0, 1.0, outbound={0: [datagram]}), self.report(1, 1.0)]
            )

    def test_empty_system_jumps_straight_to_horizon(self):
        coordinator, config = self.coordinator()
        replies = coordinator.replies([self.report(0, 1.0), self.report(1, 1.0)])
        assert all(reply.next_bound == session_horizon(config) for reply in replies)
        assert not any(reply.done for reply in replies)

    def test_drain_finishes_only_when_idle(self):
        coordinator, config = self.coordinator()
        until = session_horizon(config)
        # Still moving a datagram at the horizon: not done.
        moving = coordinator.replies(
            [
                self.report(
                    0,
                    until,
                    outbound={1: [self.cross_datagram(config, deliver_time=until)]},
                ),
                self.report(1, until),
            ]
        )
        assert not any(reply.done for reply in moving)
        # An event past the horizon does not hold the run open.
        idle = coordinator.replies(
            [self.report(0, until, peek=until + 1.0), self.report(1, until)]
        )
        assert all(reply.done for reply in idle)
        # An event at or below the horizon does.
        pending = coordinator.replies(
            [self.report(0, until, peek=until), self.report(1, until)]
        )
        assert not any(reply.done for reply in pending)


class TestMergeShardResults:
    @pytest.fixture(scope="class")
    def run(self):
        config = small_config()
        return config, _run_threaded(config, config.shards, "compact")

    def test_fragments_merge_cleanly(self, run):
        config, fragments = run
        merged = merge_shard_results(config, fragments)
        assert merged.deliveries.total_deliveries > 0
        assert merged.events_processed > 0

    def test_empty_fragment_list_rejected(self, run):
        config, _ = run
        with pytest.raises(ValueError, match="empty"):
            merge_shard_results(config, [])

    def test_incomplete_fragment_set_rejected(self, run):
        config, fragments = run
        with pytest.raises(ShardProtocolError, match="incomplete shard results"):
            merge_shard_results(config, fragments[:1])
        with pytest.raises(ShardProtocolError, match="incomplete shard results"):
            merge_shard_results(config, [fragments[0], fragments[0]])

    def test_ownership_violation_rejected(self, run):
        config, fragments = run
        intruder = fragments[1].owned[0]
        tampered = dataclasses.replace(
            fragments[0],
            deliveries=_copy_deliveries(config, fragments[0], extra=(intruder, 0, 1.0)),
        )
        with pytest.raises(ShardProtocolError, match="owned by shard"):
            merge_shard_results(config, [tampered, fragments[1]])

    def test_diverged_control_plane_rejected(self, run):
        config, fragments = run
        for field_name, value, match in (
            ("failed_nodes", [99], "failure history"),
            ("late_joiners", [99], "late-joiner set"),
            ("control_events", fragments[1].control_events + 1, "control-event count"),
            ("end_time", fragments[1].end_time + 1.0, "session end time"),
        ):
            tampered = dataclasses.replace(fragments[1], **{field_name: value})
            with pytest.raises(ShardProtocolError, match=match):
                merge_shard_results(config, [fragments[0], tampered])

    def test_merge_accepts_fragments_in_any_order(self, run):
        config, fragments = run
        forward = merge_shard_results(config, list(fragments))
        reverse = merge_shard_results(config, list(reversed(fragments)))
        assert forward.events_processed == reverse.events_processed
        assert forward.deliveries.total_deliveries == reverse.deliveries.total_deliveries


def _copy_deliveries(config, fragment, extra):
    """A fresh DeliveryLog replaying a fragment's records plus one intruder."""
    from repro.metrics.delivery import DeliveryLog
    from repro.streaming.schedule import StreamSchedule

    log = DeliveryLog(StreamSchedule(config.stream))
    for node_id, node_log in fragment.deliveries.raw().items():
        for packet_id, delivered_at in node_log.items():
            log.record(node_id, packet_id, delivered_at)
    node_id, packet_id, delivered_at = extra
    log.record(node_id, packet_id, delivered_at)
    return log


class TestRunShardedValidation:
    def test_needs_a_shard_count_somewhere(self):
        config = small_config()
        config = dataclasses.replace(config, shards=None)
        with pytest.raises(ValueError, match="shard count"):
            run_sharded(config)

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            run_sharded(small_config(), shards=0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown sharded runner mode"):
            run_sharded(small_config(), mode="fiber")

    def test_rejects_unknown_wire_format(self):
        with pytest.raises(ValueError, match="unknown wire format"):
            run_sharded(small_config(), wire="msgpack")

    def test_argument_overrides_config_shard_count(self):
        result = run_sharded(small_config(shards=2), shards=1)
        assert result.config.shards == 1

    def test_unshardable_latency_model_fails_fast(self):
        config = small_config()
        network = dataclasses.replace(
            config.network, latency_model="constant", base_latency=0.0
        )
        config = dataclasses.replace(config, network=network)
        with pytest.raises(ValueError, match="min_latency"):
            conservative_lookahead(config)


class TestWorkerFailure:
    def test_thread_worker_crash_reraises_original_and_joins(self, monkeypatch):
        import threading

        real = runner_module.run_shard_worker

        def explode(config, shard_id, num_shards, channel, wire="compact"):
            if shard_id == 1:
                raise RuntimeError(f"shard {shard_id} corrupted")
            return real(config, shard_id, num_shards, channel, wire=wire)

        monkeypatch.setattr(runner_module, "run_shard_worker", explode)
        # The *original* worker exception surfaces, not a wrapped protocol
        # error — the caller debugs the actual failure.
        with pytest.raises(RuntimeError, match="shard 1 corrupted"):
            run_sharded(small_config(), mode="thread")
        # abort() must join the survivors: a failed run in a long-lived
        # process (pytest, sweeps) may not leak daemon threads blocked on
        # queue.get().
        leaked = [t for t in threading.enumerate() if t.name.startswith("shard-")]
        assert leaked == []

    def test_process_worker_death_raises_clean_protocol_error(self, monkeypatch):
        import multiprocessing
        import os

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("monkeypatched worker needs fork start method")

        real = runner_module.run_shard_worker

        def die(config, shard_id, num_shards, channel, wire="compact"):
            if shard_id == 1:
                os._exit(17)  # simulates an OOM-kill / hard crash
            return real(config, shard_id, num_shards, channel, wire=wire)

        monkeypatch.setattr(runner_module, "run_shard_worker", die)
        with pytest.raises(ShardProtocolError, match="shard 1 died without reporting"):
            run_sharded(small_config(), mode="process")
        # No zombie workers left behind.
        assert not [p for p in multiprocessing.active_children() if p.is_alive()]
