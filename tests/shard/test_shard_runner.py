"""Unit tests for the shard runner: router, coordinator, merge, entry point.

The equivalence property suite (``tests/properties/test_shard_equivalence``)
pins the end-to-end contract; these tests pin the individual moving parts
and — above all — the error paths, which a passing parity run never
exercises: protocol violations, diverged control planes, worker crashes.
"""

import dataclasses

import pytest

import repro.shard.runner as runner_module
from repro.network.message import Message
from repro.scenarios.builder import SessionBuilder
from repro.scenarios.registry import build_scenario
from repro.shard.partition import shard_lookup
from repro.shard.runner import (
    ShardProtocolError,
    _Coordinator,
    _run_threaded,
    merge_shard_results,
    run_sharded,
)
from repro.shard.session import (
    ShardRouter,
    WindowReport,
    conservative_lookahead,
    session_horizon,
)


def small_config(num_nodes=8, shards=2, seed=3):
    spec = build_scenario("homogeneous", num_nodes=num_nodes, seed=seed, shards=shards)
    return SessionBuilder.from_spec(spec).to_config()


def message(sender, receiver):
    return Message(sender=sender, receiver=receiver, kind="serve", size_bytes=100)


class FakeNetwork:
    def __init__(self):
        self.delivered = []

    def schedule_delivery(self, msg, deliver_time):
        self.delivered.append((deliver_time, msg))


class TestShardRouter:
    # Pinned placement for 4 nodes, 2 shards: shard 0 owns {0, 1}, shard 1
    # owns {2, 3} (see tests/shard/test_partition.py).
    LOOKUP = [0, 0, 1, 1]

    def test_local_datagrams_schedule_immediately(self):
        network = FakeNetwork()
        router = ShardRouter(network, shard_id=0, lookup=self.LOOKUP)
        router.dispatch(message(0, 1), 1.5)
        assert network.delivered == [(1.5, message(0, 1))]
        assert router.flush() == []

    def test_remote_datagrams_batch_with_monotone_seq(self):
        network = FakeNetwork()
        router = ShardRouter(network, shard_id=0, lookup=self.LOOKUP)
        first, second = message(0, 2), message(1, 3)
        router.dispatch(first, 2.0)
        router.dispatch(second, 1.0)  # earlier time, later seq: order kept
        assert network.delivered == []
        batch = router.flush()
        assert batch == [(2.0, 0, 1, first), (1.0, 1, 2, second)]

    def test_flush_clears_but_seq_keeps_counting(self):
        router = ShardRouter(FakeNetwork(), shard_id=0, lookup=self.LOOKUP)
        router.dispatch(message(0, 2), 1.0)
        assert [seq for _, _, seq, _ in router.flush()] == [1]
        router.dispatch(message(0, 3), 2.0)
        # Seq is a per-shard lifetime counter: uniqueness must span windows.
        assert [seq for _, _, seq, _ in router.flush()] == [2]
        assert router.flush() == []


class TestCoordinator:
    def coordinator(self, config=None):
        config = config or small_config()
        return _Coordinator(config, config.shards), config

    def report(self, shard_id, bound, outbound=(), peek=None):
        return WindowReport(
            shard_id=shard_id, bound=bound, outbound=list(outbound), peek_time=peek
        )

    def test_wrong_report_count_rejected(self):
        coordinator, _ = self.coordinator()
        with pytest.raises(ShardProtocolError, match="expected 2 window reports"):
            coordinator.replies([self.report(0, 1.0)])

    def test_diverged_bounds_rejected(self):
        coordinator, _ = self.coordinator()
        with pytest.raises(ShardProtocolError, match="bounds diverged"):
            coordinator.replies([self.report(0, 1.0), self.report(1, 1.5)])

    def test_bound_jumps_to_global_minimum_plus_lookahead(self):
        coordinator, config = self.coordinator()
        lookahead = conservative_lookahead(config)
        replies = coordinator.replies(
            [self.report(0, 1.0, peek=7.0), self.report(1, 1.0, peek=5.0)]
        )
        assert all(reply.next_bound == 5.0 + lookahead for reply in replies)
        assert not any(reply.done for reply in replies)

    def test_in_flight_datagram_caps_the_bound(self):
        coordinator, config = self.coordinator()
        lookahead = conservative_lookahead(config)
        datagram = (2.0, 0, 1, message(0, 2))
        replies = coordinator.replies(
            [self.report(0, 1.0, outbound=[datagram], peek=9.0), self.report(1, 1.0)]
        )
        assert all(reply.next_bound == 2.0 + lookahead for reply in replies)

    def test_datagrams_route_to_receiver_shard(self):
        coordinator, config = self.coordinator()
        lookup = shard_lookup(config.num_nodes, config.shards)
        to_one = (2.0, 0, 1, message(0, 2))
        assert lookup[2] == 1
        replies = coordinator.replies(
            [self.report(0, 1.0, outbound=[to_one]), self.report(1, 1.0)]
        )
        assert replies[0].inbound == []
        assert replies[1].inbound == [to_one]

    def test_empty_system_jumps_straight_to_horizon(self):
        coordinator, config = self.coordinator()
        replies = coordinator.replies([self.report(0, 1.0), self.report(1, 1.0)])
        assert all(reply.next_bound == session_horizon(config) for reply in replies)
        assert not any(reply.done for reply in replies)

    def test_drain_finishes_only_when_idle(self):
        coordinator, config = self.coordinator()
        until = session_horizon(config)
        # Still moving a datagram at the horizon: not done.
        moving = coordinator.replies(
            [
                self.report(0, until, outbound=[(until, 0, 1, message(0, 2))]),
                self.report(1, until),
            ]
        )
        assert not any(reply.done for reply in moving)
        # An event past the horizon does not hold the run open.
        idle = coordinator.replies(
            [self.report(0, until, peek=until + 1.0), self.report(1, until)]
        )
        assert all(reply.done for reply in idle)
        # An event at or below the horizon does.
        pending = coordinator.replies(
            [self.report(0, until, peek=until), self.report(1, until)]
        )
        assert not any(reply.done for reply in pending)


class TestMergeShardResults:
    @pytest.fixture(scope="class")
    def run(self):
        config = small_config()
        return config, _run_threaded(config, config.shards)

    def test_fragments_merge_cleanly(self, run):
        config, fragments = run
        merged = merge_shard_results(config, fragments)
        assert merged.deliveries.total_deliveries > 0
        assert merged.events_processed > 0

    def test_empty_fragment_list_rejected(self, run):
        config, _ = run
        with pytest.raises(ValueError, match="empty"):
            merge_shard_results(config, [])

    def test_incomplete_fragment_set_rejected(self, run):
        config, fragments = run
        with pytest.raises(ShardProtocolError, match="incomplete shard results"):
            merge_shard_results(config, fragments[:1])
        with pytest.raises(ShardProtocolError, match="incomplete shard results"):
            merge_shard_results(config, [fragments[0], fragments[0]])

    def test_ownership_violation_rejected(self, run):
        config, fragments = run
        intruder = fragments[1].owned[0]
        tampered = dataclasses.replace(
            fragments[0],
            deliveries=_copy_deliveries(config, fragments[0], extra=(intruder, 0, 1.0)),
        )
        with pytest.raises(ShardProtocolError, match="owned by shard"):
            merge_shard_results(config, [tampered, fragments[1]])

    def test_diverged_control_plane_rejected(self, run):
        config, fragments = run
        for field_name, value, match in (
            ("failed_nodes", [99], "failure history"),
            ("late_joiners", [99], "late-joiner set"),
            ("control_events", fragments[1].control_events + 1, "control-event count"),
            ("end_time", fragments[1].end_time + 1.0, "session end time"),
        ):
            tampered = dataclasses.replace(fragments[1], **{field_name: value})
            with pytest.raises(ShardProtocolError, match=match):
                merge_shard_results(config, [fragments[0], tampered])

    def test_merge_accepts_fragments_in_any_order(self, run):
        config, fragments = run
        forward = merge_shard_results(config, list(fragments))
        reverse = merge_shard_results(config, list(reversed(fragments)))
        assert forward.events_processed == reverse.events_processed
        assert forward.deliveries.total_deliveries == reverse.deliveries.total_deliveries


def _copy_deliveries(config, fragment, extra):
    """A fresh DeliveryLog replaying a fragment's records plus one intruder."""
    from repro.metrics.delivery import DeliveryLog
    from repro.streaming.schedule import StreamSchedule

    log = DeliveryLog(StreamSchedule(config.stream))
    for node_id, node_log in fragment.deliveries.raw().items():
        for packet_id, delivered_at in node_log.items():
            log.record(node_id, packet_id, delivered_at)
    node_id, packet_id, delivered_at = extra
    log.record(node_id, packet_id, delivered_at)
    return log


class TestRunShardedValidation:
    def test_needs_a_shard_count_somewhere(self):
        config = small_config()
        config = dataclasses.replace(config, shards=None)
        with pytest.raises(ValueError, match="shard count"):
            run_sharded(config)

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            run_sharded(small_config(), shards=0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown sharded runner mode"):
            run_sharded(small_config(), mode="fiber")

    def test_argument_overrides_config_shard_count(self):
        result = run_sharded(small_config(shards=2), shards=1)
        assert result.config.shards == 1

    def test_unshardable_latency_model_fails_fast(self):
        config = small_config()
        network = dataclasses.replace(
            config.network, latency_model="constant", base_latency=0.0
        )
        config = dataclasses.replace(config, network=network)
        with pytest.raises(ValueError, match="min_latency"):
            conservative_lookahead(config)


class TestWorkerFailure:
    def test_thread_worker_crash_surfaces_as_protocol_error(self, monkeypatch):
        def explode(config, shard_id, num_shards, channel):
            raise RuntimeError(f"shard {shard_id} corrupted")

        monkeypatch.setattr(runner_module, "run_shard_worker", explode)
        with pytest.raises(ShardProtocolError, match="worker failed"):
            run_sharded(small_config(), mode="thread")
