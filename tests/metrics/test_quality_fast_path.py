"""Pin the one-pass quality analyzer against the reference implementation.

The fast :class:`~repro.metrics.quality.StreamQualityAnalyzer` precomputes
per-node sorted window-critical lags; the pre-fast-path
:class:`~repro.metrics.reference.ReferenceQualityAnalyzer` re-derives every
quantity by scanning windows per call.  Both must agree *float-for-float* on
every public quantity, for bound and unbound delivery logs, including the
degenerate cases (empty nodes, undecodable windows, offline lag).
"""

import math
import random

import pytest

from repro.metrics.delivery import DeliveryLog
from repro.metrics.quality import OFFLINE_LAG, StreamQualityAnalyzer
from repro.metrics.reference import ReferenceQualityAnalyzer
from repro.streaming.schedule import StreamConfig, StreamSchedule


@pytest.fixture(scope="module")
def schedule() -> StreamSchedule:
    return StreamSchedule(
        StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=5,
            fec_packets_per_window=2,
            num_windows=8,
        )
    )


def random_log(schedule, nodes, seed, bound):
    """A randomized partial delivery log: per-packet loss and random lag."""
    rng = random.Random(seed)
    log = DeliveryLog(schedule) if bound else DeliveryLog()
    for node_id in nodes:
        for packet in schedule.packets():
            roll = rng.random()
            if roll < 0.25:
                continue  # lost
            lag = rng.uniform(0.0, 40.0) if roll < 0.8 else rng.uniform(40.0, 400.0)
            log.record(node_id, packet.packet_id, packet.publish_time + lag)
    return log


LAG_PROBES = [0.0, 0.5, 1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 399.0, OFFLINE_LAG]


@pytest.mark.parametrize("bound", [True, False], ids=["bound-log", "unbound-log"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fast_analyzer_matches_reference(schedule, seed, bound):
    nodes = [1, 2, 3, 4, 5]
    log = random_log(schedule, nodes[:-1], seed, bound)  # node 5: no deliveries
    fast = StreamQualityAnalyzer(schedule, log, nodes)
    reference = ReferenceQualityAnalyzer(schedule, log, nodes)

    for node_id in nodes:
        for window_index in range(schedule.num_windows):
            assert fast.window_critical_lag(node_id, window_index) == reference.window_critical_lag(
                node_id, window_index
            )
            for lag in LAG_PROBES:
                assert fast.window_viewable(node_id, window_index, lag) == reference.window_viewable(
                    node_id, window_index, lag
                ), (node_id, window_index, lag)
        for lag in LAG_PROBES:
            assert fast.node_jitter(node_id, lag) == reference.node_jitter(node_id, lag)
            assert fast.node_complete_window_ratio(node_id, lag) == reference.node_complete_window_ratio(
                node_id, lag
            )
        for max_jitter in (0.01, 0.1, 0.5):
            assert fast.node_critical_lag(node_id, max_jitter) == reference.node_critical_lag(
                node_id, max_jitter
            )
        assert fast.delivery_ratio(node_id) == reference.delivery_ratio(node_id)

    for lag in LAG_PROBES:
        assert fast.viewing_ratio(lag) == reference.viewing_ratio(lag)
        assert fast.average_complete_window_ratio(lag) == reference.average_complete_window_ratio(lag)
    assert fast.critical_lags() == reference.critical_lags()
    grid = [0.0, 1.0, 2.0, 5.0, 20.0, 80.0, 200.0, 500.0]
    assert fast.lag_cdf(grid) == reference.lag_cdf(grid)


def test_curves_match_pointwise_queries(schedule):
    log = random_log(schedule, [1, 2, 3], seed=7, bound=True)
    analyzer = StreamQualityAnalyzer(schedule, log, [1, 2, 3])
    lags = [0.0, 2.0, 10.0, OFFLINE_LAG]
    assert analyzer.viewing_ratio_curve(lags) == [
        (lag, analyzer.viewing_ratio(lag)) for lag in lags
    ]
    assert analyzer.complete_window_curve(lags) == [
        (lag, analyzer.average_complete_window_ratio(lag)) for lag in lags
    ]


def test_bound_log_backfills_existing_entries(schedule):
    """bind_schedule after recording must equal binding before recording."""
    early = DeliveryLog(schedule)
    late = DeliveryLog()
    rng = random.Random(3)
    for node_id in (1, 2):
        for packet in schedule.packets():
            if rng.random() < 0.3:
                continue
            time = packet.publish_time + rng.uniform(0.0, 9.0)
            early.record(node_id, packet.packet_id, time)
            late.record(node_id, packet.packet_id, time)
    late.bind_schedule(schedule)
    for node_id in (1, 2):
        assert [list(w) for w in early.window_lags_of(node_id)] == [
            list(w) for w in late.window_lags_of(node_id)
        ]


def test_unbound_log_has_no_window_lags():
    assert DeliveryLog().window_lags_of(1) is None


def test_out_of_schedule_packets_are_ignored_by_the_fast_path(schedule):
    log = DeliveryLog(schedule)
    log.record(1, schedule.num_packets + 5, 1.0)  # beyond the stream
    fast = StreamQualityAnalyzer(schedule, log, [1])
    reference = ReferenceQualityAnalyzer(schedule, log, [1])
    assert fast.node_jitter(1, OFFLINE_LAG) == reference.node_jitter(1, OFFLINE_LAG) == 1.0


def test_empty_node_list_degenerate_cases(schedule):
    analyzer = StreamQualityAnalyzer(schedule, DeliveryLog(schedule), nodes=[])
    assert analyzer.viewing_ratio(1.0) == 0.0
    assert analyzer.lag_cdf([1.0]) == [0.0]
    assert analyzer.viewing_ratio_curve([1.0, math.inf]) == [(1.0, 0.0), (math.inf, 0.0)]
