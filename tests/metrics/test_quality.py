"""Unit tests for the stream quality / lag analyzer.

These tests build a tiny synthetic schedule (windows of 4 source + 1 FEC
packets) and hand-crafted delivery logs, so every expected value can be
computed by eye.
"""

import math

import pytest

from repro.metrics.delivery import DeliveryLog
from repro.metrics.quality import OFFLINE_LAG, StreamQualityAnalyzer
from repro.streaming.schedule import StreamConfig, StreamSchedule


@pytest.fixture
def schedule() -> StreamSchedule:
    return StreamSchedule(
        StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=4,
            fec_packets_per_window=1,
            num_windows=4,
        )
    )


def log_with_uniform_lag(schedule, node_id, lag, log=None):
    log = log if log is not None else DeliveryLog()
    for packet in schedule.packets():
        log.record(node_id, packet.packet_id, packet.publish_time + lag)
    return log


class TestWindowLevel:
    def test_window_viewable_with_all_packets(self, schedule):
        log = log_with_uniform_lag(schedule, node_id=1, lag=0.5)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1])
        assert analyzer.window_viewable(1, 0, lag=1.0)
        assert not analyzer.window_viewable(1, 0, lag=0.4)

    def test_window_viewable_with_fec_margin(self, schedule):
        log = DeliveryLog()
        window = schedule.window(0)
        for packet_id in window.packet_ids[1:]:  # lose packet 0
            log.record(1, packet_id, schedule.packet(packet_id).publish_time + 0.1)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1])
        assert analyzer.window_viewable(1, 0, lag=1.0)

    def test_window_not_viewable_with_two_losses(self, schedule):
        log = DeliveryLog()
        window = schedule.window(0)
        for packet_id in window.packet_ids[2:]:  # lose two packets
            log.record(1, packet_id, schedule.packet(packet_id).publish_time + 0.1)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1])
        assert not analyzer.window_viewable(1, 0, lag=OFFLINE_LAG)

    def test_window_critical_lag_is_kth_smallest(self, schedule):
        log = DeliveryLog()
        window = schedule.window(0)
        lags = [0.1, 0.2, 0.3, 0.4, 50.0]
        for packet_id, lag in zip(window.packet_ids, lags):
            log.record(1, packet_id, schedule.packet(packet_id).publish_time + lag)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1])
        # 4 packets are required; the 4th smallest per-packet lag is 0.4.
        assert analyzer.window_critical_lag(1, 0) == pytest.approx(0.4)

    def test_window_critical_lag_infinite_when_undecodable(self, schedule):
        log = DeliveryLog()
        log.record(1, 0, 0.1)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1])
        assert math.isinf(analyzer.window_critical_lag(1, 0))


class TestNodeLevel:
    def test_zero_jitter_when_everything_on_time(self, schedule):
        log = log_with_uniform_lag(schedule, 1, lag=0.2)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1])
        assert analyzer.node_jitter(1, lag=1.0) == 0.0
        assert analyzer.node_views_stream(1, lag=1.0)
        assert analyzer.node_complete_window_ratio(1, lag=1.0) == 1.0

    def test_full_jitter_when_nothing_delivered(self, schedule):
        analyzer = StreamQualityAnalyzer(schedule, DeliveryLog(), nodes=[1])
        assert analyzer.node_jitter(1, lag=OFFLINE_LAG) == 1.0
        assert not analyzer.node_views_stream(1, lag=OFFLINE_LAG)

    def test_partial_jitter(self, schedule):
        log = DeliveryLog()
        # Windows 0 and 1 fully on time; windows 2 and 3 missing entirely.
        for window_index in (0, 1):
            for packet_id in schedule.window(window_index).packet_ids:
                log.record(1, packet_id, schedule.packet(packet_id).publish_time + 0.1)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1])
        assert analyzer.node_jitter(1, lag=1.0) == pytest.approx(0.5)
        assert analyzer.node_complete_window_ratio(1, lag=1.0) == pytest.approx(0.5)

    def test_node_critical_lag_with_uniform_delay(self, schedule):
        log = log_with_uniform_lag(schedule, 1, lag=3.0)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1])
        assert analyzer.node_critical_lag(1) == pytest.approx(3.0)

    def test_node_critical_lag_dominated_by_worst_needed_window(self, schedule):
        log = DeliveryLog()
        for window_index in range(4):
            delay = 1.0 if window_index < 3 else 30.0
            for packet_id in schedule.window(window_index).packet_ids:
                log.record(1, packet_id, schedule.packet(packet_id).publish_time + delay)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1])
        # 99% of 4 windows rounds up to all 4 windows: the slow one dominates.
        assert analyzer.node_critical_lag(1) == pytest.approx(30.0)
        # Allowing 25% jitter lets the node ignore the slow window.
        assert analyzer.node_critical_lag(1, max_jitter=0.25) == pytest.approx(1.0)


class TestAggregates:
    def test_viewing_ratio_counts_good_nodes(self, schedule):
        log = DeliveryLog()
        log_with_uniform_lag(schedule, 1, lag=0.5, log=log)
        log_with_uniform_lag(schedule, 2, lag=50.0, log=log)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1, 2])
        assert analyzer.viewing_ratio(lag=1.0) == pytest.approx(0.5)
        assert analyzer.viewing_ratio(lag=OFFLINE_LAG) == pytest.approx(1.0)

    def test_viewing_ratio_with_node_subset(self, schedule):
        log = DeliveryLog()
        log_with_uniform_lag(schedule, 1, lag=0.5, log=log)
        log_with_uniform_lag(schedule, 2, lag=50.0, log=log)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1, 2])
        assert analyzer.viewing_ratio(lag=1.0, nodes=[1]) == pytest.approx(1.0)

    def test_average_complete_window_ratio(self, schedule):
        log = DeliveryLog()
        log_with_uniform_lag(schedule, 1, lag=0.1, log=log)  # all 4 windows
        # Node 2: only windows 0-1 delivered.
        for window_index in (0, 1):
            for packet_id in schedule.window(window_index).packet_ids:
                log.record(2, packet_id, schedule.packet(packet_id).publish_time + 0.1)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1, 2])
        assert analyzer.average_complete_window_ratio(lag=1.0) == pytest.approx(0.75)

    def test_lag_cdf_is_monotone_and_bounded(self, schedule):
        log = DeliveryLog()
        log_with_uniform_lag(schedule, 1, lag=2.0, log=log)
        log_with_uniform_lag(schedule, 2, lag=8.0, log=log)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1, 2])
        grid = [0.0, 1.0, 3.0, 10.0]
        cdf = analyzer.lag_cdf(grid)
        assert cdf == [0.0, 0.0, 0.5, 1.0]
        assert all(later >= earlier for earlier, later in zip(cdf, cdf[1:]))

    def test_delivery_ratio(self, schedule):
        log = DeliveryLog()
        log_with_uniform_lag(schedule, 1, lag=0.1, log=log)
        analyzer = StreamQualityAnalyzer(schedule, log, nodes=[1, 2])
        assert analyzer.delivery_ratio(1) == pytest.approx(1.0)
        assert analyzer.delivery_ratio(2) == 0.0

    def test_empty_node_list(self, schedule):
        analyzer = StreamQualityAnalyzer(schedule, DeliveryLog(), nodes=[])
        assert analyzer.viewing_ratio(lag=1.0) == 0.0
        assert analyzer.average_complete_window_ratio(lag=1.0) == 0.0
        assert analyzer.lag_cdf([1.0, 2.0]) == [0.0, 0.0]
