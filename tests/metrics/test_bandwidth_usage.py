"""Unit tests for the bandwidth usage analyzer (Figure 4's metric)."""

import pytest

from repro.metrics.bandwidth import BandwidthUsage
from repro.network.stats import TrafficStats


def stats_with_usage(usage_bytes: dict) -> TrafficStats:
    stats = TrafficStats()
    for node_id, total in usage_bytes.items():
        stats.record_sent(node_id, "serve", total)
    return stats


class TestBandwidthUsage:
    def test_node_upload_kbps(self):
        stats = stats_with_usage({1: 125_000})
        usage = BandwidthUsage(stats, duration_seconds=10.0)
        assert usage.node_upload_kbps(1) == pytest.approx(100.0)

    def test_sorted_usage_descending(self):
        stats = stats_with_usage({1: 1000, 2: 3000, 3: 2000})
        usage = BandwidthUsage(stats, duration_seconds=1.0)
        assert usage.sorted_usage() == [pytest.approx(24.0), pytest.approx(16.0), pytest.approx(8.0)]

    def test_mean_and_max(self):
        stats = stats_with_usage({1: 1000, 2: 3000})
        usage = BandwidthUsage(stats, duration_seconds=1.0)
        assert usage.mean_kbps() == pytest.approx(16.0)
        assert usage.max_kbps() == pytest.approx(24.0)

    def test_heterogeneity_zero_for_equal_contributions(self):
        stats = stats_with_usage({1: 1000, 2: 1000, 3: 1000})
        usage = BandwidthUsage(stats, duration_seconds=1.0)
        assert usage.heterogeneity() == pytest.approx(0.0)

    def test_heterogeneity_grows_with_imbalance(self):
        balanced = BandwidthUsage(stats_with_usage({1: 1000, 2: 1000}), 1.0)
        skewed = BandwidthUsage(stats_with_usage({1: 1900, 2: 100}), 1.0)
        assert skewed.heterogeneity() > balanced.heterogeneity()

    def test_top_contributor_share(self):
        stats = stats_with_usage({1: 8000, 2: 1000, 3: 1000})
        usage = BandwidthUsage(stats, duration_seconds=1.0)
        assert usage.top_contributor_share(top_fraction=1 / 3) == pytest.approx(0.8)

    def test_explicit_node_list_includes_idle_nodes(self):
        stats = stats_with_usage({1: 1000})
        usage = BandwidthUsage(stats, duration_seconds=1.0, nodes=[1, 2])
        per_node = usage.per_node()
        assert per_node[2] == 0.0
        assert len(per_node) == 2

    def test_filtered_view(self):
        stats = stats_with_usage({1: 1000, 2: 2000, 3: 3000})
        usage = BandwidthUsage(stats, duration_seconds=1.0)
        filtered = usage.filtered([1, 2])
        assert set(filtered.per_node()) == {1, 2}

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            BandwidthUsage(TrafficStats(), duration_seconds=0.0)

    def test_invalid_top_fraction_rejected(self):
        usage = BandwidthUsage(stats_with_usage({1: 100}), 1.0)
        with pytest.raises(ValueError):
            usage.top_contributor_share(top_fraction=0.0)

    def test_empty_stats(self):
        usage = BandwidthUsage(TrafficStats(), duration_seconds=1.0)
        assert usage.mean_kbps() == 0.0
        assert usage.max_kbps() == 0.0
        assert usage.heterogeneity() == 0.0
        assert usage.top_contributor_share() == 0.0
