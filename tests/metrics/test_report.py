"""Unit tests for series containers and text rendering."""

import math

import pytest

from repro.metrics.report import Series, format_series_table, format_table, percentage


class TestSeries:
    def test_add_and_access(self):
        series = Series(label="offline")
        series.add(7, 99.0)
        series.add(10, 80.0)
        assert series.xs() == [7, 10]
        assert series.ys() == [99.0, 80.0]
        assert series.y_at(10) == 80.0

    def test_y_at_missing_x_raises(self):
        series = Series(label="x")
        with pytest.raises(KeyError):
            series.y_at(3)

    def test_max_y_and_argmax(self):
        series = Series(label="x", points=[(1, 10.0), (2, 50.0), (3, 20.0)])
        assert series.max_y() == 50.0
        assert series.argmax_x() == 2

    def test_argmax_of_empty_series_raises(self):
        with pytest.raises(ValueError):
            Series(label="x").argmax_x()

    def test_max_y_of_empty_series_is_zero(self):
        assert Series(label="x").max_y() == 0.0


class TestFormatting:
    def test_format_table_aligns_columns(self):
        text = format_table(["fanout", "offline"], [[7, 99.5], [50, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "fanout" in lines[0]
        assert "99.5" in lines[2]
        assert "3.2" in lines[3] or "3.3" in lines[3]

    def test_format_table_handles_inf(self):
        text = format_table(["lag"], [[math.inf]])
        assert "inf" in text

    def test_format_series_table_merges_x_values(self):
        first = Series(label="a", points=[(1, 10.0), (2, 20.0)])
        second = Series(label="b", points=[(2, 5.0), (3, 6.0)])
        text = format_series_table([first, second], x_label="x")
        assert "a" in text and "b" in text
        # Missing combinations render as '-'.
        assert "-" in text
        assert text.splitlines()[0].startswith("x")

    def test_percentage(self):
        assert percentage(0.25) == 25.0
