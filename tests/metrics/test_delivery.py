"""Unit tests for the delivery log."""

from repro.metrics.delivery import DeliveryLog


class TestDeliveryLog:
    def test_record_and_query(self):
        log = DeliveryLog()
        log.record(1, 10, 2.5)
        assert log.delivery_time(1, 10) == 2.5
        assert log.packets_delivered(1) == 1
        assert log.total_deliveries == 1

    def test_duplicate_records_ignored(self):
        log = DeliveryLog()
        log.record(1, 10, 2.5)
        log.record(1, 10, 9.9)
        assert log.delivery_time(1, 10) == 2.5
        assert log.total_deliveries == 1

    def test_callable_interface(self):
        log = DeliveryLog()
        log(2, 5, 1.0)
        assert log.delivery_time(2, 5) == 1.0

    def test_unknown_queries_return_none_or_zero(self):
        log = DeliveryLog()
        assert log.delivery_time(1, 1) is None
        assert log.packets_delivered(1) == 0

    def test_nodes_listing(self):
        log = DeliveryLog()
        log.record(1, 0, 0.0)
        log.record(3, 0, 0.0)
        assert set(log.nodes()) == {1, 3}

    def test_deliveries_of_returns_copy(self):
        log = DeliveryLog()
        log.record(1, 0, 0.0)
        copy = log.deliveries_of(1)
        copy[99] = 1.0
        assert log.delivery_time(1, 99) is None

    def test_raw_reflects_all_entries(self):
        log = DeliveryLog()
        for node in range(3):
            for packet in range(4):
                log.record(node, packet, node + packet * 0.1)
        raw = log.raw()
        assert len(raw) == 3
        assert all(len(per_node) == 4 for per_node in raw.values())
