"""Unit tests for the in-flight loss models."""

import pytest

from repro.network.loss import CompositeLoss, NoLoss, PerNodeLoss, UniformLoss
from repro.network.message import Message
from repro.simulation.rng import RngRegistry


def make_message(receiver: int = 1) -> Message:
    return Message(sender=0, receiver=receiver, kind="serve", size_bytes=100)


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(5)


class TestNoLoss:
    def test_never_loses(self):
        model = NoLoss()
        assert not any(model.is_lost(make_message()) for _ in range(100))


class TestUniformLoss:
    def test_zero_probability_never_loses(self, rng):
        model = UniformLoss(rng, probability=0.0)
        assert not any(model.is_lost(make_message()) for _ in range(100))

    def test_one_probability_always_loses(self, rng):
        model = UniformLoss(rng, probability=1.0)
        assert all(model.is_lost(make_message()) for _ in range(100))

    def test_loss_rate_close_to_probability(self, rng):
        model = UniformLoss(rng, probability=0.2)
        losses = sum(model.is_lost(make_message()) for _ in range(5000))
        assert 0.15 < losses / 5000 < 0.25

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(ValueError):
            UniformLoss(rng, probability=1.5)


class TestPerNodeLoss:
    def test_uses_per_node_probability(self, rng):
        model = PerNodeLoss(rng, probabilities={1: 1.0, 2: 0.0}, default=0.0)
        assert model.is_lost(make_message(receiver=1))
        assert not model.is_lost(make_message(receiver=2))

    def test_default_applies_to_unknown_nodes(self, rng):
        model = PerNodeLoss(rng, probabilities={}, default=1.0)
        assert model.is_lost(make_message(receiver=99))

    def test_probability_for(self, rng):
        model = PerNodeLoss(rng, probabilities={3: 0.25}, default=0.05)
        assert model.probability_for(3) == 0.25
        assert model.probability_for(4) == 0.05

    def test_invalid_probability_rejected(self, rng):
        with pytest.raises(ValueError):
            PerNodeLoss(rng, probabilities={1: 2.0})


class TestCompositeLoss:
    def test_lost_if_any_component_loses(self, rng):
        always = UniformLoss(rng, probability=1.0)
        never = NoLoss()
        model = CompositeLoss([never, always])
        assert model.is_lost(make_message())

    def test_not_lost_if_no_component_loses(self):
        model = CompositeLoss([NoLoss(), NoLoss()])
        assert not model.is_lost(make_message())

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            CompositeLoss([])

    def test_describe_concatenates(self, rng):
        model = CompositeLoss([NoLoss(), UniformLoss(rng, 0.1)])
        assert "no random loss" in model.describe()
        assert "0.100" in model.describe()


class TestPerSenderLossStreams:
    """per_sender=True keys loss draws by the sending node — a sender's
    outcomes depend only on its own send history (placement invariance for
    the sharded runner), mirroring the latency models' mode."""

    def _interleaved(self, model, sender, count):
        outcomes = []
        for _ in range(count):
            model.is_lost(Message(sender=7, receiver=1, kind="serve", size_bytes=100))
            outcomes.append(
                model.is_lost(
                    Message(sender=sender, receiver=2, kind="serve", size_bytes=100)
                )
            )
        return outcomes

    def test_uniform_loss_draws_survive_interleaving(self):
        solo = UniformLoss(RngRegistry(9), probability=0.5, per_sender=True)
        message = Message(sender=1, receiver=2, kind="serve", size_bytes=100)
        expected = [solo.is_lost(message) for _ in range(32)]
        mixed = UniformLoss(RngRegistry(9), probability=0.5, per_sender=True)
        assert self._interleaved(mixed, sender=1, count=32) == expected

    def test_per_node_loss_draws_survive_interleaving(self):
        probabilities = {1: 0.5, 2: 0.5}
        solo = PerNodeLoss(RngRegistry(9), probabilities, default=0.5, per_sender=True)
        message = Message(sender=1, receiver=2, kind="serve", size_bytes=100)
        expected = [solo.is_lost(message) for _ in range(32)]
        mixed = PerNodeLoss(RngRegistry(9), probabilities, default=0.5, per_sender=True)
        assert self._interleaved(mixed, sender=1, count=32) == expected

    def test_certain_outcomes_need_no_stream(self):
        # p == 0 short-circuits before touching any RNG, in both modes.
        model = UniformLoss(RngRegistry(9), probability=0.0, per_sender=True)
        assert not any(model.is_lost(make_message()) for _ in range(50))
