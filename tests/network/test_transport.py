"""Unit tests for the network transport."""

import pytest

from repro.network.bandwidth import BandwidthCap
from repro.network.latency import ConstantLatency
from repro.network.loss import UniformLoss
from repro.network.message import Message
from repro.network.transport import Network, NetworkConfig
from repro.simulation.rng import RngRegistry


class Recorder:
    """Minimal endpoint: records (message, time) pairs."""

    def __init__(self, simulator):
        self.simulator = simulator
        self.received = []

    def __call__(self, message):
        self.received.append((message, self.simulator.now))


def build_network(simulator, latency=None, loss=None):
    return Network(simulator, latency_model=latency or ConstantLatency(0.05), loss_model=loss)


class TestRegistration:
    def test_register_and_send(self, simulator):
        network = build_network(simulator)
        receiver = Recorder(simulator)
        network.register(0, lambda m: None)
        network.register(1, receiver)
        assert network.is_registered(1)
        assert network.is_alive(1)

        accepted = network.send(Message(sender=0, receiver=1, kind="propose", size_bytes=100))
        assert accepted
        simulator.run_until_idle()
        assert len(receiver.received) == 1

    def test_double_registration_rejected(self, simulator):
        network = build_network(simulator)
        network.register(0, lambda m: None)
        with pytest.raises(ValueError):
            network.register(0, lambda m: None)

    def test_unregistered_node_is_not_alive(self, simulator):
        network = build_network(simulator)
        assert not network.is_alive(42)


class TestDeliveryTiming:
    def test_latency_applied(self, simulator):
        network = build_network(simulator, latency=ConstantLatency(0.2))
        receiver = Recorder(simulator)
        network.register(0, lambda m: None)
        network.register(1, receiver)
        network.send(Message(sender=0, receiver=1, kind="propose", size_bytes=100))
        simulator.run_until_idle()
        __, time = receiver.received[0]
        assert time == pytest.approx(0.2)

    def test_serialization_delay_added_for_capped_sender(self, simulator):
        network = build_network(simulator, latency=ConstantLatency(0.1))
        receiver = Recorder(simulator)
        # 8000 bps: a 1000-byte message takes 1 s to serialize.
        network.register(0, lambda m: None, cap=BandwidthCap(rate_bps=8000.0))
        network.register(1, receiver)
        network.send(Message(sender=0, receiver=1, kind="serve", size_bytes=1000))
        simulator.run_until_idle()
        __, time = receiver.received[0]
        assert time == pytest.approx(1.1)

    def test_messages_queue_behind_each_other(self, simulator):
        network = build_network(simulator, latency=ConstantLatency(0.0))
        receiver = Recorder(simulator)
        network.register(0, lambda m: None, cap=BandwidthCap(rate_bps=8000.0))
        network.register(1, receiver)
        for _ in range(3):
            network.send(Message(sender=0, receiver=1, kind="serve", size_bytes=1000))
        simulator.run_until_idle()
        times = [time for _, time in receiver.received]
        assert times == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


class TestCongestionAndLoss:
    def test_backlog_overflow_is_counted_as_congestion_drop(self, simulator):
        network = build_network(simulator)
        network.register(0, lambda m: None, cap=BandwidthCap(rate_bps=8000.0, max_backlog_seconds=1.0))
        network.register(1, lambda m: None)
        sent = [
            network.send(Message(sender=0, receiver=1, kind="serve", size_bytes=900))
            for _ in range(3)
        ]
        assert sent == [True, False, False]
        assert network.stats.total_congestion_drops() == 2

    def test_in_flight_loss_consumes_sender_bandwidth(self, simulator):
        rng = RngRegistry(1)
        network = build_network(simulator, loss=UniformLoss(rng, probability=1.0))
        receiver = Recorder(simulator)
        network.register(0, lambda m: None, cap=BandwidthCap(rate_bps=8000.0))
        network.register(1, receiver)
        accepted = network.send(Message(sender=0, receiver=1, kind="serve", size_bytes=1000))
        simulator.run_until_idle()
        assert accepted
        assert receiver.received == []
        assert network.stats.node(0).bytes_sent == 1000
        assert network.stats.total_in_flight_losses() == 1


class TestFailures:
    def test_failed_sender_cannot_send(self, simulator):
        network = build_network(simulator)
        receiver = Recorder(simulator)
        network.register(0, lambda m: None)
        network.register(1, receiver)
        network.fail_node(0)
        assert not network.send(Message(sender=0, receiver=1, kind="propose", size_bytes=10))
        simulator.run_until_idle()
        assert receiver.received == []

    def test_failed_receiver_gets_nothing(self, simulator):
        network = build_network(simulator)
        receiver = Recorder(simulator)
        network.register(0, lambda m: None)
        network.register(1, receiver)
        network.send(Message(sender=0, receiver=1, kind="propose", size_bytes=10))
        network.fail_node(1)
        simulator.run_until_idle()
        assert receiver.received == []

    def test_recovered_node_receives_again(self, simulator):
        network = build_network(simulator)
        receiver = Recorder(simulator)
        network.register(0, lambda m: None)
        network.register(1, receiver)
        network.fail_node(1)
        network.recover_node(1)
        network.send(Message(sender=0, receiver=1, kind="propose", size_bytes=10))
        simulator.run_until_idle()
        assert len(receiver.received) == 1


class TestNetworkConfig:
    def test_build_cap_uses_default_and_overrides(self):
        config = NetworkConfig(upload_cap_kbps=700.0, per_node_caps_kbps={5: 2000.0})
        assert config.build_cap(1).kbps() == pytest.approx(700.0)
        assert config.build_cap(5).kbps() == pytest.approx(2000.0)

    def test_build_cap_none_is_unlimited(self):
        config = NetworkConfig(upload_cap_kbps=None)
        assert config.build_cap(1).is_unlimited

    def test_build_latency_models(self):
        rng = RngRegistry(1)
        node_ids = list(range(5))
        for name in ("constant", "uniform", "lognormal", "per-node"):
            config = NetworkConfig(latency_model=name)
            model = config.build_latency(rng, node_ids)
            assert model.sample(0, 1) >= 0.0

    def test_build_latency_unknown_model_rejected(self):
        config = NetworkConfig(latency_model="warp-speed")
        with pytest.raises(ValueError):
            config.build_latency(RngRegistry(1), [0, 1])

    def test_build_loss(self):
        rng = RngRegistry(1)
        assert not NetworkConfig(random_loss=0.0).build_loss(rng).is_lost(
            Message(sender=0, receiver=1, kind="x", size_bytes=1)
        )
        lossy = NetworkConfig(random_loss=1.0).build_loss(rng)
        assert lossy.is_lost(Message(sender=0, receiver=1, kind="x", size_bytes=1))


class TestSendMany:
    """`send_many` must be indistinguishable from calling `send` per message
    in order: same limiter chain, same RNG draw order (loss then latency per
    message), same delivery times and stats."""

    @staticmethod
    def _build(seed):
        from repro.network.latency import PerNodeQualityLatency
        from repro.simulation.engine import Simulator

        simulator = Simulator(seed=seed)
        rng = RngRegistry(seed)
        network = Network(
            simulator,
            latency_model=PerNodeQualityLatency(rng, list(range(5)), base=0.05),
            loss_model=UniformLoss(rng, probability=0.2),
        )
        recorders = {}
        for node in range(5):
            recorder = Recorder(simulator)
            recorders[node] = recorder
            cap = BandwidthCap(rate_bps=700_000.0) if node == 0 else BandwidthCap.unlimited()
            network.register(node, recorder, cap=cap)
        return simulator, network, recorders

    @staticmethod
    def _burst():
        return [
            Message(sender=0, receiver=1 + (i % 4), kind="serve", size_bytes=400 + 37 * i)
            for i in range(30)
        ]

    @staticmethod
    def _trace(recorders):
        return {
            node: [(m.size_bytes, m.receiver, t) for m, t in recorder.received]
            for node, recorder in recorders.items()
        }

    def test_matches_sequential_send(self):
        sim_a, net_a, rec_a = self._build(seed=9)
        accepted_a = sum(net_a.send(m) for m in self._burst())
        sim_a.run_until_idle()

        sim_b, net_b, rec_b = self._build(seed=9)
        accepted_b = net_b.send_many(self._burst())
        sim_b.run_until_idle()

        assert accepted_b == accepted_a
        assert self._trace(rec_b) == self._trace(rec_a)
        assert net_b.stats.node(0).bytes_sent == net_a.stats.node(0).bytes_sent
        assert net_b.stats.total_in_flight_losses() == net_a.stats.total_in_flight_losses()

    def test_congestion_drops_match_sequential(self):
        def build(seed):
            from repro.simulation.engine import Simulator

            simulator = Simulator(seed=seed)
            network = build_network(simulator, latency=ConstantLatency(0.0))
            network.register(
                0, lambda m: None, cap=BandwidthCap(rate_bps=8000.0, max_backlog_seconds=1.0)
            )
            recorder = Recorder(simulator)
            network.register(1, recorder)
            return simulator, network, recorder

        burst = [Message(sender=0, receiver=1, kind="serve", size_bytes=600) for _ in range(4)]
        sim_a, net_a, rec_a = build(3)
        accepted_a = sum(net_a.send(m) for m in burst)
        sim_a.run_until_idle()
        sim_b, net_b, rec_b = build(3)
        accepted_b = net_b.send_many(burst)
        sim_b.run_until_idle()
        assert accepted_b == accepted_a == 1
        assert net_b.stats.total_congestion_drops() == net_a.stats.total_congestion_drops() == 3
        assert [t for _, t in rec_b.received] == [t for _, t in rec_a.received]

    def test_mixed_senders_rejected(self, simulator):
        network = build_network(simulator)
        network.register(0, lambda m: None)
        network.register(1, lambda m: None)
        with pytest.raises(ValueError, match="single sender"):
            network.send_many(
                [
                    Message(sender=0, receiver=1, kind="propose", size_bytes=10),
                    Message(sender=1, receiver=0, kind="propose", size_bytes=10),
                ]
            )

    def test_dead_sender_accepts_nothing(self, simulator):
        network = build_network(simulator)
        network.register(0, lambda m: None)
        network.register(1, lambda m: None)
        network.fail_node(0)
        burst = [Message(sender=0, receiver=1, kind="propose", size_bytes=10)]
        assert network.send_many(burst) == 0

    def test_empty_burst(self, simulator):
        network = build_network(simulator)
        assert network.send_many([]) == 0

    def test_observers_route_through_scalar_send(self, simulator):
        class Edges:
            def __init__(self):
                self.accepted = []

            def on_send_accepted(self, message, now, finish_time):
                self.accepted.append(message.receiver)

            def on_send_blocked(self, message, now):
                pass

            def on_congestion_drop(self, message, now):
                pass

            def on_in_flight_loss(self, message, now):
                pass

            def on_delivered(self, message, now):
                pass

            def on_delivery_dropped(self, message, now):
                pass

        network = build_network(simulator)
        network.register(0, lambda m: None)
        network.register(1, lambda m: None)
        network.register(2, lambda m: None)
        edges = Edges()
        network.add_observer(edges)
        burst = [
            Message(sender=0, receiver=receiver, kind="propose", size_bytes=10)
            for receiver in (1, 2)
        ]
        assert network.send_many(burst) == 2
        assert edges.accepted == [1, 2]  # one edge per logical datagram
