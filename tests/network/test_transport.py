"""Unit tests for the network transport."""

import pytest

from repro.network.bandwidth import BandwidthCap
from repro.network.latency import ConstantLatency
from repro.network.loss import UniformLoss
from repro.network.message import Message
from repro.network.transport import Network, NetworkConfig
from repro.simulation.rng import RngRegistry


class Recorder:
    """Minimal endpoint: records (message, time) pairs."""

    def __init__(self, simulator):
        self.simulator = simulator
        self.received = []

    def __call__(self, message):
        self.received.append((message, self.simulator.now))


def build_network(simulator, latency=None, loss=None):
    return Network(simulator, latency_model=latency or ConstantLatency(0.05), loss_model=loss)


class TestRegistration:
    def test_register_and_send(self, simulator):
        network = build_network(simulator)
        receiver = Recorder(simulator)
        network.register(0, lambda m: None)
        network.register(1, receiver)
        assert network.is_registered(1)
        assert network.is_alive(1)

        accepted = network.send(Message(sender=0, receiver=1, kind="propose", size_bytes=100))
        assert accepted
        simulator.run_until_idle()
        assert len(receiver.received) == 1

    def test_double_registration_rejected(self, simulator):
        network = build_network(simulator)
        network.register(0, lambda m: None)
        with pytest.raises(ValueError):
            network.register(0, lambda m: None)

    def test_unregistered_node_is_not_alive(self, simulator):
        network = build_network(simulator)
        assert not network.is_alive(42)


class TestDeliveryTiming:
    def test_latency_applied(self, simulator):
        network = build_network(simulator, latency=ConstantLatency(0.2))
        receiver = Recorder(simulator)
        network.register(0, lambda m: None)
        network.register(1, receiver)
        network.send(Message(sender=0, receiver=1, kind="propose", size_bytes=100))
        simulator.run_until_idle()
        __, time = receiver.received[0]
        assert time == pytest.approx(0.2)

    def test_serialization_delay_added_for_capped_sender(self, simulator):
        network = build_network(simulator, latency=ConstantLatency(0.1))
        receiver = Recorder(simulator)
        # 8000 bps: a 1000-byte message takes 1 s to serialize.
        network.register(0, lambda m: None, cap=BandwidthCap(rate_bps=8000.0))
        network.register(1, receiver)
        network.send(Message(sender=0, receiver=1, kind="serve", size_bytes=1000))
        simulator.run_until_idle()
        __, time = receiver.received[0]
        assert time == pytest.approx(1.1)

    def test_messages_queue_behind_each_other(self, simulator):
        network = build_network(simulator, latency=ConstantLatency(0.0))
        receiver = Recorder(simulator)
        network.register(0, lambda m: None, cap=BandwidthCap(rate_bps=8000.0))
        network.register(1, receiver)
        for _ in range(3):
            network.send(Message(sender=0, receiver=1, kind="serve", size_bytes=1000))
        simulator.run_until_idle()
        times = [time for _, time in receiver.received]
        assert times == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]


class TestCongestionAndLoss:
    def test_backlog_overflow_is_counted_as_congestion_drop(self, simulator):
        network = build_network(simulator)
        network.register(0, lambda m: None, cap=BandwidthCap(rate_bps=8000.0, max_backlog_seconds=1.0))
        network.register(1, lambda m: None)
        sent = [
            network.send(Message(sender=0, receiver=1, kind="serve", size_bytes=900))
            for _ in range(3)
        ]
        assert sent == [True, False, False]
        assert network.stats.total_congestion_drops() == 2

    def test_in_flight_loss_consumes_sender_bandwidth(self, simulator):
        rng = RngRegistry(1)
        network = build_network(simulator, loss=UniformLoss(rng, probability=1.0))
        receiver = Recorder(simulator)
        network.register(0, lambda m: None, cap=BandwidthCap(rate_bps=8000.0))
        network.register(1, receiver)
        accepted = network.send(Message(sender=0, receiver=1, kind="serve", size_bytes=1000))
        simulator.run_until_idle()
        assert accepted
        assert receiver.received == []
        assert network.stats.node(0).bytes_sent == 1000
        assert network.stats.total_in_flight_losses() == 1


class TestFailures:
    def test_failed_sender_cannot_send(self, simulator):
        network = build_network(simulator)
        receiver = Recorder(simulator)
        network.register(0, lambda m: None)
        network.register(1, receiver)
        network.fail_node(0)
        assert not network.send(Message(sender=0, receiver=1, kind="propose", size_bytes=10))
        simulator.run_until_idle()
        assert receiver.received == []

    def test_failed_receiver_gets_nothing(self, simulator):
        network = build_network(simulator)
        receiver = Recorder(simulator)
        network.register(0, lambda m: None)
        network.register(1, receiver)
        network.send(Message(sender=0, receiver=1, kind="propose", size_bytes=10))
        network.fail_node(1)
        simulator.run_until_idle()
        assert receiver.received == []

    def test_recovered_node_receives_again(self, simulator):
        network = build_network(simulator)
        receiver = Recorder(simulator)
        network.register(0, lambda m: None)
        network.register(1, receiver)
        network.fail_node(1)
        network.recover_node(1)
        network.send(Message(sender=0, receiver=1, kind="propose", size_bytes=10))
        simulator.run_until_idle()
        assert len(receiver.received) == 1


class TestNetworkConfig:
    def test_build_cap_uses_default_and_overrides(self):
        config = NetworkConfig(upload_cap_kbps=700.0, per_node_caps_kbps={5: 2000.0})
        assert config.build_cap(1).kbps() == pytest.approx(700.0)
        assert config.build_cap(5).kbps() == pytest.approx(2000.0)

    def test_build_cap_none_is_unlimited(self):
        config = NetworkConfig(upload_cap_kbps=None)
        assert config.build_cap(1).is_unlimited

    def test_build_latency_models(self):
        rng = RngRegistry(1)
        node_ids = list(range(5))
        for name in ("constant", "uniform", "lognormal", "per-node"):
            config = NetworkConfig(latency_model=name)
            model = config.build_latency(rng, node_ids)
            assert model.sample(0, 1) >= 0.0

    def test_build_latency_unknown_model_rejected(self):
        config = NetworkConfig(latency_model="warp-speed")
        with pytest.raises(ValueError):
            config.build_latency(RngRegistry(1), [0, 1])

    def test_build_loss(self):
        rng = RngRegistry(1)
        assert not NetworkConfig(random_loss=0.0).build_loss(rng).is_lost(
            Message(sender=0, receiver=1, kind="x", size_bytes=1)
        )
        lossy = NetworkConfig(random_loss=1.0).build_loss(rng)
        assert lossy.is_lost(Message(sender=0, receiver=1, kind="x", size_bytes=1))
