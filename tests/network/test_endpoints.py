"""Tests for the Endpoint protocol."""

from repro.network.endpoints import Endpoint
from repro.network.message import Message


class MinimalEndpoint:
    """A class that satisfies the Endpoint protocol without inheriting it."""

    def __init__(self, node_id: int) -> None:
        self._node_id = node_id
        self.received = []

    @property
    def node_id(self) -> int:
        return self._node_id

    def on_message(self, message: Message) -> None:
        self.received.append(message)


class NotAnEndpoint:
    """Missing on_message."""

    node_id = 3


class TestEndpointProtocol:
    def test_structural_conformance(self):
        assert isinstance(MinimalEndpoint(1), Endpoint)

    def test_non_conforming_class_rejected(self):
        assert not isinstance(NotAnEndpoint(), Endpoint)

    def test_gossip_node_is_an_endpoint(self, simulator):
        from repro.core.config import GossipConfig
        from repro.core.node import GossipNode
        from repro.membership.directory import MembershipDirectory
        from repro.network.transport import Network
        from repro.streaming.schedule import StreamConfig, StreamSchedule

        directory = MembershipDirectory()
        directory.add_all(range(3))
        network = Network(simulator)
        schedule = StreamSchedule(
            StreamConfig(source_packets_per_window=2, fec_packets_per_window=0, num_windows=1)
        )
        node = GossipNode(0, simulator, network, directory, schedule, GossipConfig(fanout=1))
        assert isinstance(node, Endpoint)
