"""Unit tests for the latency models."""

import pytest

from repro.network.latency import (
    ConstantLatency,
    LogNormalLatency,
    PerNodeQualityLatency,
    UniformLatency,
)
from repro.simulation.rng import RngRegistry


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(11)


class TestConstantLatency:
    def test_returns_fixed_delay(self):
        model = ConstantLatency(0.08)
        assert model.sample(1, 2) == 0.08
        assert model.sample(5, 9) == 0.08

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.01)

    def test_describe_mentions_value(self):
        assert "80" in ConstantLatency(0.08).describe()


class TestUniformLatency:
    def test_samples_within_bounds(self, rng):
        model = UniformLatency(rng, low=0.02, high=0.1)
        samples = [model.sample(0, 1) for _ in range(200)]
        assert all(0.02 <= value <= 0.1 for value in samples)

    def test_samples_vary(self, rng):
        model = UniformLatency(rng, low=0.02, high=0.1)
        samples = {round(model.sample(0, 1), 6) for _ in range(50)}
        assert len(samples) > 10

    def test_invalid_range_rejected(self, rng):
        with pytest.raises(ValueError):
            UniformLatency(rng, low=0.2, high=0.1)


class TestLogNormalLatency:
    def test_samples_are_positive_and_above_minimum(self, rng):
        model = LogNormalLatency(rng, median=0.06, sigma=0.5, minimum=0.005)
        samples = [model.sample(0, 1) for _ in range(500)]
        assert all(value >= 0.005 for value in samples)

    def test_median_is_roughly_respected(self, rng):
        model = LogNormalLatency(rng, median=0.06, sigma=0.5)
        samples = sorted(model.sample(0, 1) for _ in range(2000))
        median = samples[len(samples) // 2]
        assert 0.04 < median < 0.09

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            LogNormalLatency(rng, median=0.0)


class TestMinLatency:
    """min_latency() is the sharded backend's conservative lookahead: it
    must lower-bound *every* possible draw, not just typical ones."""

    def test_constant_floor_is_the_delay(self):
        assert ConstantLatency(0.08).min_latency() == 0.08

    def test_uniform_floor_is_the_low_bound(self, rng):
        model = UniformLatency(rng, low=0.02, high=0.1)
        assert model.min_latency() == 0.02
        assert all(model.sample(0, 1) >= 0.02 for _ in range(500))

    def test_lognormal_floor_is_the_minimum(self, rng):
        model = LogNormalLatency(rng, median=0.06, sigma=2.0, minimum=0.004)
        assert model.min_latency() == 0.004
        assert all(model.sample(0, 1) >= 0.004 for _ in range(500))

    def test_per_node_floor_is_the_minimum(self, rng):
        model = PerNodeQualityLatency(
            rng, node_ids=[0, 1], base=0.001, quality_sigma=2.0, minimum=0.006
        )
        assert model.min_latency() == 0.006
        assert all(model.sample(0, 1) >= 0.006 for _ in range(500))


class TestPerSenderStreams:
    """per_sender=True makes a sender's draws a function of its own send
    history only — the placement invariance the sharded runner relies on."""

    def _interleaved(self, model, sender, count, noise_senders=(7, 8)):
        draws = []
        for _ in range(count):
            for other in noise_senders:
                model.sample(other, 1)
            draws.append(model.sample(sender, 2))
        return draws

    def test_uniform_draws_survive_interleaving(self):
        solo = UniformLatency(RngRegistry(9), per_sender=True)
        expected = [solo.sample(1, 2) for _ in range(6)]
        mixed = UniformLatency(RngRegistry(9), per_sender=True)
        assert self._interleaved(mixed, sender=1, count=6) == expected

    def test_lognormal_draws_survive_interleaving(self):
        solo = LogNormalLatency(RngRegistry(9), per_sender=True)
        expected = [solo.sample(1, 2) for _ in range(6)]
        mixed = LogNormalLatency(RngRegistry(9), per_sender=True)
        assert self._interleaved(mixed, sender=1, count=6) == expected

    def test_per_node_jitter_survives_interleaving(self):
        node_ids = list(range(10))
        solo = PerNodeQualityLatency(RngRegistry(9), node_ids, per_sender=True)
        expected = [solo.sample(1, 2) for _ in range(6)]
        mixed = PerNodeQualityLatency(RngRegistry(9), node_ids, per_sender=True)
        assert self._interleaved(mixed, sender=1, count=6) == expected

    def test_shared_stream_is_interleaving_sensitive(self):
        # The contrast that motivates per-sender mode: the default shared
        # stream hands the i-th draw to the i-th send *globally*, so other
        # senders' traffic shifts everyone's values.
        solo = UniformLatency(RngRegistry(9))
        expected = [solo.sample(1, 2) for _ in range(6)]
        mixed = UniformLatency(RngRegistry(9))
        assert self._interleaved(mixed, sender=1, count=6) != expected

    def test_quality_table_is_identical_across_modes(self):
        # Quality factors come from their own construction-time stream, so
        # arming per-sender sampling must not move a single factor.
        node_ids = list(range(8))
        shared = PerNodeQualityLatency(RngRegistry(3), node_ids)
        keyed = PerNodeQualityLatency(RngRegistry(3), node_ids, per_sender=True)
        assert [shared.quality(i) for i in node_ids] == [
            keyed.quality(i) for i in node_ids
        ]


class TestPerNodeQualityLatency:
    def test_quality_factors_are_stable_per_node(self, rng):
        model = PerNodeQualityLatency(rng, node_ids=list(range(10)))
        assert model.quality(3) == model.quality(3)

    def test_good_nodes_have_lower_latency_on_average(self, rng):
        model = PerNodeQualityLatency(rng, node_ids=list(range(30)), jitter=0.0)
        qualities = {node: model.quality(node) for node in range(30)}
        best = min(qualities, key=qualities.get)
        worst = max(qualities, key=qualities.get)
        best_latency = sum(model.sample(best, best) for _ in range(20)) / 20
        worst_latency = sum(model.sample(worst, worst) for _ in range(20)) / 20
        assert best_latency < worst_latency

    def test_sample_respects_minimum(self, rng):
        model = PerNodeQualityLatency(rng, node_ids=[0, 1], base=0.001, minimum=0.005)
        assert model.sample(0, 1) >= 0.005

    def test_same_seed_same_qualities(self):
        first = PerNodeQualityLatency(RngRegistry(3), node_ids=list(range(5)))
        second = PerNodeQualityLatency(RngRegistry(3), node_ids=list(range(5)))
        assert [first.quality(i) for i in range(5)] == [second.quality(i) for i in range(5)]

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            PerNodeQualityLatency(rng, node_ids=[0], base=0.0)
