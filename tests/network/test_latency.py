"""Unit tests for the latency models."""

import pytest

from repro.network.latency import (
    ConstantLatency,
    LogNormalLatency,
    PerNodeQualityLatency,
    UniformLatency,
)
from repro.simulation.rng import RngRegistry


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(11)


class TestConstantLatency:
    def test_returns_fixed_delay(self):
        model = ConstantLatency(0.08)
        assert model.sample(1, 2) == 0.08
        assert model.sample(5, 9) == 0.08

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.01)

    def test_describe_mentions_value(self):
        assert "80" in ConstantLatency(0.08).describe()


class TestUniformLatency:
    def test_samples_within_bounds(self, rng):
        model = UniformLatency(rng, low=0.02, high=0.1)
        samples = [model.sample(0, 1) for _ in range(200)]
        assert all(0.02 <= value <= 0.1 for value in samples)

    def test_samples_vary(self, rng):
        model = UniformLatency(rng, low=0.02, high=0.1)
        samples = {round(model.sample(0, 1), 6) for _ in range(50)}
        assert len(samples) > 10

    def test_invalid_range_rejected(self, rng):
        with pytest.raises(ValueError):
            UniformLatency(rng, low=0.2, high=0.1)


class TestLogNormalLatency:
    def test_samples_are_positive_and_above_minimum(self, rng):
        model = LogNormalLatency(rng, median=0.06, sigma=0.5, minimum=0.005)
        samples = [model.sample(0, 1) for _ in range(500)]
        assert all(value >= 0.005 for value in samples)

    def test_median_is_roughly_respected(self, rng):
        model = LogNormalLatency(rng, median=0.06, sigma=0.5)
        samples = sorted(model.sample(0, 1) for _ in range(2000))
        median = samples[len(samples) // 2]
        assert 0.04 < median < 0.09

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            LogNormalLatency(rng, median=0.0)


class TestPerNodeQualityLatency:
    def test_quality_factors_are_stable_per_node(self, rng):
        model = PerNodeQualityLatency(rng, node_ids=list(range(10)))
        assert model.quality(3) == model.quality(3)

    def test_good_nodes_have_lower_latency_on_average(self, rng):
        model = PerNodeQualityLatency(rng, node_ids=list(range(30)), jitter=0.0)
        qualities = {node: model.quality(node) for node in range(30)}
        best = min(qualities, key=qualities.get)
        worst = max(qualities, key=qualities.get)
        best_latency = sum(model.sample(best, best) for _ in range(20)) / 20
        worst_latency = sum(model.sample(worst, worst) for _ in range(20)) / 20
        assert best_latency < worst_latency

    def test_sample_respects_minimum(self, rng):
        model = PerNodeQualityLatency(rng, node_ids=[0, 1], base=0.001, minimum=0.005)
        assert model.sample(0, 1) >= 0.005

    def test_same_seed_same_qualities(self):
        first = PerNodeQualityLatency(RngRegistry(3), node_ids=list(range(5)))
        second = PerNodeQualityLatency(RngRegistry(3), node_ids=list(range(5)))
        assert [first.quality(i) for i in range(5)] == [second.quality(i) for i in range(5)]

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            PerNodeQualityLatency(rng, node_ids=[0], base=0.0)
