"""Unit tests for the network message type."""

import pytest

from repro.network.message import Message


class TestMessage:
    def test_basic_construction(self):
        message = Message(sender=1, receiver=2, kind="propose", size_bytes=120)
        assert message.sender == 1
        assert message.receiver == 2
        assert message.kind == "propose"
        assert message.size_bytes == 120
        assert message.payload is None

    def test_size_bits(self):
        message = Message(sender=0, receiver=1, kind="serve", size_bytes=100)
        assert message.size_bits() == 800

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Message(sender=0, receiver=1, kind="propose", size_bytes=0)

    def test_negative_node_id_rejected(self):
        with pytest.raises(ValueError):
            Message(sender=-1, receiver=1, kind="propose", size_bytes=10)

    def test_payload_is_carried(self):
        payload = {"ids": (1, 2, 3)}
        message = Message(sender=0, receiver=1, kind="propose", size_bytes=10, payload=payload)
        assert message.payload is payload

    def test_message_is_frozen(self):
        message = Message(sender=0, receiver=1, kind="propose", size_bytes=10)
        with pytest.raises(AttributeError):
            message.size_bytes = 20
