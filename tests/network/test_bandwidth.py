"""Unit tests for the upload bandwidth cap and throttling limiter."""

import pytest

from repro.network.bandwidth import BandwidthCap, UploadLimiter


class TestBandwidthCap:
    def test_from_kbps(self):
        cap = BandwidthCap.from_kbps(700)
        assert cap.rate_bps == pytest.approx(700_000.0)
        assert not cap.is_unlimited
        assert cap.kbps() == pytest.approx(700.0)

    def test_unlimited(self):
        cap = BandwidthCap.unlimited()
        assert cap.is_unlimited
        assert cap.max_backlog_bytes is None
        assert cap.kbps() is None

    def test_from_kbps_none_is_unlimited(self):
        assert BandwidthCap.from_kbps(None).is_unlimited

    def test_max_backlog_bytes(self):
        cap = BandwidthCap.from_kbps(800, max_backlog_seconds=2.0)
        # 800 kbps = 100 kB/s, so 2 s of backlog is 200 kB.
        assert cap.max_backlog_bytes == pytest.approx(200_000.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BandwidthCap(rate_bps=0.0)

    def test_invalid_backlog_rejected(self):
        with pytest.raises(ValueError):
            BandwidthCap(rate_bps=1000.0, max_backlog_seconds=0.0)


class TestUploadLimiter:
    def test_unlimited_cap_has_no_delay(self):
        limiter = UploadLimiter(BandwidthCap.unlimited())
        finish = limiter.enqueue(10_000, now=5.0)
        assert finish == pytest.approx(5.0)
        assert limiter.bytes_accepted == 10_000

    def test_serialization_delay_matches_rate(self):
        # 1000 bytes at 8000 bps take exactly 1 second to serialize.
        limiter = UploadLimiter(BandwidthCap(rate_bps=8000.0, max_backlog_seconds=100.0))
        finish = limiter.enqueue(1000, now=0.0)
        assert finish == pytest.approx(1.0)

    def test_back_to_back_messages_queue_behind_each_other(self):
        limiter = UploadLimiter(BandwidthCap(rate_bps=8000.0, max_backlog_seconds=100.0))
        first = limiter.enqueue(1000, now=0.0)
        second = limiter.enqueue(1000, now=0.0)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_idle_time_is_not_accumulated(self):
        limiter = UploadLimiter(BandwidthCap(rate_bps=8000.0, max_backlog_seconds=100.0))
        limiter.enqueue(1000, now=0.0)
        # Waiting far beyond the busy period: the next message starts fresh.
        finish = limiter.enqueue(1000, now=10.0)
        assert finish == pytest.approx(11.0)

    def test_backlog_overflow_drops(self):
        # Backlog capacity of 2 seconds at 8000 bps = 2000 bytes.
        limiter = UploadLimiter(BandwidthCap(rate_bps=8000.0, max_backlog_seconds=2.0))
        assert limiter.enqueue(1000, now=0.0) is not None
        assert limiter.enqueue(1000, now=0.0) is not None
        assert limiter.enqueue(1000, now=0.0) is None
        assert limiter.messages_dropped == 1
        assert limiter.bytes_dropped == 1000

    def test_backlog_drains_over_time(self):
        limiter = UploadLimiter(BandwidthCap(rate_bps=8000.0, max_backlog_seconds=2.0))
        limiter.enqueue(1000, now=0.0)
        limiter.enqueue(1000, now=0.0)
        # At t=1.5 s, half of the second message remains: 0.5 s of backlog.
        assert limiter.backlog_seconds(1.5) == pytest.approx(0.5)
        assert limiter.enqueue(1000, now=1.5) is not None

    def test_backlog_bytes(self):
        limiter = UploadLimiter(BandwidthCap(rate_bps=8000.0, max_backlog_seconds=10.0))
        limiter.enqueue(2000, now=0.0)
        assert limiter.backlog_bytes(0.0) == pytest.approx(2000.0)
        assert limiter.backlog_bytes(1.0) == pytest.approx(1000.0)
        assert limiter.backlog_bytes(100.0) == 0.0

    def test_is_saturated(self):
        limiter = UploadLimiter(BandwidthCap(rate_bps=8000.0, max_backlog_seconds=10.0))
        limiter.enqueue(8000, now=0.0)  # 8 seconds of backlog
        assert limiter.is_saturated(0.0, threshold_seconds=1.0)
        assert not limiter.is_saturated(7.5, threshold_seconds=1.0)

    def test_counters_accumulate(self):
        limiter = UploadLimiter(BandwidthCap(rate_bps=8000.0, max_backlog_seconds=1.0))
        limiter.enqueue(500, now=0.0)
        limiter.enqueue(400, now=0.0)
        limiter.enqueue(5000, now=0.0)  # dropped: exceeds 1 s of backlog
        assert limiter.messages_accepted == 2
        assert limiter.bytes_accepted == 900
        assert limiter.messages_dropped == 1

    def test_reset_counters_keeps_backlog(self):
        limiter = UploadLimiter(BandwidthCap(rate_bps=8000.0, max_backlog_seconds=10.0))
        limiter.enqueue(4000, now=0.0)
        limiter.reset_counters()
        assert limiter.bytes_accepted == 0
        assert limiter.backlog_seconds(0.0) == pytest.approx(4.0)

    def test_invalid_size_rejected(self):
        limiter = UploadLimiter(BandwidthCap.unlimited())
        with pytest.raises(ValueError):
            limiter.enqueue(0, now=0.0)


class TestEnqueueMany:
    """`enqueue_many` must be indistinguishable from sequential `enqueue` —
    including, on the vectorized numpy path, *bit-for-bit* identical float
    finish times (the kernel relies on ``np.add.accumulate`` evaluating the
    serialization chain left to right, exactly like the scalar loop)."""

    # Awkward sizes at an awkward rate so every finish time carries a full
    # mantissa of history; any reassociation of the sum would show up.
    SIZES = [997 + 13 * (i % 57) + (i % 7) for i in range(200)]
    RATE = BandwidthCap(rate_bps=714_285.0, max_backlog_seconds=500.0)

    @staticmethod
    def _sequential(cap, sizes, now, start_busy=0.0):
        limiter = UploadLimiter(cap)
        limiter._busy_until = start_busy
        return limiter, [limiter.enqueue(size, now) for size in sizes]

    def _batched(self, cap, sizes, now, start_busy=0.0):
        limiter = UploadLimiter(cap)
        limiter._busy_until = start_busy
        return limiter, limiter.enqueue_many(sizes, now)

    def _assert_equivalent(self, cap, sizes, now, start_busy=0.0):
        scalar_limiter, scalar_times = self._sequential(cap, sizes, now, start_busy)
        batch_limiter, batch_times = self._batched(cap, sizes, now, start_busy)
        assert batch_times == scalar_times  # exact, not approx
        assert batch_limiter._busy_until == scalar_limiter._busy_until
        assert batch_limiter.bytes_accepted == scalar_limiter.bytes_accepted
        assert batch_limiter.bytes_dropped == scalar_limiter.bytes_dropped
        assert batch_limiter.messages_accepted == scalar_limiter.messages_accepted
        assert batch_limiter.messages_dropped == scalar_limiter.messages_dropped

    def test_small_batch_uses_scalar_loop_and_matches(self):
        self._assert_equivalent(self.RATE, self.SIZES[:8], now=3.25)

    def test_vectorized_batch_is_bitwise_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        self._assert_equivalent(self.RATE, self.SIZES, now=3.25)
        # A fractional pre-existing backlog exercises the `chain[0] +=
        # first_start` seam between the old busy time and the new chain.
        self._assert_equivalent(self.RATE, self.SIZES, now=7.1, start_busy=11.030303)

    def test_vectorized_declines_on_drops_and_still_matches(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        cap = BandwidthCap(rate_bps=714_285.0, max_backlog_seconds=0.5)
        sizes = self.SIZES[:60]  # overflows the 0.5 s backlog mid-burst
        self._assert_equivalent(cap, sizes, now=0.0)
        _, times = self._batched(cap, sizes, now=0.0)
        assert None in times  # the burst really does drop

    def test_python_backend_pins_the_scalar_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        from repro.network.bandwidth_numpy import enqueue_many_vectorized

        limiter = UploadLimiter(self.RATE)
        assert enqueue_many_vectorized(limiter, self.SIZES, now=0.0) is None
        self._assert_equivalent(self.RATE, self.SIZES, now=0.0)

    def test_unlimited_cap_batch_matches(self):
        self._assert_equivalent(BandwidthCap.unlimited(), self.SIZES, now=2.0)

    def test_empty_batch(self):
        limiter = UploadLimiter(self.RATE)
        assert limiter.enqueue_many([], now=0.0) == []
