"""Unit tests for traffic statistics."""

import pytest

from repro.network.stats import NodeTraffic, TrafficStats


class TestNodeTraffic:
    def test_upload_kbps(self):
        traffic = NodeTraffic(bytes_sent=125_000)
        # 125 kB over 10 s = 100 kbps.
        assert traffic.upload_kbps(10.0) == pytest.approx(100.0)

    def test_upload_kbps_requires_positive_duration(self):
        with pytest.raises(ValueError):
            NodeTraffic().upload_kbps(0.0)

    def test_congestion_drop_ratio(self):
        traffic = NodeTraffic(messages_sent=8, messages_dropped_congestion=2)
        assert traffic.congestion_drop_ratio() == pytest.approx(0.2)

    def test_congestion_drop_ratio_with_no_traffic(self):
        assert NodeTraffic().congestion_drop_ratio() == 0.0


class TestTrafficStats:
    def test_record_sent_accumulates(self):
        stats = TrafficStats()
        stats.record_sent(1, "propose", 100)
        stats.record_sent(1, "serve", 1000)
        node = stats.node(1)
        assert node.bytes_sent == 1100
        assert node.messages_sent == 2
        assert node.sent_bytes_by_kind["propose"] == 100
        assert node.sent_bytes_by_kind["serve"] == 1000

    def test_record_received(self):
        stats = TrafficStats()
        stats.record_received(2, "serve", 1000)
        assert stats.node(2).bytes_received == 1000
        assert stats.node(2).received_bytes_by_kind["serve"] == 1000

    def test_record_congestion_drop(self):
        stats = TrafficStats()
        stats.record_congestion_drop(1, "serve", 500)
        assert stats.node(1).messages_dropped_congestion == 1
        assert stats.total_congestion_drops() == 1

    def test_record_in_flight_loss(self):
        stats = TrafficStats()
        stats.record_in_flight_loss(1, "serve", 500)
        assert stats.node(1).messages_lost_in_flight == 1
        assert stats.total_in_flight_losses() == 1

    def test_upload_usage_kbps(self):
        stats = TrafficStats()
        stats.record_sent(1, "serve", 125_000)
        stats.record_sent(2, "serve", 250_000)
        usage = stats.upload_usage_kbps(10.0)
        assert usage[1] == pytest.approx(100.0)
        assert usage[2] == pytest.approx(200.0)

    def test_total_bytes_sent(self):
        stats = TrafficStats()
        stats.record_sent(1, "a", 10)
        stats.record_sent(2, "b", 20)
        assert stats.total_bytes_sent() == 30

    def test_measurement_window_excludes_outside_traffic(self):
        stats = TrafficStats()
        stats.record_sent(1, "serve", 100)
        stats.start_measurement(now=10.0)
        stats.record_sent(1, "serve", 200)
        stats.stop_measurement(now=20.0)
        stats.record_sent(1, "serve", 400)
        assert stats.node(1).bytes_sent == 200
        assert stats.window_duration == pytest.approx(10.0)

    def test_nodes_lists_active_nodes(self):
        stats = TrafficStats()
        stats.record_sent(3, "a", 1)
        stats.record_received(5, "a", 1)
        assert set(stats.nodes()) == {3, 5}


class TestMetricsView:
    """The telemetry export stays a thin view over the NodeTraffic cells."""

    def _populated(self):
        stats = TrafficStats()
        stats.record_sent(1, "propose", 100)
        stats.record_sent(2, "serve", 1000)
        stats.record_received(2, "serve", 1000)
        stats.record_congestion_drop(1, "serve", 500)
        stats.record_in_flight_loss(2, "serve", 700)
        return stats

    def test_totals_summed_across_nodes(self):
        view = self._populated().metrics_view()
        assert view["net.bytes_sent"] == 1100.0
        assert view["net.messages_sent"] == 2.0
        assert view["net.bytes_received"] == 1000.0
        assert view["net.bytes_dropped_congestion"] == 500.0
        assert view["net.messages_dropped_congestion"] == 1.0
        assert view["net.bytes_lost_in_flight"] == 700.0
        assert view["net.messages_lost_in_flight"] == 1.0

    def test_per_kind_byte_split(self):
        view = self._populated().metrics_view()
        assert view["net.bytes_sent{kind=propose}"] == 100.0
        assert view["net.bytes_sent{kind=serve}"] == 1000.0
        assert view["net.bytes_received{kind=serve}"] == 1000.0

    def test_view_is_live_not_a_copy(self):
        stats = self._populated()
        before = stats.metrics_view()["net.bytes_sent"]
        stats.record_sent(1, "serve", 900)
        assert stats.metrics_view()["net.bytes_sent"] == before + 900.0

    def test_bind_registry_exports_through_snapshot(self):
        from repro.telemetry.metrics import MetricsRegistry

        stats = self._populated()
        registry = MetricsRegistry()
        stats.bind_registry(registry)
        snapshot = registry.snapshot()
        assert snapshot["net.bytes_sent"] == 1100.0
        assert snapshot["net.bytes_sent{kind=serve}"] == 1000.0

    def test_old_per_node_api_unchanged_by_view(self):
        stats = self._populated()
        stats.metrics_view()
        assert stats.node(1).bytes_sent == 100
        assert stats.node(2).sent_bytes_by_kind["serve"] == 1000
        assert stats.total_bytes_sent() == 1100
