"""Pin the refactored ThreePhaseGossip to the seed implementation's output.

Before the protocol layer existed, Algorithm 1 lived inline in
``GossipNode``.  The numbers below were captured from that monolithic seed
implementation on a fixed-seed session; the strategy-based implementation
must keep reproducing them *exactly* — same delivery log (content digest),
same number of deliveries, same number of simulated events.

If this test breaks, the protocol refactor changed observable behaviour —
that is a bug, not a baseline to re-pin, unless a PR deliberately changes
the protocol and says so.
"""

import hashlib

from repro.core.config import GossipConfig
from repro.core.session import SessionConfig, StreamingSession
from repro.network.transport import NetworkConfig
from repro.streaming.schedule import StreamConfig

# Captured from the pre-refactor seed implementation (monolithic GossipNode),
# commit 1193003, with the exact configuration below.
SEED_TOTAL_DELIVERIES = 3515
SEED_EVENTS_PROCESSED = 11956
SEED_DELIVERY_LOG_SHA256 = "b3eedd82bbc021800daf5eff624146824310272c250de9d9201e12123d968cc3"


def seed_pinned_config() -> SessionConfig:
    return SessionConfig(
        num_nodes=20,
        seed=1234,
        gossip=GossipConfig(fanout=5, refresh_every=1, retransmit_timeout=2.0),
        stream=StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=20,
            fec_packets_per_window=2,
            num_windows=8,
        ),
        network=NetworkConfig(upload_cap_kbps=700.0, max_backlog_seconds=10.0),
        extra_time=20.0,
    )


def delivery_log_digest(result) -> str:
    entries = sorted(
        (node, packet_id, time)
        for node, log in result.deliveries.raw().items()
        for packet_id, time in log.items()
    )
    return hashlib.sha256(repr(entries).encode()).hexdigest()


class TestSeedRegression:
    def test_three_phase_reproduces_seed_delivery_log(self):
        result = StreamingSession(seed_pinned_config()).run()
        assert result.deliveries.total_deliveries == SEED_TOTAL_DELIVERIES
        assert result.events_processed == SEED_EVENTS_PROCESSED
        assert delivery_log_digest(result) == SEED_DELIVERY_LOG_SHA256

    def test_explicit_protocol_name_matches_default(self):
        default = StreamingSession(seed_pinned_config()).run()
        config = seed_pinned_config()
        config.protocol = "three-phase"
        named = StreamingSession(config).run()
        assert delivery_log_digest(default) == delivery_log_digest(named)
