"""Protocol conformance: invariants every dissemination strategy must hold.

The same session-level checks run against each registered protocol: every
packet reaches every receiver (on a well-provisioned, loss-free substrate),
first deliveries are unique, counters stay mutually consistent, and fixed
seeds reproduce bit-identical runs.  A new protocol that passes this suite
can be swapped into any scenario without breaking the metrics layer.
"""

import pytest

from repro.core.config import GossipConfig
from repro.core.session import SessionConfig, StreamingSession
from repro.network.transport import NetworkConfig
from repro.protocols import available_protocols
from repro.streaming.schedule import StreamConfig

PROTOCOLS = available_protocols()


def conformance_config(protocol: str, seed: int = 17) -> SessionConfig:
    """A small, loss-free, uncapped session where dissemination must succeed.

    Eager push spends a full payload per duplicate, so the level playing
    field is an unconstrained network; the bandwidth-sensitive comparisons
    live in the scenario layer, not here.  The fanout (7 of 15 possible
    partners) is sized so pure infect-and-die covers everyone: eager push
    has no retransmission phase, and the miss probability of a gossip round
    decays like ``e^-fanout``.
    """
    return SessionConfig(
        num_nodes=16,
        seed=seed,
        protocol=protocol,
        gossip=GossipConfig(fanout=7, refresh_every=1, retransmit_timeout=1.0),
        stream=StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=10,
            fec_packets_per_window=1,
            num_windows=4,
        ),
        network=NetworkConfig(
            upload_cap_kbps=None,
            latency_model="constant",
            base_latency=0.02,
            random_loss=0.0,
        ),
        extra_time=15.0,
    )


@pytest.fixture(scope="module", params=PROTOCOLS)
def protocol_result(request):
    """One completed session per registered protocol."""
    result = StreamingSession(conformance_config(request.param)).run()
    return request.param, result


class TestConformance:
    def test_all_protocols_are_exercised(self):
        assert "three-phase" in PROTOCOLS
        assert "eager-push" in PROTOCOLS

    def test_every_receiver_gets_every_packet(self, protocol_result):
        name, result = protocol_result
        assert result.delivery_ratio() == pytest.approx(1.0), name

    def test_no_duplicate_first_deliveries(self, protocol_result):
        name, result = protocol_result
        total = sum(
            result.deliveries.packets_delivered(node_id)
            for node_id in [result.source_id] + result.receivers()
        )
        assert result.deliveries.total_deliveries == total, name

    def test_deliveries_bounded_by_population(self, protocol_result):
        name, result = protocol_result
        nodes = result.config.num_nodes
        assert result.deliveries.total_deliveries <= nodes * result.schedule.num_packets, name

    def test_counters_consistent(self, protocol_result):
        name, result = protocol_result
        stats = list(result.node_stats.values())
        total_serves = sum(s.serves_sent for s in stats)
        total_packets_served = sum(s.packets_served for s in stats)
        total_requests_sent = sum(s.requests_sent for s in stats)
        total_requests_received = sum(s.requests_received for s in stats)
        # Serve accounting is shared by all protocols.
        assert total_serves == total_packets_served, name
        # Nothing received that was never sent (loss-free network).
        assert total_requests_received <= total_requests_sent, name
        # Every non-source delivery was carried by some serve/push.
        non_source_deliveries = result.deliveries.total_deliveries - result.schedule.num_packets
        assert total_serves >= non_source_deliveries, name

    def test_every_node_runs_gossip_rounds(self, protocol_result):
        name, result = protocol_result
        for node_id in result.receivers():
            assert result.node_stats[node_id].gossip_rounds > 0, (name, node_id)

    def test_fixed_seed_reproduces_bitwise(self, protocol_result):
        name, first = protocol_result
        second = StreamingSession(conformance_config(name)).run()
        assert first.deliveries.raw() == second.deliveries.raw(), name
        assert first.events_processed == second.events_processed, name


class TestProtocolContrast:
    def test_eager_push_moves_payload_without_requests(self):
        result = StreamingSession(conformance_config("eager-push")).run()
        stats = list(result.node_stats.values())
        assert sum(s.requests_sent for s in stats) == 0
        assert sum(s.proposes_sent for s in stats) == 0
        assert sum(s.serves_sent for s in stats) > 0

    def test_three_phase_negotiates_before_serving(self):
        result = StreamingSession(conformance_config("three-phase")).run()
        stats = list(result.node_stats.values())
        assert sum(s.proposes_sent for s in stats) > 0
        assert sum(s.requests_sent for s in stats) > 0

    def test_eager_push_uploads_more_bytes_for_same_stream(self):
        """Duplicates cost a full payload without the id-negotiation phase."""
        three_phase = StreamingSession(conformance_config("three-phase")).run()
        eager = StreamingSession(conformance_config("eager-push")).run()
        assert eager.traffic.total_bytes_sent() > three_phase.traffic.total_bytes_sent()
