#!/usr/bin/env python3
"""Fanout tuning study: find the window of fanouts that actually works.

Reproduces the experiment behind Figures 1 and 3 of the paper at a small
scale: sweep the fanout under a tight (700 kbps) and a loose (2000 kbps)
upload cap and watch the "good fanout window" appear, then widen.

The headline behaviour to look for in the output:

* fanouts below ~ln(n) fail to reach everyone;
* a window slightly above ln(n) serves essentially all nodes at every lag;
* large fanouts collapse under the tight cap (proposal overhead plus
  request concentration saturate the upload queues) but keep working under
  the loose cap.

Run with::

    python examples/fanout_tuning.py            # default small scale
    python examples/fanout_tuning.py --nodes 60 # closer to the benchmark scale
"""

from __future__ import annotations

import argparse
import math
import os
import time

from repro import GossipConfig, NetworkConfig, SessionConfig, StreamConfig, run_session
from repro.metrics.quality import OFFLINE_LAG
from repro.metrics.report import Series, format_series_table

# Smoke hook for the example test suite: REPRO_EXAMPLE_SMOKE=1 shrinks the
# scale so every example finishes in a couple of seconds.
SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def run_sweep(num_nodes: int, fanouts: list, cap_kbps: float, seed: int) -> dict:
    """Run one session per fanout; return viewing percentages per lag."""
    stream = StreamConfig(
        rate_kbps=600.0,
        payload_bytes=1000,
        source_packets_per_window=20,
        fec_packets_per_window=2,
        num_windows=8 if SMOKE else 60,
    )
    offline = Series(label=f"offline, {cap_kbps:.0f}kbps")
    ten_second = Series(label=f"10s lag, {cap_kbps:.0f}kbps")
    for fanout in fanouts:
        started = time.time()
        result = run_session(
            SessionConfig(
                num_nodes=num_nodes,
                seed=seed,
                gossip=GossipConfig(fanout=fanout, refresh_every=1),
                stream=stream,
                network=NetworkConfig(upload_cap_kbps=cap_kbps, max_backlog_seconds=10.0),
                extra_time=30.0,
            )
        )
        offline.add(fanout, result.viewing_percentage(lag=OFFLINE_LAG))
        ten_second.add(fanout, result.viewing_percentage(lag=10.0))
        print(
            f"  cap {cap_kbps:5.0f} kbps  fanout {fanout:3d}  "
            f"offline {offline.y_at(fanout):5.1f}%  10s {ten_second.y_at(fanout):5.1f}%  "
            f"congestion drops {result.traffic.total_congestion_drops():6d}  "
            f"({time.time() - started:.1f}s)"
        )
    return {"offline": offline, "10s": ten_second}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=40, help="system size including the source")
    parser.add_argument("--seed", type=int, default=7, help="root random seed")
    arguments = parser.parse_args()
    if SMOKE:
        arguments.nodes = min(arguments.nodes, 20)

    threshold = math.log(arguments.nodes)
    if SMOKE:
        fanouts = [3, 8]
    else:
        fanouts = [2, 4, 6, 8, 12, 20, min(30, arguments.nodes - 2)]
    print(f"System size n = {arguments.nodes}; ln(n) = {threshold:.1f}")
    print(f"Sweeping fanouts {fanouts} under 700 and 2000 kbps caps\n")

    tight = run_sweep(arguments.nodes, fanouts, cap_kbps=700.0, seed=arguments.seed)
    loose = run_sweep(arguments.nodes, fanouts, cap_kbps=2000.0, seed=arguments.seed)

    print("\nSummary (percentage of nodes viewing with <1% jitter):\n")
    print(
        format_series_table(
            [tight["offline"], tight["10s"], loose["offline"], loose["10s"]],
            x_label="fanout",
        )
    )
    best = tight["10s"].argmax_x()
    print(
        f"\nBest fanout under the 700 kbps cap: {best:.0f} "
        f"(ln(n) + {best - threshold:.1f}) — matching the paper's observation that "
        "the sweet spot sits slightly above ln(n) and degrades for larger fanouts."
    )


if __name__ == "__main__":
    main()
