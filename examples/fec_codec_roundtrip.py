#!/usr/bin/env python3
"""End-to-end FEC demonstration: encode a window, lose packets, decode it.

The simulator only needs the counting rule "a window decodes iff at least
101 of its 110 packets arrive", but the library also ships the real
systematic Cauchy Reed–Solomon codec over GF(256) behind that rule.  This
example exercises it on actual bytes: it builds one stream window from a
synthetic video segment, drops as many packets as the code tolerates, and
reconstructs the original data bit-for-bit.

Run with::

    python examples/fec_codec_roundtrip.py
"""

from __future__ import annotations

import random
import time

from repro import StreamConfig, WindowCodec


def make_video_segment(num_packets: int, payload_bytes: int, seed: int = 7) -> list:
    """Synthetic 'video' payloads: deterministic pseudo-random bytes."""
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(payload_bytes)) for _ in range(num_packets)]


def main() -> None:
    config = StreamConfig.paper_defaults(num_windows=1)
    codec = WindowCodec(
        source_packets=config.source_packets_per_window,
        fec_packets=config.fec_packets_per_window,
    )
    payload_bytes = 256  # keep the demo quick; the wire size is configurable

    print(
        f"Window layout: {codec.source_packets} source + {codec.fec_packets} FEC packets "
        f"({codec.window_size} total); any {codec.required_packets} packets reconstruct the window.\n"
    )

    source_payloads = make_video_segment(codec.source_packets, payload_bytes)
    started = time.time()
    encoded = codec.encode_window(source_payloads)
    encode_time = time.time() - started
    print(f"Encoded {codec.source_packets} payloads of {payload_bytes} B "
          f"into {len(encoded)} packets in {encode_time * 1000:.0f} ms.")

    # Lose exactly as many packets as the code tolerates, chosen at random.
    rng = random.Random(2024)
    lost = sorted(rng.sample(range(codec.window_size), codec.loss_tolerance()))
    received = {index: payload for index, payload in enumerate(encoded) if index not in lost}
    print(f"Dropping {len(lost)} packets (indices {lost}); {len(received)} arrive.")

    started = time.time()
    recovered = codec.decode_window(received)
    decode_time = time.time() - started
    assert recovered == source_payloads, "decoded payloads differ from the original"
    print(f"Decoded the window in {decode_time * 1000:.0f} ms — payloads identical to the source.")

    # One more loss than the FEC budget and the window is undecodable.
    over_budget = dict(list(received.items())[:-1])
    print(f"\nWith only {len(over_budget)} packets the counting rule says "
          f"decodable={codec.can_decode(len(over_budget))} — the window is jittered, "
          "exactly what the stream-quality metric counts.")


if __name__ == "__main__":
    main()
