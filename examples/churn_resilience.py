#!/usr/bin/env python3
"""Churn resilience study: how proactiveness determines survival.

Reproduces the experiment behind Figures 7 and 8 of the paper at a small
scale: a catastrophic failure kills a configurable fraction of the nodes
mid-stream, and we compare how survivors fare under different view refresh
rates X (1 = new partners every round, ∞ = fully static mesh).

What to look for in the output:

* with X = 1 most survivors never notice the failure (the paper reports
  ~70 % unaffected at 20 % churn) and survivors keep decoding > 90 % of the
  windows even under heavy churn;
* static and slowly-refreshed meshes lose a large part of the stream, with
  wildly varying outcomes depending on where the failures land;
* the quality dip of affected survivors is concentrated in the few seconds
  it takes the membership layer to stop handing out crashed nodes.

Run with::

    python examples/churn_resilience.py
    python examples/churn_resilience.py --churn 0.5 --nodes 60
"""

from __future__ import annotations

import argparse
import os
import time

from repro import (
    CatastrophicChurn,
    GossipConfig,
    INFINITE,
    NetworkConfig,
    SessionConfig,
    StreamConfig,
    run_session,
)
from repro.metrics.report import format_table

# Smoke hook for the example test suite: REPRO_EXAMPLE_SMOKE=1 shrinks the
# scale so every example finishes in a couple of seconds.
SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def run_once(num_nodes: int, refresh_every: float, churn_fraction: float, seed: int):
    """One churn experiment with the given view refresh rate X."""
    stream = StreamConfig(
        rate_kbps=600.0,
        payload_bytes=1000,
        source_packets_per_window=20,
        fec_packets_per_window=2,
        num_windows=10 if SMOKE else 80,
    )
    churn_time = stream.duration * 0.3
    return run_session(
        SessionConfig(
            num_nodes=num_nodes,
            seed=seed,
            gossip=GossipConfig(fanout=7, refresh_every=refresh_every),
            stream=stream,
            network=NetworkConfig(upload_cap_kbps=700.0, max_backlog_seconds=10.0),
            churn=CatastrophicChurn(time=churn_time, fraction=churn_fraction),
            failure_detection_delay=5.0,
            extra_time=30.0,
        )
    )


def describe_refresh(value: float) -> str:
    return "inf (static mesh)" if value == INFINITE else str(int(value))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=45, help="system size including the source")
    parser.add_argument("--churn", type=float, default=0.2, help="fraction of nodes failing at once")
    parser.add_argument("--seed", type=int, default=11, help="root random seed")
    arguments = parser.parse_args()
    if SMOKE:
        arguments.nodes = min(arguments.nodes, 20)

    print(
        f"Catastrophic churn study: {arguments.churn:.0%} of {arguments.nodes} nodes fail "
        "mid-stream; comparing view refresh rates X\n"
    )

    rows = []
    for refresh in (1, INFINITE) if SMOKE else (1, 2, 20, INFINITE):
        started = time.time()
        result = run_once(arguments.nodes, refresh, arguments.churn, arguments.seed)
        unaffected_20s = result.viewing_percentage(lag=20.0)
        unaffected_offline = result.viewing_percentage()
        complete_windows = result.average_complete_windows_percentage(20.0)
        rows.append(
            [
                describe_refresh(refresh),
                unaffected_20s,
                unaffected_offline,
                complete_windows,
                result.delivery_ratio() * 100.0,
            ]
        )
        print(
            f"  X = {describe_refresh(refresh):>17}: {unaffected_20s:5.1f}% unaffected (20s lag), "
            f"{complete_windows:5.1f}% windows decoded, "
            f"{len(result.failed_nodes)} nodes killed  ({time.time() - started:.1f}s)"
        )

    print("\nSummary over surviving nodes:\n")
    print(
        format_table(
            [
                "X (refresh rate)",
                "% unaffected (20s lag)",
                "% unaffected (offline)",
                "avg % complete windows",
                "% packets delivered",
            ],
            rows,
        )
    )
    print(
        "\nThe fully dynamic mesh (X = 1) leaves the most survivors untouched and keeps the\n"
        "window completeness above 90%, while the static mesh both concentrates load and keeps\n"
        "pointing at dead nodes — the paper's central proactiveness finding."
    )


if __name__ == "__main__":
    main()
