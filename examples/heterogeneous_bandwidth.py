#!/usr/bin/env python3
"""Heterogeneous upload capacities: who carries the stream?

The paper caps every PlanetLab node at the same rate and observes (Figure 4)
that the *used* bandwidth is nonetheless heterogeneous — well-connected nodes
win the proposal race and serve more — and that the heterogeneity grows with
spare capacity.  This example goes one step further than the paper and also
runs a genuinely heterogeneous capacity distribution (a "cable/DSL mix"),
showing how the gossip protocol naturally shifts load onto the nodes that can
afford it while the stream stays viewable.

All three configurations come from the scenario registry: the homogeneous
points are the ``homogeneous`` scenario at two caps, the mix is the
``heterogeneous-bandwidth`` scenario (30 % strong peers at 2 Mbps, 70 % weak
peers at 500 kbps — the weak class alone cannot sustain the 600 kbps
stream).

Run with::

    python examples/heterogeneous_bandwidth.py
"""

from __future__ import annotations

import os
import time

from repro import StreamConfig
from repro.metrics.report import format_table
from repro.scenarios import build_scenario, run_spec

# Smoke hook for the example test suite: REPRO_EXAMPLE_SMOKE=1 shrinks the
# scale so every example finishes in a couple of seconds.
SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def build_stream() -> StreamConfig:
    return StreamConfig(
        rate_kbps=600.0,
        payload_bytes=1000,
        source_packets_per_window=20,
        fec_packets_per_window=2,
        num_windows=8 if SMOKE else 60,
    )


def summarize(label: str, result, caps=None) -> list:
    usage = result.bandwidth_usage()
    per_node = usage.per_node()
    if caps:
        strong = [kbps for node, kbps in per_node.items() if caps.get(node, 0) >= 2000.0]
        weak = [kbps for node, kbps in per_node.items() if caps.get(node, 0) < 2000.0]
        strong_mean = sum(strong) / len(strong) if strong else 0.0
        weak_mean = sum(weak) / len(weak) if weak else 0.0
    else:
        strong_mean = weak_mean = usage.mean_kbps()
    return [
        label,
        result.viewing_percentage(lag=10.0),
        result.viewing_percentage(),
        usage.mean_kbps(),
        usage.max_kbps(),
        usage.heterogeneity(),
        strong_mean,
        weak_mean,
    ]


def main() -> None:
    num_nodes = 16 if SMOKE else 40
    seed = 31
    print(f"Comparing capacity distributions over {num_nodes} nodes (600 kbps stream, fanout 7)\n")

    rows = []
    for label, cap in [("homogeneous 700 kbps", 700.0), ("homogeneous 2000 kbps", 2000.0)]:
        started = time.time()
        spec = build_scenario(
            "homogeneous",
            num_nodes=num_nodes,
            seed=seed,
            stream=build_stream(),
            upload_cap_kbps=cap,
        )
        rows.append(summarize(label, run_spec(spec)))
        print(f"  {label:<24} done in {time.time() - started:.1f}s")

    started = time.time()
    mix_spec = build_scenario(
        "heterogeneous-bandwidth",
        num_nodes=num_nodes,
        seed=seed,
        stream=build_stream(),
    )
    caps = mix_spec.per_node_caps()
    rows.append(summarize("cable/DSL mix (2000/500)", run_spec(mix_spec), caps))
    print(f"  {'cable/DSL mix (2000/500)':<24} done in {time.time() - started:.1f}s\n")

    print(
        format_table(
            [
                "capacity distribution",
                "% view @10s",
                "% view offline",
                "mean up kbps",
                "max up kbps",
                "CV",
                "strong-class mean",
                "weak-class mean",
            ],
            rows,
        )
    )
    print(
        "\nUnder the saturated homogeneous cap the contribution is nearly uniform; with spare\n"
        "capacity (2000 kbps) or an explicit strong/weak mix, the well-provisioned nodes end up\n"
        "carrying a disproportionate share of the serve traffic — exactly the Figure 4 effect."
    )


if __name__ == "__main__":
    main()
