#!/usr/bin/env python3
"""Quickstart: stream to a small swarm and print the paper's two metrics.

Runs the ``homogeneous`` scenario from the scenario registry — one source,
39 receivers, 700 kbps upload caps, fanout 7, partner refresh every round —
and reports stream quality (percentage of nodes viewing with < 1 % jitter)
at several playout lags, stream lag statistics, and the per-node upload
usage summary.

Every experiment shape in this repository is a named
:class:`~repro.scenarios.ScenarioSpec`; ``run_scenario(name, **overrides)``
compiles it through the :class:`~repro.scenarios.SessionBuilder` and runs
it.  List the available shapes with ``available_scenarios()``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import os
import time

from repro import OFFLINE_LAG, StreamConfig, available_scenarios
from repro.metrics.report import format_table
from repro.scenarios import build_scenario, run_spec

# Smoke hook for the example test suite: REPRO_EXAMPLE_SMOKE=1 shrinks the
# scale so every example finishes in a couple of seconds.
SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def main() -> None:
    spec = build_scenario(
        "homogeneous",
        num_nodes=16 if SMOKE else 40,
        seed=2024,
        stream=StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=20,
            fec_packets_per_window=2,
            num_windows=8 if SMOKE else 60,
        ),
    )

    print(f"Available scenarios: {', '.join(available_scenarios())}")
    print(f"Running {spec.describe()}")
    print(f"({spec.num_nodes} nodes, {spec.stream.duration:.0f}s of 600 kbps stream)...")
    started = time.time()
    result = run_spec(spec)
    elapsed = time.time() - started
    print(f"Done in {elapsed:.1f}s of wall-clock time "
          f"({result.events_processed:,} simulated events).\n")

    # ------------------------------------------------------------------
    # Stream quality at several playout lags (the paper's main metric)
    # ------------------------------------------------------------------
    rows = []
    for label, lag in [("5 s", 5.0), ("10 s", 10.0), ("20 s", 20.0), ("offline", OFFLINE_LAG)]:
        rows.append(
            [
                label,
                result.viewing_percentage(lag=lag),
                result.average_complete_windows_percentage(lag),
            ]
        )
    print("Stream quality by playout lag:")
    print(format_table(["playout lag", "% nodes with <1% jitter", "avg % complete windows"], rows))
    print()

    # ------------------------------------------------------------------
    # Stream lag distribution
    # ------------------------------------------------------------------
    quality = result.quality()
    critical_lags = sorted(quality.critical_lags())
    finite = [lag for lag in critical_lags if lag != float("inf")]
    if finite:
        print("Stream lag (time to view 99% of windows):")
        print(f"  best node : {finite[0]:6.2f} s")
        print(f"  median    : {finite[len(finite) // 2]:6.2f} s")
        print(f"  worst node: {finite[-1]:6.2f} s")
    print(f"  nodes never reaching 99% quality: {len(critical_lags) - len(finite)}")
    print()

    # ------------------------------------------------------------------
    # Upload bandwidth usage
    # ------------------------------------------------------------------
    usage = result.bandwidth_usage()
    print("Upload bandwidth usage across receivers (averaged over the whole run):")
    print(f"  mean: {usage.mean_kbps():6.0f} kbps   max: {usage.max_kbps():6.0f} kbps   "
          f"heterogeneity (CV): {usage.heterogeneity():.2f}")
    print(f"  share carried by the top 10% of nodes: {usage.top_contributor_share(0.1):.0%}")
    print(f"  packets delivered overall: {result.delivery_ratio():.1%}")


if __name__ == "__main__":
    main()
