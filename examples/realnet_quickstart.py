#!/usr/bin/env python3
"""Real-network quickstart: the same gossip protocol over real UDP sockets.

Runs a small streaming session twice — once on the discrete-event
simulator and once over actual asyncio UDP datagram endpoints on localhost
(``repro.realnet``) — and prints the sim-vs-real agreement report.  The
protocol code is byte-for-byte the same in both runs: nodes schedule
against the :class:`~repro.core.host.Host` interface, and only the
execution substrate changes underneath them.

The real run executes on the wall clock: ``time_scale`` wall seconds per
virtual second, so the default below finishes a ~6 virtual-second session
in about 3 wall seconds.  See ``docs/realnet.md`` for the contract and the
wall-clock caveats.

Run with::

    python examples/realnet_quickstart.py
"""

from __future__ import annotations

import os
import time

from repro import GossipConfig, NetworkConfig, SessionConfig, StreamConfig
from repro.realnet import RealNetConfig, RealNetSession, compare_backends

# Smoke hook for the example test suite: REPRO_EXAMPLE_SMOKE=1 shrinks the
# scale so every example finishes in a couple of seconds.
SMOKE = bool(os.environ.get("REPRO_EXAMPLE_SMOKE"))


def build_config() -> SessionConfig:
    """A session small enough for a localhost socket fleet."""
    return SessionConfig(
        num_nodes=8 if SMOKE else 12,
        seed=7,
        gossip=GossipConfig(fanout=5, refresh_every=1),
        stream=StreamConfig(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=20,
            fec_packets_per_window=2,
            num_windows=2 if SMOKE else 4,
        ),
        network=NetworkConfig(upload_cap_kbps=700.0, max_backlog_seconds=10.0),
        extra_time=4.0 if SMOKE else 5.0,
    )


def main() -> None:
    config = build_config()
    realnet = RealNetConfig(time_scale=0.25 if SMOKE else 0.5)
    horizon = config.stream.duration + config.extra_time

    print(
        f"Streaming to {config.num_nodes} nodes over real UDP sockets "
        f"({horizon:.1f} virtual seconds at time_scale={realnet.time_scale})..."
    )
    started = time.time()
    result = RealNetSession(config, realnet).run()
    print(
        f"Real run done in {time.time() - started:.1f}s wall: "
        f"delivery {result.delivery_ratio():.1%}, "
        f"viewing@10s {result.viewing_percentage(lag=10.0):.1f}%, "
        f"{result.events_processed:,} callbacks dispatched.\n"
    )

    print("Running the simulator on the identical config and diffing the metrics...")
    report = compare_backends(config, realnet)
    print(report.format_text())
    print(
        "\nBoth backends share the upload limiter, loss and latency physics;\n"
        "what differs is the execution substrate — and the deltas above are\n"
        "the measure of how little that matters."
    )
    if not report.passed():
        raise SystemExit(1)


if __name__ == "__main__":
    main()
