"""Deterministic, named random-number streams.

A single experiment uses randomness in many independent places: partner
selection on every node, per-link latency jitter, uniform message loss, churn
victim selection, and workload generation.  Seeding them all from one
``random.Random`` would make every component's draws depend on the exact
*order* in which other components happen to draw — changing the fanout would
silently change the latency samples.

Instead, every consumer asks the :class:`RngRegistry` for a *named* stream
("latency", "loss", "partners/node-17", ...).  Each stream's seed is derived
from the root seed and the name with a cryptographic hash, so:

* the same (seed, name) always yields the same stream, regardless of what
  other streams exist or how much they have been consumed;
* distinct names yield statistically independent streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    The derivation is stable across Python versions and processes (it does
    not use ``hash()``, which is salted).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    __slots__ = ("_root_seed", "_streams")

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def root_seed(self) -> int:
        """The root seed every stream is derived from."""
        return self._root_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream registered under ``name``, creating it if needed."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        created = random.Random(derive_seed(self._root_seed, name))
        self._streams[name] = created
        return created

    def node_stream(self, purpose: str, node_id: int) -> random.Random:
        """Convenience for per-node streams, e.g. ``node_stream("partners", 17)``."""
        return self.stream(f"{purpose}/node-{node_id}")

    def names(self) -> Iterable[str]:
        """Names of the streams created so far (for diagnostics)."""
        return tuple(self._streams)

    def fork(self, name: str) -> "RngRegistry":
        """Create a sub-registry whose root seed is derived from ``name``.

        Useful when a component (e.g. the workload generator) wants its own
        namespace of streams isolated from the simulator's.
        """
        return RngRegistry(derive_seed(self._root_seed, f"fork/{name}"))
