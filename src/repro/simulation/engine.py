"""The simulation event loop.

:class:`Simulator` owns the clock, the event queue and the RNG registry.  All
other components (transport, gossip nodes, churn injectors, metric probes)
hold a reference to the simulator and interact with it through three verbs:

* ``schedule(delay, callback, *args)`` — run ``callback`` after ``delay``
  simulated seconds;
* ``schedule_at(time, callback, *args)`` — run at an absolute instant;
* ``now`` — the current simulated time.

Running the simulation is ``run(until=...)`` or ``run_until_idle()``.

Observers
---------
The engine exposes its event-dispatch edge to registered observers
(:meth:`Simulator.add_observer`): immediately before a popped event's
callback runs, every observer's ``on_event_dispatch(time, callback, args)``
is invoked.  The validation layer (:mod:`repro.validation`) uses this to
check invariants such as event-time monotonicity on *every* run.  With no
observers registered the dispatch loop pays a single ``is None`` test per
event — measured in ``benchmarks/bench_observer_overhead.py``.
"""

from __future__ import annotations

from typing import Any, List, Optional, Union

from repro.simulation.backend import SimulationBackend, resolve_backend
from repro.simulation.clock import SimulationClock
from repro.simulation.errors import SimulationStateError, SimulationTimeError
from repro.simulation.event_queue import EventCallback, EventHandle, EventQueue
from repro.simulation.rng import RngRegistry


class Simulator:
    """Discrete-event simulator: clock + event queue + named RNG streams.

    Parameters
    ----------
    seed:
        Root seed for the RNG registry.  Every random draw in an experiment
        descends from this seed, making runs reproducible.
    start_time:
        Initial simulated time (seconds).
    backend:
        Which dispatch loop drives :meth:`run`: a backend name
        (``"python"``/``"numpy"``/``"auto"``), a
        :class:`~repro.simulation.backend.SimulationBackend` instance, or
        ``None`` to resolve from ``$REPRO_BACKEND`` (default ``auto``).
        Every backend is pinned byte-identical to the ``python`` oracle;
        see :mod:`repro.simulation.backend`.
    """

    def __init__(
        self,
        seed: int = 0,
        start_time: float = 0.0,
        backend: Union[None, str, SimulationBackend] = None,
    ) -> None:
        self._clock = SimulationClock(start_time)
        self._queue = EventQueue()
        self._rng = RngRegistry(seed)
        self._running = False
        self._events_processed = 0
        self._backend = resolve_backend(backend)
        # ``None`` (not an empty list) when nobody watches: the dispatch hot
        # path then pays exactly one attribute load + identity test per event.
        self._observers: Optional[List[Any]] = None

    # ------------------------------------------------------------------
    # Time and randomness
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock._now  # flattened: this property is read per send

    @property
    def rng(self) -> RngRegistry:
        """Registry of named deterministic random streams."""
        return self._rng

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for diagnostics/limits)."""
        return self._events_processed

    @property
    def backend_name(self) -> str:
        """Name of the dispatch backend driving :meth:`run`."""
        return self._backend.name

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: EventCallback, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay schedules the callback
        for the current instant, after all events already queued for it.
        """
        if delay < 0.0:
            raise SimulationTimeError(f"cannot schedule with negative delay {delay!r}")
        return self._queue.push(self._clock.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: EventCallback, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._clock.now:
            raise SimulationTimeError(
                f"cannot schedule at {time!r}, which is before now ({self._clock.now!r})"
            )
        return self._queue.push(time, callback, *args)

    def schedule_fire_and_forget(self, delay: float, callback: EventCallback, *args: Any) -> None:
        """Schedule ``callback(*args)`` ``delay`` seconds from now, uncancellably.

        Like :meth:`schedule` but returns no handle and allocates none: every
        fire-and-forget event shares one never-cancelled sentinel.  Used on
        the hottest scheduling path (datagram deliveries, which are scheduled
        by the million and never cancelled).
        """
        if delay < 0.0:
            raise SimulationTimeError(f"cannot schedule with negative delay {delay!r}")
        self._queue.push_unhandled(self._clock.now + delay, callback, *args)

    def schedule_fire_and_forget_at(
        self, time: float, callback: EventCallback, *args: Any
    ) -> None:
        """Absolute-time variant of :meth:`schedule_fire_and_forget`.

        Used by the datagram router seam: a delivery time computed on one
        shard must be re-scheduled *verbatim* on the receiving shard, without
        a round trip through a relative delay (which would not survive float
        arithmetic bit-exactly).
        """
        if time < self._clock.now:
            raise SimulationTimeError(
                f"cannot schedule at {time!r}, which is before now ({self._clock.now!r})"
            )
        self._queue.push_unhandled(time, callback, *args)

    def cancel(self, handle: Optional[EventHandle]) -> None:
        """Cancel a previously scheduled event.  ``None`` is accepted and ignored."""
        if handle is not None:
            handle.cancel()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def add_observer(self, observer: Any) -> None:
        """Register a dispatch observer.

        ``observer.on_event_dispatch(time, callback, args)`` is called right
        before each event's callback executes (the clock already shows the
        event's time and ``events_processed`` already counts it).  See
        :class:`repro.validation.observers.SimulationObserver`.
        """
        if self._observers is None:
            self._observers = []
        self._observers.append(observer)

    def remove_observer(self, observer: Any) -> None:
        """Unregister a dispatch observer (restores the zero-cost path)."""
        if self._observers is not None:
            self._observers.remove(observer)
            if not self._observers:
                self._observers = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` if none remained."""
        event = self._queue.pop()
        if event is None:
            return False
        self._clock.advance_to(event.time)
        self._events_processed += 1
        if self._observers is not None:
            for observer in self._observers:
                observer.on_event_dispatch(event.time, event.callback, event.args)
        event.callback(*event.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in timestamp order.

        Parameters
        ----------
        until:
            Stop once the next event would be strictly after this time, and
            advance the clock to exactly ``until``.  ``None`` runs until the
            queue is empty.
        max_events:
            Optional safety valve: stop after executing this many events.

        Returns
        -------
        int
            The number of events executed by this call.

        The dispatch loop itself lives in the configured backend
        (:mod:`repro.simulation.backend`); this method owns the re-entrancy
        guard and the final clock advance, which are backend-independent.
        """
        if self._running:
            raise SimulationStateError("Simulator.run() called re-entrantly from an event")
        self._running = True
        try:
            executed = self._backend.run_loop(self, until, max_events)
        finally:
            self._running = False
        if until is not None and self._clock.now < until:
            self._clock.advance_to(until)
        return executed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until no events remain (or ``max_events`` is hit)."""
        return self.run(until=None, max_events=max_events)

    def clear(self) -> None:
        """Drop all pending events (used when tearing down an experiment)."""
        self._queue.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Simulator(now={self.now:.3f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
