"""Discrete-event simulation kernel.

This package is the lowest substrate of the reproduction.  Everything in the
system — network transmission, gossip timers, churn events, stream emission —
is expressed as callbacks scheduled on a single :class:`Simulator` instance.

The kernel is deliberately small and dependency-free:

* :class:`SimulationClock` — a monotonically advancing simulated clock.
* :class:`EventQueue` / :class:`EventHandle` — a cancellable priority queue
  of timestamped callbacks with deterministic FIFO tie-breaking.
* :class:`Simulator` — the event loop: ``schedule`` / ``schedule_at`` /
  ``run`` / ``run_until_idle``.
* :class:`Timer` and :class:`PeriodicTimer` — higher-level timer helpers used
  by the gossip protocol (gossip period, retransmission timers).
* :class:`RngRegistry` — named, deterministically derived random streams so
  that every experiment is reproducible from a single seed.

The dispatch loop behind :meth:`Simulator.run` is pluggable: see
:mod:`repro.simulation.backend` for the scalar oracle, the batched fast
path, and the ``REPRO_BACKEND`` selection rules.
"""

from repro.simulation.backend import (
    BACKEND_ENV,
    SimulationBackend,
    numpy_available,
    resolve_backend,
    resolve_backend_name,
)
from repro.simulation.clock import SimulationClock
from repro.simulation.errors import SimulationError, SimulationTimeError
from repro.simulation.event_queue import EventHandle, EventQueue, ScheduledEvent
from repro.simulation.engine import Simulator
from repro.simulation.rng import RngRegistry, derive_seed
from repro.simulation.timers import PeriodicTimer, Timer

__all__ = [
    "BACKEND_ENV",
    "EventHandle",
    "EventQueue",
    "PeriodicTimer",
    "RngRegistry",
    "ScheduledEvent",
    "SimulationBackend",
    "SimulationClock",
    "SimulationError",
    "SimulationTimeError",
    "Simulator",
    "Timer",
    "derive_seed",
    "numpy_available",
    "resolve_backend",
    "resolve_backend_name",
]
