"""Cancellable priority queue of timestamped events.

The queue orders events by ``(time, sequence_number)`` so that two events
scheduled for the same instant fire in the order they were scheduled.  This
determinism matters: gossip experiments are compared across parameter sweeps
and must not depend on hash ordering or heap tie-breaking accidents.

Cancellation is *lazy*: cancelling an event marks its handle and the event is
skipped when it reaches the top of the heap.  This makes cancellation O(1),
which the gossip protocol relies on (retransmission timers are cancelled for
every packet that is served in time — the common case).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.simulation.errors import SimulationTimeError

EventCallback = Callable[..., None]


@dataclass(slots=True)
class EventHandle:
    """Handle returned when scheduling an event, used to cancel it."""

    time: float
    sequence: int
    _cancelled: bool = field(default=False, repr=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped by the queue."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this handle."""
        return self._cancelled


@dataclass(order=True, slots=True)
class ScheduledEvent:
    """Internal heap entry pairing a handle with its callback."""

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    args: tuple[Any, ...] = field(compare=False, default=())
    handle: EventHandle = field(compare=False, default=None)  # type: ignore[assignment]


class EventQueue:
    """A deterministic, cancellable min-heap of :class:`ScheduledEvent`."""

    __slots__ = ("_heap", "_sequence")

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._sequence = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if not event.handle.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None

    def push(self, time: float, callback: EventCallback, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at simulated ``time``.

        Returns a handle whose :meth:`EventHandle.cancel` prevents execution.
        """
        if time < 0.0:
            raise SimulationTimeError(f"cannot schedule event at negative time {time!r}")
        handle = EventHandle(time=time, sequence=self._sequence)
        event = ScheduledEvent(
            time=time,
            sequence=self._sequence,
            callback=callback,
            args=args,
            handle=handle,
        )
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return handle

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if the queue is empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> ScheduledEvent | None:
        """Remove and return the next live event, or ``None`` if empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def _discard_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].handle.cancelled:
            heapq.heappop(heap)

    def clear(self) -> None:
        """Drop every queued event (used when tearing an experiment down)."""
        self._heap.clear()
