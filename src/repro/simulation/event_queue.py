"""Cancellable priority queue of timestamped events.

The queue orders events by ``(time, sequence_number)`` so that two events
scheduled for the same instant fire in the order they were scheduled.  This
determinism matters: gossip experiments are compared across parameter sweeps
and must not depend on hash ordering or heap tie-breaking accidents.

Cancellation is *lazy*: cancelling an event marks its handle and the event is
skipped when it reaches the top of the heap.  This makes cancellation O(1),
which the gossip protocol relies on (retransmission timers are cancelled for
every packet that is served in time — the common case).

Lazy cancellation alone, however, lets long sessions drag a heap full of
dead retransmission timers: every packet served in time leaves a cancelled
entry buried in the heap until its (far-future) timestamp surfaces, and each
of those dead entries taxes every subsequent push and pop with extra sift
work.  The queue therefore keeps a **live counter** — cancelled handles
report back, making ``len()`` O(1) — and **compacts** the heap (filters the
dead entries out and re-heapifies) once they outnumber the live ones.
Compaction never changes pop order: the heap order is the *total* order
``(time, sequence)``, so rebuilding from any subset pops identically.

Heap entries are :class:`ScheduledEvent` named tuples.  The sequence number
is unique per queue, so tuple comparison always resolves within the
``(time, sequence)`` prefix — the callback is never compared — and the
millions of comparisons a long session performs run entirely in C instead
of a Python-level ``__lt__``.

Two bulk operations exist for the batched simulation backend
(:mod:`repro.simulation.backend`): :meth:`EventQueue.pop_batch` pops a run
of live events in one call while preserving the total order and the live
counter, and :meth:`EventQueue.push_unhandled` schedules fire-and-forget
events (datagram deliveries are never cancelled) without allocating a
cancellation handle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, NamedTuple, Optional

from repro.simulation.errors import SimulationTimeError

EventCallback = Callable[..., None]

COMPACTION_MIN_DEAD = 64
"""Never compact below this many dead entries (tiny heaps aren't worth it)."""


@dataclass(slots=True)
class EventHandle:
    """Handle returned when scheduling an event, used to cancel it."""

    time: float
    sequence: int
    _cancelled: bool = field(default=False, repr=False)
    _queue: Optional["EventQueue"] = field(default=None, repr=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped by the queue."""
        if self._cancelled:
            return
        self._cancelled = True
        queue = self._queue
        if queue is not None:
            self._queue = None
            queue._note_cancelled()

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this handle."""
        return self._cancelled


#: Shared handle for fire-and-forget events.  It is never exposed to callers
#: and can never be cancelled, so one instance serves every unhandled event.
_NEVER_CANCELLED = EventHandle(time=-1.0, sequence=-1)


class ScheduledEvent(NamedTuple):
    """Internal heap entry pairing a handle with its callback.

    A named tuple so heap comparisons are plain C tuple comparisons; the
    unique ``sequence`` guarantees ordering resolves before the
    non-comparable ``callback`` field is ever reached.
    """

    time: float
    sequence: int
    callback: EventCallback
    args: tuple = ()
    handle: EventHandle = None  # type: ignore[assignment]


class EventQueue:
    """A deterministic, cancellable min-heap of :class:`ScheduledEvent`."""

    __slots__ = ("_heap", "_sequence", "_dead", "_epoch")

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._sequence = 0
        self._dead = 0  # cancelled entries still buried in the heap
        self._epoch = 0  # bumped by clear(); lets bulk dispatch loops abort

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events still queued.  O(1)."""
        return len(self._heap) - self._dead

    def __bool__(self) -> bool:
        return len(self._heap) > self._dead

    @property
    def dead_entries(self) -> int:
        """Cancelled entries currently buried in the heap (diagnostics)."""
        return self._dead

    def push(self, time: float, callback: EventCallback, *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at simulated ``time``.

        Returns a handle whose :meth:`EventHandle.cancel` prevents execution.
        """
        if time < 0.0:
            raise SimulationTimeError(f"cannot schedule event at negative time {time!r}")
        time = float(time)
        handle = EventHandle(time=time, sequence=self._sequence, _queue=self)
        event = ScheduledEvent(time, self._sequence, callback, args, handle)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return handle

    def push_unhandled(self, time: float, callback: EventCallback, *args: Any) -> None:
        """Schedule a fire-and-forget event that can never be cancelled.

        Identical pop order to :meth:`push` (same sequence counter), but no
        per-event :class:`EventHandle` is allocated: every entry shares one
        never-cancelled sentinel.  Used for the transport's datagram
        deliveries, which are scheduled by the million and never cancelled.
        """
        if time < 0.0:
            raise SimulationTimeError(f"cannot schedule event at negative time {time!r}")
        event = ScheduledEvent(float(time), self._sequence, callback, args, _NEVER_CANCELLED)
        self._sequence += 1
        heapq.heappush(self._heap, event)

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if the queue is empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> ScheduledEvent | None:
        """Remove and return the next live event, or ``None`` if empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        # Detach the handle: a later cancel() of an already-popped (possibly
        # already-executed) event must not corrupt the dead-entry counter.
        event.handle._queue = None
        return event

    def pop_batch(self, until: float | None = None, limit: int | None = None) -> List[ScheduledEvent]:
        """Remove and return a run of live events in ``(time, sequence)`` order.

        Pops every live event with ``time <= until`` (all of them when
        ``until`` is ``None``), up to ``limit`` entries per call.  Exactly
        equivalent to repeated :meth:`pop` calls: cancelled entries are
        discarded (maintaining the O(1) live counter) and every returned
        event's handle is detached, so a cancel() issued *while the batch is
        being executed* marks the handle without touching the queue — the
        dispatch loop re-checks ``handle.cancelled`` per event.
        """
        self._discard_cancelled()
        heap = self._heap
        batch: List[ScheduledEvent] = []
        append = batch.append
        pop = heapq.heappop
        remaining = len(heap) if limit is None else limit
        while heap and remaining > 0:
            if until is not None and heap[0].time > until:
                break
            event = pop(heap)
            handle = event.handle
            if handle._cancelled:
                self._dead -= 1
                continue
            handle._queue = None
            append(event)
            remaining -= 1
        return batch

    def _discard_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].handle.cancelled:
            heapq.heappop(heap)
            self._dead -= 1

    def _note_cancelled(self) -> None:
        """A live handle was cancelled; compact once the dead dominate."""
        self._dead += 1
        if self._dead >= COMPACTION_MIN_DEAD and self._dead * 2 > len(self._heap):
            self.compact()

    def compact(self) -> None:
        """Drop every cancelled entry and re-heapify the survivors.

        Safe at any point: heap order is the total order ``(time,
        sequence)``, so the rebuilt heap pops in exactly the same order the
        lazy queue would have.
        """
        if self._dead == 0:
            return
        # In-place rebuild: dispatch loops hold a direct reference to the
        # heap list across callbacks (and a callback can trigger compaction
        # via cancel), so the list object's identity must never change.
        heap = self._heap
        heap[:] = [event for event in heap if not event.handle.cancelled]
        heapq.heapify(heap)
        self._dead = 0

    def clear(self) -> None:
        """Drop every queued event (used when tearing an experiment down)."""
        for event in self._heap:
            event.handle._queue = None
        self._heap.clear()
        self._dead = 0
        self._epoch += 1
