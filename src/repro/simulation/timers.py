"""Timer helpers built on top of the simulator's event queue.

The gossip protocol uses two kinds of timers:

* the **gossip timer** — a fixed-period tick on every node that triggers a
  gossip round (``PeriodicTimer``);
* **retransmission timers** — one-shot timers armed when a node requests
  packets and cancelled when the packets arrive (``Timer``).

Both are written against the :class:`~repro.core.host.Host` surface
(``schedule`` returning a cancellable handle, plus ``rng`` for jitter), so
the same timer objects drive nodes on the discrete-event simulator and on
the real-network asyncio backend (:mod:`repro.realnet`) unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # imported for type hints only: core sits above this layer
    from repro.core.host import Host, ScheduledHandle


class Timer:
    """A one-shot, cancellable, re-armable timer.

    The callback receives no arguments; bind state with a closure or
    ``functools.partial``.
    """

    __slots__ = ("_simulator", "_callback", "_handle", "_fired")

    def __init__(self, simulator: "Host", callback: Callable[[], None]) -> None:
        self._simulator = simulator
        self._callback = callback
        self._handle: Optional["ScheduledHandle"] = None
        self._fired = False

    @property
    def armed(self) -> bool:
        """Whether the timer is currently scheduled and not yet fired."""
        return self._handle is not None and not self._handle.cancelled and not self._fired

    @property
    def fired(self) -> bool:
        """Whether the timer has fired at least once since the last arm."""
        return self._fired

    def arm(self, delay: float) -> None:
        """(Re-)schedule the timer ``delay`` seconds from now.

        Re-arming an already armed timer cancels the previous schedule.
        """
        self.cancel()
        self._fired = False
        self._handle = self._simulator.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Cancel the timer if it is armed; no-op otherwise."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._fired = True
        self._callback()


class PeriodicTimer:
    """A fixed-period timer that re-arms itself after every fire.

    Parameters
    ----------
    simulator:
        The simulator to schedule on.
    period:
        Seconds between consecutive fires (must be > 0).
    callback:
        Zero-argument callable invoked at every fire.
    start_delay:
        Delay before the first fire.  Defaults to one full period, matching
        the behaviour of a timer started "now" that first ticks after its
        period elapses.  Pass 0.0 to fire immediately.
    jitter:
        Optional ±fraction of the period added as uniform jitter to each
        interval, drawn from the named RNG stream ``"timer-jitter"``.  The
        paper's implementation has no jitter; it is exposed for sensitivity
        experiments.
    """

    __slots__ = (
        "_simulator",
        "_period",
        "_callback",
        "_start_delay",
        "_jitter",
        "_handle",
        "_fire_count",
        "_running",
    )

    def __init__(
        self,
        simulator: "Host",
        period: float,
        callback: Callable[[], None],
        start_delay: Optional[float] = None,
        jitter: float = 0.0,
    ) -> None:
        if period <= 0.0:
            raise ValueError(f"period must be positive, got {period!r}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter!r}")
        self._simulator = simulator
        self._period = float(period)
        self._callback = callback
        self._start_delay = period if start_delay is None else float(start_delay)
        self._jitter = float(jitter)
        self._handle: Optional["ScheduledHandle"] = None
        self._fire_count = 0
        self._running = False

    @property
    def period(self) -> float:
        """Seconds between fires."""
        return self._period

    @property
    def fire_count(self) -> int:
        """Number of times the timer has fired since :meth:`start`."""
        return self._fire_count

    @property
    def running(self) -> bool:
        """Whether the timer is active (started and not stopped)."""
        return self._running

    def start(self) -> None:
        """Start the timer.  Starting an already-running timer is a no-op."""
        if self._running:
            return
        self._running = True
        self._handle = self._simulator.schedule(self._start_delay, self._fire)

    def stop(self) -> None:
        """Stop the timer; it can be started again later."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_interval(self) -> float:
        if self._jitter == 0.0:
            return self._period
        rng = self._simulator.rng.stream("timer-jitter")
        spread = self._period * self._jitter
        return self._period + rng.uniform(-spread, spread)

    def _fire(self) -> None:
        if not self._running:
            return
        self._fire_count += 1
        self._callback()
        if self._running:
            self._handle = self._simulator.schedule(self._next_interval(), self._fire)
