"""Exception types raised by the simulation kernel."""


class SimulationError(Exception):
    """Base class for all errors raised by the simulation kernel."""


class SimulationTimeError(SimulationError):
    """Raised when an operation would move simulated time backwards.

    The simulation clock is strictly monotonic: events may share a timestamp
    (ties are broken by insertion order) but the clock can never be rewound.
    Scheduling an event in the past, or advancing the clock to an earlier
    instant, raises this error instead of silently corrupting causality.
    """


class SimulationStateError(SimulationError):
    """Raised when the simulator is used in an invalid state.

    Examples: running a simulator from within one of its own event callbacks,
    or scheduling work on a simulator that has been explicitly closed.
    """
