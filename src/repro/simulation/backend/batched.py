"""The batched dispatch loop: bulk event pops, merged back into total order.

Per-event overhead is what ROADMAP item 2 names as the scale floor: the
scalar loop pays several Python-level method calls (``peek_time``, ``pop``,
``step``) per event.  This backend drains homogeneous runs of due events —
timer fires and datagram deliveries sharing a timestamp or falling inside
the same zero-lookahead window — through
:meth:`~repro.simulation.event_queue.EventQueue.pop_batch` and dispatches
them from one tight loop.

Correctness model
-----------------
The batch is a prefix of the queue's ``(time, sequence)`` total order, but
callbacks executed mid-batch mutate the world the rest of the batch runs in:

* **New events.**  Anything scheduled by a callback carries a globally larger
  sequence number and a time ``>= now``, but may still sort *between*
  remaining batch entries (e.g. a zero-delay reschedule at the batch's
  timestamp).  The dispatch loop therefore two-way merges the batch with the
  live heap head: before executing batch entry *e*, every heap event ``<`` *e*
  is popped and executed first.  This reproduces the scalar pop order
  exactly.
* **Cancellations.**  A batch entry cancelled by an earlier callback must
  not run.  ``pop_batch`` detaches handles at pop time (so the late cancel
  never corrupts the queue's live counter) and the loop re-checks
  ``handle.cancelled`` immediately before each dispatch.
* **clear().**  Tearing the queue down mid-batch must drop the rest of the
  batch, exactly as the scalar loop would find an empty queue.  The queue's
  epoch counter is checked after every callback.

Observers and ``max_events`` route through the scalar oracle loop so the
PR 4 validation edges fire once per logical event with identical timing.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.simulation.backend.scalar import scalar_run_loop

BATCH_LIMIT = 1024
"""Maximum events drained per pop_batch call (bounds peak batch memory)."""


class BatchedBackend:
    """Bulk event dispatch preserving the scalar backend's total order."""

    name = "numpy"

    def run_loop(self, simulator, until: Optional[float], max_events: Optional[int]) -> int:
        if simulator._observers is not None or max_events is not None:
            # Exact per-event semantics required: observer edges fire per
            # logical event, budgets count single steps.  Use the oracle.
            return scalar_run_loop(simulator, until, max_events)

        queue = simulator._queue
        clock = simulator._clock
        heap = queue._heap
        heappop = heapq.heappop
        executed = 0
        epoch = queue._epoch
        while True:
            # Inline discard of cancelled heap heads (the scalar loop pays a
            # peek_time() + pop() method-call pair per event for this).
            while heap and heap[0].handle._cancelled:
                heappop(heap)
                queue._dead -= 1
            if not heap:
                break
            event = heap[0]
            time = event.time
            if until is not None and time > until:
                break
            heappop(heap)
            event.handle._queue = None
            clock._now = time
            simulator._events_processed += 1
            executed += 1
            event.callback(*event.args)
            if queue._epoch != epoch:
                return executed
            if not (heap and heap[0].time == time):
                continue
            # A homogeneous run: more events share this exact instant (timer
            # fires on the same period grid, datagram deliveries coalescing
            # at a zero-lookahead window).  Drain the run in one bulk pop.
            batch = queue.pop_batch(until=time, limit=BATCH_LIMIT)
            for event in batch:
                # Merge in anything scheduled mid-batch that sorts earlier.
                # Rare by construction — mid-batch schedules carry globally
                # larger sequence numbers, so they only precede a batch entry
                # if they land strictly inside the run's instant, which a
                # zero-delay schedule cannot (same time, larger sequence).
                while heap and heap[0] < event:
                    head = heappop(heap)
                    handle = head.handle
                    if handle._cancelled:
                        queue._dead -= 1
                        continue
                    handle._queue = None
                    clock._now = head.time
                    simulator._events_processed += 1
                    executed += 1
                    head.callback(*head.args)
                    if queue._epoch != epoch:
                        return executed
                if event.handle._cancelled:
                    continue
                clock._now = event.time
                simulator._events_processed += 1
                executed += 1
                event.callback(*event.args)
                if queue._epoch != epoch:
                    return executed
        return executed
