"""Windowed conservative dispatch — the shard-local event loop.

Classic conservative PDES (Chandy–Misra lookahead): a shard may safely run
every event with ``time < bound`` as long as no other shard can inject an
event below ``bound``.  The transport guarantees exactly that — a datagram
sent at ``t`` is delivered no earlier than ``t + min_latency()`` — so with
``lookahead = min_latency()`` each window ``[W, W + lookahead)`` is closed
under cross-shard traffic: sends *from inside* the window always land at or
past its end, never inside it.

:class:`ShardedBackend` drives a simulator through such half-open windows,
invoking a *barrier* callback between them.  The barrier (installed by
:mod:`repro.shard`) flushes the window's outbound datagram batches, blocks
until every shard reaches its coordinator-issued bound, inserts the inbound
batches, and returns this shard's *next* bound.  Bounds are per shard and
adaptively widened: the coordinator knows every shard's earliest pending
event, so it jumps empty stretches and stretches a busy shard's window past
quiet neighbours (one lookahead from the nearest foreign event, two from the
shard's own — see the proof in :mod:`repro.shard.runner`).  A repeated bound
is legal — the loop below executes zero events and barriers again while the
other shards catch up.

The final stretch is special: :meth:`Simulator.run`'s contract executes
events *at* ``until`` inclusively, so once the bound reaches the horizon the
backend switches to the scalar (inclusive) loop.  Deliveries landing exactly
at ``until`` may still be in flight from other shards at that point; the
coordinator keeps everyone in the drain loop — run inclusive, exchange —
until a round moves no messages and no shard holds an event ``<= until``.

Without a barrier the backend is a *chunked scalar loop*: same windows, no
exchanges — byte-identical to :func:`scalar_run_loop` by construction.  The
window-edge unit tests pin that equivalence, which is what makes the
windowing logic trustworthy independently of the multi-shard machinery.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.simulation.backend.scalar import scalar_run_loop

WindowBarrier = Callable[[float], Tuple[float, bool]]
"""``barrier(bound) -> (next_bound, done)``: synchronize after a window.

``bound`` is the window bound just executed; the return value is the next
window bound (non-decreasing — a repeat parks this shard for a round —
capped at the run's ``until``) and whether the run is complete.
"""


def windowed_run_loop(simulator, bound: float, max_events: Optional[int]) -> int:
    """Execute events with ``time`` strictly below ``bound``; return the count.

    The strict bound is the conservative-window contract: an event exactly at
    the bound belongs to the *next* window, where cross-shard datagrams due
    at that instant will have been merged in.
    """
    queue = simulator._queue
    step = simulator.step
    executed = 0
    while True:
        if max_events is not None and executed >= max_events:
            break
        next_time = queue.peek_time()
        if next_time is None or next_time >= bound:
            break
        step()
        executed += 1
    return executed


class ShardedBackend:
    """Dispatch in conservative time windows of ``lookahead`` seconds.

    Parameters
    ----------
    lookahead:
        The conservative window size — the transport's minimum latency.
        Must be positive: with a zero lower bound a remote event could land
        at the current instant and no window is safe.
    barrier:
        Optional :data:`WindowBarrier` called after every window.  ``None``
        runs the chunked single-simulator mode (testing and the trivial
        one-shard case need no synchronization).
    """

    name = "sharded"

    def __init__(self, lookahead: float, barrier: Optional[WindowBarrier] = None) -> None:
        if lookahead <= 0.0:
            raise ValueError(
                f"sharded dispatch needs a positive lookahead, got {lookahead!r}; "
                "a latency model with min_latency() == 0 cannot be sharded"
            )
        self._lookahead = float(lookahead)
        self._barrier = barrier

    @property
    def lookahead(self) -> float:
        """The conservative window size in simulated seconds."""
        return self._lookahead

    def run_loop(self, simulator, until: Optional[float], max_events: Optional[int]) -> int:
        if until is None:
            if self._barrier is not None:
                raise ValueError(
                    "a barriered sharded run needs an explicit time horizon "
                    "(run(until=...)); run_until_idle() cannot coordinate shards"
                )
            return scalar_run_loop(simulator, until, max_events)
        queue = simulator._queue
        lookahead = self._lookahead
        executed = 0
        bound = min(until, simulator.now + lookahead)
        while True:
            budget = None if max_events is None else max_events - executed
            if bound < until:
                executed += windowed_run_loop(simulator, bound, budget)
            else:
                executed += scalar_run_loop(simulator, until, budget)
            if max_events is not None and executed >= max_events:
                # The event budget is a local safety valve; a budgeted stop
                # abandons the window protocol exactly like a scalar stop
                # abandons pending events.
                return executed
            if self._barrier is not None:
                bound, done = self._barrier(bound)
                if done:
                    return executed
                continue
            peek = queue.peek_time()
            if peek is None or bound >= until:
                return executed
            # Chunked mode: jump the next window to just past the next event
            # (peek >= bound here — everything below the bound already ran).
            bound = min(until, peek + lookahead)
