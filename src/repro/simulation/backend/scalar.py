"""The scalar dispatch loop — the pinned correctness oracle.

This is the original :meth:`Simulator.run` body, moved verbatim behind the
backend interface.  One event per iteration: peek, bounds-check, ``step()``.
Every other backend is pinned byte-identical against this loop (PointSummary
and delivery logs) by the equivalence property suite.
"""

from __future__ import annotations

from typing import Optional


def scalar_run_loop(simulator, until: Optional[float], max_events: Optional[int]) -> int:
    """The oracle loop, callable by any backend that needs exact per-event
    semantics (observers armed, event budgets)."""
    queue = simulator._queue
    step = simulator.step
    executed = 0
    while True:
        if max_events is not None and executed >= max_events:
            break
        next_time = queue.peek_time()
        if next_time is None:
            break
        if until is not None and next_time > until:
            break
        step()
        executed += 1
    return executed


class ScalarBackend:
    """Per-event dispatch, exactly as the simulator has always run."""

    name = "python"

    def run_loop(self, simulator, until: Optional[float], max_events: Optional[int]) -> int:
        return scalar_run_loop(simulator, until, max_events)
