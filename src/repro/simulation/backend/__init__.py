"""Pluggable simulation backends: the scalar oracle and the batched fast path.

The simulator's inner loop — pop the next event, advance the clock, run the
callback — is factored behind a tiny interface so two implementations can
share everything else (queue, clock, RNG streams, observers):

``python`` — :class:`~repro.simulation.backend.scalar.ScalarBackend`
    The original per-event dispatch loop, kept verbatim.  This is the pinned
    correctness oracle: every other backend must produce byte-identical
    results (PointSummary, delivery logs, RNG draw order) against it.

``numpy`` — :class:`~repro.simulation.backend.batched.BatchedBackend`
    The batched fast path.  Events are drained through
    :meth:`~repro.simulation.event_queue.EventQueue.pop_batch` and dispatched
    from a tight merged loop that preserves the ``(time, sequence)`` total
    order; the GF(256) codec and the serializing bandwidth limiter
    additionally switch to vectorized numpy kernels
    (:mod:`repro.streaming.gf256_numpy`, :mod:`repro.network.bandwidth_numpy`).
    Requires numpy for the kernel half; the dispatch half is pure python, so
    when numpy is absent the backend silently degrades to ``python``.

Selection
---------
The backend is chosen per :class:`~repro.simulation.engine.Simulator` at
construction time, from (in priority order) the explicit ``backend=``
constructor argument, the ``REPRO_BACKEND`` environment variable
(``numpy`` | ``python`` | ``auto``), or the default ``auto`` — which picks
``numpy`` whenever numpy is importable and falls back to pure python
otherwise.  The same resolution drives the standalone numpy kernels, so
``REPRO_BACKEND=python`` pins the entire process to the pure-python oracle.

Observers and equivalence
-------------------------
With dispatch observers armed (:meth:`Simulator.add_observer`) or an event
budget set (``max_events``), the batched backend routes through the scalar
loop: observer edges fire once per logical event with exactly the oracle's
timing, so the validation layer (PR 4) sees an identical trace regardless of
backend.  The equivalence property suite
(``tests/properties/test_backend_equivalence.py``) runs every registered
scenario under both backends and asserts identical ``PointSummary`` records.
"""

from __future__ import annotations

import os
from importlib import util as _importlib_util
from typing import Optional, Protocol, Union, runtime_checkable

BACKEND_ENV = "REPRO_BACKEND"
"""Environment variable selecting the default backend (``numpy``/``python``/``auto``)."""

BACKEND_NAMES = ("python", "numpy")
"""The two concrete backends, in oracle-first order."""

_numpy_available: Optional[bool] = None


@runtime_checkable
class SimulationBackend(Protocol):
    """The backend interface: a named event-dispatch loop.

    ``run_loop`` drives the simulator until the queue is exhausted, ``until``
    is reached, or ``max_events`` events ran; it returns the number of events
    executed.  The caller (:meth:`Simulator.run`) owns the re-entrancy guard
    and the final clock advance to ``until``.
    """

    name: str

    def run_loop(self, simulator, until: Optional[float], max_events: Optional[int]) -> int:
        """Execute due events in ``(time, sequence)`` order; return the count."""
        ...


def numpy_available() -> bool:
    """Whether numpy can be imported in this interpreter (cached probe)."""
    global _numpy_available
    if _numpy_available is None:
        _numpy_available = _importlib_util.find_spec("numpy") is not None
    return _numpy_available


def resolve_backend_name(requested: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete name (``python`` or ``numpy``).

    ``requested`` falls back to ``$REPRO_BACKEND``, then to ``auto``.
    ``numpy`` and ``auto`` degrade to ``python`` when numpy is absent —
    the documented auto-fallback that keeps no-numpy environments working.
    """
    name = requested if requested is not None else os.environ.get(BACKEND_ENV) or "auto"
    name = name.strip().lower()
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    if name == "numpy":
        return "numpy" if numpy_available() else "python"
    if name == "python":
        return "python"
    raise ValueError(
        f"unknown simulation backend {name!r}; expected one of "
        f"{BACKEND_NAMES + ('auto',)!r}"
    )


def resolve_backend(
    requested: Union[None, str, SimulationBackend] = None,
) -> SimulationBackend:
    """Return a backend instance for ``requested`` (name, instance, or None)."""
    if requested is not None and not isinstance(requested, str):
        return requested
    name = resolve_backend_name(requested)
    if name == "numpy":
        from repro.simulation.backend.batched import BatchedBackend

        return BatchedBackend()
    from repro.simulation.backend.scalar import ScalarBackend

    return ScalarBackend()


def numpy_kernels_enabled() -> bool:
    """Whether the standalone numpy kernels (codec, limiter) should engage.

    Follows the same resolution as the dispatch loop so one environment
    variable pins the whole process: ``REPRO_BACKEND=python`` disables every
    numpy kernel, anything else enables them whenever numpy is importable.
    """
    return resolve_backend_name() == "numpy"
