"""Simulated time.

Simulated time is a plain ``float`` number of seconds since the start of the
experiment.  The clock only moves forward; it is advanced exclusively by the
:class:`~repro.simulation.engine.Simulator` as it pops events off the queue.
"""

from __future__ import annotations

from repro.simulation.errors import SimulationTimeError


class SimulationClock:
    """A strictly monotonic simulated clock.

    Parameters
    ----------
    start_time:
        Initial value of the clock, in simulated seconds.  Defaults to 0.
    """

    __slots__ = ("_now",)

    def __init__(self, start_time: float = 0.0) -> None:
        if start_time < 0.0:
            raise SimulationTimeError(
                f"clock cannot start at negative time {start_time!r}"
            )
        self._now = float(start_time)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises
        ------
        SimulationTimeError
            If ``time`` is earlier than the current clock value.
        """
        if time < self._now:
            raise SimulationTimeError(
                f"cannot move clock backwards from {self._now!r} to {time!r}"
            )
        self._now = float(time)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0.0:
            raise SimulationTimeError(f"cannot advance clock by negative delta {delta!r}")
        self._now += float(delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SimulationClock(now={self._now:.6f})"
