"""Arithmetic over the finite field GF(2^8).

This is the numeric foundation of the FEC codec.  Elements are integers in
``[0, 255]``; addition is XOR; multiplication is carried out through
logarithm/antilogarithm tables built once at import time from the primitive
polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d), the polynomial used by most
Reed–Solomon deployments.
"""

from __future__ import annotations

from typing import List, Sequence

_PRIMITIVE_POLYNOMIAL = 0x11D
_GENERATOR = 2

FIELD_SIZE = 256
"""Number of elements in GF(2^8)."""


def _build_tables() -> tuple[List[int], List[int]]:
    exp = [0] * (FIELD_SIZE * 2)
    log = [0] * FIELD_SIZE
    value = 1
    for power in range(FIELD_SIZE - 1):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= _PRIMITIVE_POLYNOMIAL
    for power in range(FIELD_SIZE - 1, FIELD_SIZE * 2):
        exp[power] = exp[power - (FIELD_SIZE - 1)]
    return exp, log


_EXP, _LOG = _build_tables()


def _build_mul_tables() -> List[bytes]:
    """One 256-byte translation table per coefficient: ``table[c][x] = c·x``.

    These are what let the codec process whole shards at C speed:
    ``data.translate(table[c])`` multiplies every byte of ``data`` by ``c``
    in one call, instead of a Python-level loop per byte.
    """
    exp, log = _EXP, _LOG
    tables: List[bytes] = [bytes(FIELD_SIZE)]  # c = 0: everything maps to 0
    for coefficient in range(1, FIELD_SIZE):
        log_c = log[coefficient]
        tables.append(
            bytes([0] + [exp[log_c + log[x]] for x in range(1, FIELD_SIZE)])
        )
    return tables


_MUL_TABLE = _build_mul_tables()

_NUMPY_MIN_CELLS = 1 << 20
"""Minimum ``num_rows * shard_length`` before the numpy codec kernel is
consulted.  Measured result (see docs/performance.md "Backends"): ``bytes.translate`` +
big-int XOR runs at ~1.5 ns/byte on CPython 3.11 while numpy's fancy-index
gather costs ~3 ns/byte at the paper's (101, 9, 1400 B) window shape, so
the scalar bulk path keeps every realistic product; the numpy kernel stays
oracle-verified and engages only for very large products where the array
round-trip is amortized."""


def mul_table(coefficient: int) -> bytes:
    """The 256-byte ``bytes.translate`` table multiplying by ``coefficient``."""
    return _MUL_TABLE[coefficient]


def scale_bytes(coefficient: int, data: bytes | bytearray) -> bytes:
    """Multiply every byte of ``data`` by ``coefficient`` (bulk vector scaling)."""
    if coefficient == 1:
        return bytes(data)
    return bytes(data).translate(_MUL_TABLE[coefficient])


def xor_bytes(a: bytes | bytearray, b: bytes | bytearray) -> bytes:
    """Element-wise XOR of two equal-length byte strings (bulk field addition)."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    length = len(a)
    return (
        int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
    ).to_bytes(length, "little")


def addmul_bytes(target: bytearray, coefficient: int, row: bytes | bytearray) -> None:
    """In-place ``target ^= coefficient * row`` on whole shards (bulk MAC)."""
    if len(target) != len(row):
        raise ValueError(f"length mismatch: {len(target)} vs {len(row)}")
    if coefficient == 0:
        return
    scaled = bytes(row) if coefficient == 1 else bytes(row).translate(_MUL_TABLE[coefficient])
    target[:] = (
        int.from_bytes(target, "little") ^ int.from_bytes(scaled, "little")
    ).to_bytes(len(target), "little")


def add(a: int, b: int) -> int:
    """Field addition (XOR); identical to subtraction in GF(2^8)."""
    return a ^ b


def multiply(a: int, b: int) -> int:
    """Field multiplication via log/antilog tables."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def divide(a: int, b: int) -> int:
    """Field division ``a / b``; raises ``ZeroDivisionError`` if ``b`` is 0."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return _EXP[(_LOG[a] - _LOG[b]) % (FIELD_SIZE - 1)]


def inverse(a: int) -> int:
    """Multiplicative inverse; raises ``ZeroDivisionError`` for 0."""
    if a == 0:
        raise ZeroDivisionError("zero has no inverse in GF(256)")
    return _EXP[(FIELD_SIZE - 1) - _LOG[a]]


def power(a: int, exponent: int) -> int:
    """Raise ``a`` to an integer power (exponent may be negative if a != 0)."""
    if exponent == 0:
        return 1
    if a == 0:
        if exponent < 0:
            raise ZeroDivisionError("zero has no inverse in GF(256)")
        return 0
    log_value = (_LOG[a] * exponent) % (FIELD_SIZE - 1)
    return _EXP[log_value]


def multiply_row(coefficient: int, row: Sequence[int]) -> List[int]:
    """Multiply every byte of ``row`` by ``coefficient`` (vector scaling)."""
    if coefficient == 0:
        return [0] * len(row)
    if coefficient == 1:
        return list(row)
    log_c = _LOG[coefficient]
    exp = _EXP
    log = _LOG
    return [0 if byte == 0 else exp[log_c + log[byte]] for byte in row]


def add_rows(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Element-wise XOR of two equal-length byte vectors."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    return [x ^ y for x, y in zip(a, b)]


def multiply_accumulate(target: List[int], coefficient: int, row: Sequence[int]) -> None:
    """In-place ``target ^= coefficient * row`` (the codec's inner loop)."""
    if coefficient == 0:
        return
    if len(target) != len(row):
        raise ValueError(f"length mismatch: {len(target)} vs {len(row)}")
    log_c = _LOG[coefficient]
    exp = _EXP
    log = _LOG
    for index, byte in enumerate(row):
        if byte:
            target[index] ^= exp[log_c + log[byte]]


class Matrix:
    """A dense matrix over GF(256) with just enough linear algebra for RS.

    Rows are lists of ints in [0, 255].  The class supports multiplication
    and Gauss–Jordan inversion, which is what encoding and erasure decoding
    need.  Shard-length multiplications have two implementations:
    :meth:`multiply_vector_bytes` (the fast path — per-coefficient
    ``bytes.translate`` tables and big-int XOR accumulation, used by the
    codec) and :meth:`multiply_vector_rows` (the scalar byte-at-a-time
    reference the fast path is pinned against).
    """

    def __init__(self, rows: Sequence[Sequence[int]]) -> None:
        if not rows:
            raise ValueError("matrix must have at least one row")
        width = len(rows[0])
        if width == 0:
            raise ValueError("matrix rows must be non-empty")
        for row in rows:
            if len(row) != width:
                raise ValueError("all matrix rows must have the same length")
            for value in row:
                if not 0 <= value <= 255:
                    raise ValueError(f"matrix entries must be bytes, got {value!r}")
        self.rows = [list(row) for row in rows]

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return len(self.rows)

    @property
    def num_cols(self) -> int:
        """Number of columns."""
        return len(self.rows[0])

    @classmethod
    def identity(cls, size: int) -> "Matrix":
        """The ``size`` × ``size`` identity matrix."""
        return cls([[1 if i == j else 0 for j in range(size)] for i in range(size)])

    def multiply_vector_rows(self, data_rows: Sequence[Sequence[int]]) -> List[List[int]]:
        """Compute ``self @ data_rows`` where each data row is a byte vector.

        ``data_rows`` has one byte-vector per matrix *column*; the result has
        one byte-vector per matrix *row*.  This is exactly the shape of
        encoding (parity rows from data rows) and decoding (data rows from
        received rows).
        """
        if len(data_rows) != self.num_cols:
            raise ValueError(
                f"need {self.num_cols} data rows, got {len(data_rows)}"
            )
        if not data_rows:
            return []
        length = len(data_rows[0])
        for row in data_rows:
            if len(row) != length:
                raise ValueError("all data rows must have the same length")
        result: List[List[int]] = []
        for matrix_row in self.rows:
            accumulator = [0] * length
            for coefficient, data_row in zip(matrix_row, data_rows):
                multiply_accumulate(accumulator, coefficient, data_row)
            result.append(accumulator)
        return result

    def multiply_vector_bytes(self, data_rows: Sequence[bytes]) -> List[bytes]:
        """Bulk version of :meth:`multiply_vector_rows` over whole shards.

        Each input row is scaled through its coefficient's 256-byte
        translation table and XOR-accumulated as one big integer, so the
        per-byte work happens in C.  Produces byte-identical results to the
        scalar path (pinned by the property tests).

        When the numpy backend is active (see
        :mod:`repro.simulation.backend`) and the product is large enough to
        amortize the array round-trip, the multiply is delegated to the
        vectorized kernel in :mod:`repro.streaming.gf256_numpy` — exact
        table lookups and XOR, so the result stays byte-identical.
        """
        if len(data_rows) != self.num_cols:
            raise ValueError(
                f"need {self.num_cols} data rows, got {len(data_rows)}"
            )
        if not data_rows:
            return []
        length = len(data_rows[0])
        for row in data_rows:
            if len(row) != length:
                raise ValueError("all data rows must have the same length")
        shards = [bytes(row) for row in data_rows]
        if len(self.rows) * length >= _NUMPY_MIN_CELLS:
            from repro.streaming import gf256_numpy

            result = gf256_numpy.matrix_multiply_vector(self.rows, shards)
            if result is not None:
                return result
        tables = _MUL_TABLE
        result: List[bytes] = []
        for matrix_row in self.rows:
            accumulator = 0
            for coefficient, shard in zip(matrix_row, shards):
                if coefficient == 0:
                    continue
                scaled = shard if coefficient == 1 else shard.translate(tables[coefficient])
                accumulator ^= int.from_bytes(scaled, "little")
            result.append(accumulator.to_bytes(length, "little"))
        return result

    def inverted(self) -> "Matrix":
        """Return the inverse via Gauss–Jordan elimination.

        Raises
        ------
        ValueError
            If the matrix is singular or not square.
        """
        if self.num_rows != self.num_cols:
            raise ValueError("only square matrices can be inverted")
        size = self.num_rows
        work = [list(row) + identity_row for row, identity_row in zip(self.rows, Matrix.identity(size).rows)]

        for column in range(size):
            pivot_row = None
            for candidate in range(column, size):
                if work[candidate][column] != 0:
                    pivot_row = candidate
                    break
            if pivot_row is None:
                raise ValueError("matrix is singular and cannot be inverted")
            work[column], work[pivot_row] = work[pivot_row], work[column]

            pivot_inverse = inverse(work[column][column])
            work[column] = multiply_row(pivot_inverse, work[column])
            for row_index in range(size):
                if row_index == column:
                    continue
                factor = work[row_index][column]
                if factor:
                    scaled = multiply_row(factor, work[column])
                    work[row_index] = add_rows(work[row_index], scaled)

        return Matrix([row[size:] for row in work])
