"""Vectorized GF(256) matrix-vector kernels (numpy codec backend).

The scalar fast path in :meth:`repro.streaming.gf256.Matrix.multiply_vector_bytes`
scales each shard through a per-coefficient 256-byte ``bytes.translate``
table and XOR-accumulates big integers.  This module does the same
arithmetic on ``uint8`` arrays: the 256 translate tables stacked into one
``(256, 256)`` lookup matrix turn *all* coefficient scalings into a single
fancy-indexing operation, and the accumulation becomes
``np.bitwise_xor.reduce``.  Both are exact table lookups and bitwise XOR —
there is no floating point anywhere — so the output is byte-identical to
the scalar paths by construction (pinned by the codec property tests).

This module is one of the two places allowed to import numpy (see the ruff
``banned-api`` guard in ``pyproject.toml``); it must stay importable — but
inert — when numpy is absent, and every caller must fall back to the
pure-python path when :func:`matrix_multiply_vector` returns ``None``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.simulation.backend import numpy_kernels_enabled

_MUL_MATRIX = None


def available() -> bool:
    """Whether the vectorized kernels can run in this interpreter."""
    return np is not None


def _mul_matrix():
    """The ``(256, 256)`` uint8 product table: ``table[c, x] = c · x``.

    Built lazily from the scalar module's translate tables, so both paths
    share one source of arithmetic truth.
    """
    global _MUL_MATRIX
    if _MUL_MATRIX is None:
        from repro.streaming.gf256 import _MUL_TABLE

        _MUL_MATRIX = np.frombuffer(b"".join(_MUL_TABLE), dtype=np.uint8).reshape(256, 256)
    return _MUL_MATRIX


def matrix_multiply_vector(
    rows: Sequence[Sequence[int]], shards: Sequence[bytes]
) -> Optional[List[bytes]]:
    """Vectorized ``matrix @ shards`` over GF(256).

    ``rows`` holds the coefficient rows, ``shards`` one equal-length byte
    vector per matrix column; returns one byte vector per matrix row —
    byte-identical to both scalar implementations.  Returns ``None`` when
    the kernel is unavailable or disabled (numpy absent, or the process is
    pinned to the pure-python backend), in which case the caller must use
    the scalar path.
    """
    if np is None or not numpy_kernels_enabled():
        return None
    length = len(shards[0])
    data = np.frombuffer(b"".join(shards), dtype=np.uint8).reshape(len(shards), length)
    coefficients = np.asarray(rows, dtype=np.uint8)
    table = _mul_matrix()
    # One fancy-index gather scales every (row, shard) pair at once:
    # scaled[i, j, :] = table[rows[i][j], shards[j]] = rows[i][j] · shards[j].
    scaled = table[coefficients[:, :, None], data[None, :, :]]
    accumulated = np.bitwise_xor.reduce(scaled, axis=1)
    return [accumulated[index].tobytes() for index in range(accumulated.shape[0])]
