"""The stream emitter: drives packet publication on the simulator.

:class:`StreamEmitter` walks a :class:`~repro.streaming.schedule.StreamSchedule`
and invokes a callback for every packet at its publish time.  The gossip
*source node* (see :mod:`repro.core.node`) registers its ``publish`` method as
the callback: publishing a packet means delivering it locally and gossiping
its id to the source fanout, exactly as ``publish(e)`` does in Algorithm 1.

Keeping emission separate from the protocol lets tests drive a protocol node
by hand and lets alternative sources (e.g. variable-bit-rate extensions) be
plugged in without touching the gossip code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.streaming.packets import PacketDescriptor
from repro.streaming.schedule import StreamSchedule

if TYPE_CHECKING:  # type hints only: the emitter runs on any Host
    from repro.core.host import Host

PublishCallback = Callable[[PacketDescriptor], None]


class StreamEmitter:
    """Publishes every packet of a schedule at its publish time.

    Parameters
    ----------
    simulator:
        Host (simulator or real-network backend) to schedule publications on.
    schedule:
        The packet schedule to emit.
    on_publish:
        Callback invoked with each :class:`PacketDescriptor` at publish time.
    payload_factory:
        Optional callable producing the raw payload bytes for a packet; used
        by end-to-end examples that exercise the real FEC codec.  The
        simulator-only experiments leave it ``None`` to avoid allocating
        megabytes of payload.
    """

    def __init__(
        self,
        simulator: "Host",
        schedule: StreamSchedule,
        on_publish: PublishCallback,
        payload_factory: Optional[Callable[[PacketDescriptor], bytes]] = None,
    ) -> None:
        self._simulator = simulator
        self._schedule = schedule
        self._on_publish = on_publish
        self._payload_factory = payload_factory
        self._started = False
        self._published_count = 0
        self._stopped = False

    @property
    def schedule(self) -> StreamSchedule:
        """The schedule being emitted."""
        return self._schedule

    @property
    def published_count(self) -> int:
        """How many packets have been published so far."""
        return self._published_count

    @property
    def finished(self) -> bool:
        """Whether every packet of the schedule has been published."""
        return self._published_count >= self._schedule.num_packets

    def start(self) -> None:
        """Schedule all publications.  Calling twice is an error."""
        if self._started:
            raise RuntimeError("StreamEmitter.start() called twice")
        self._started = True
        for descriptor in self._schedule.packets():
            self._simulator.schedule_at(descriptor.publish_time, self._publish, descriptor)

    def stop(self) -> None:
        """Stop publishing any further packets (source crash scenarios)."""
        self._stopped = True

    def _publish(self, descriptor: PacketDescriptor) -> None:
        if self._stopped:
            return
        self._published_count += 1
        self._on_publish(descriptor)

    def make_payload(self, descriptor: PacketDescriptor) -> Optional[bytes]:
        """Produce the payload for a packet if a payload factory is set."""
        if self._payload_factory is None:
            return None
        return self._payload_factory(descriptor)
