"""Packet and window descriptors.

A *packet* is the unit the gossip protocol disseminates (the "event" of
Algorithm 1): its id is proposed, requested, and its payload served.  A
*window* is the FEC unit: 110 consecutive packets of which 101 carry source
data and 9 carry parity; any 101 of the 110 reconstruct the window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

PacketId = int
"""Packets are identified by their global sequence number in the stream."""


@dataclass(frozen=True)
class PacketDescriptor:
    """Static description of one stream packet.

    Attributes
    ----------
    packet_id:
        Global sequence number (0-based) — this is the event id gossiped.
    window_index:
        Index of the FEC window this packet belongs to.
    index_in_window:
        Position within the window (0..109 with default parameters).
    is_fec:
        Whether this is one of the parity packets of its window.
    publish_time:
        Simulated time at which the source publishes the packet.
    size_bytes:
        Payload size on the wire.
    """

    packet_id: PacketId
    window_index: int
    index_in_window: int
    is_fec: bool
    publish_time: float
    size_bytes: int

    def __post_init__(self) -> None:
        if self.packet_id < 0 or self.window_index < 0 or self.index_in_window < 0:
            raise ValueError("packet indices must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {self.size_bytes!r}")
        if self.publish_time < 0.0:
            raise ValueError(f"publish time must be >= 0, got {self.publish_time!r}")


@dataclass(frozen=True)
class WindowDescriptor:
    """Static description of one FEC window.

    Attributes
    ----------
    window_index:
        Index of the window in the stream.
    packet_ids:
        Ids of the packets composing the window, in order.
    source_packets:
        Number of data-bearing packets (101 by default).
    required_packets:
        Minimum number of packets needed to decode (equals
        ``source_packets`` for an MDS code).
    publish_start / publish_end:
        Publish times of the first and last packet of the window.
    """

    window_index: int
    packet_ids: Tuple[PacketId, ...]
    source_packets: int
    required_packets: int
    publish_start: float
    publish_end: float

    def __post_init__(self) -> None:
        if not self.packet_ids:
            raise ValueError("a window must contain at least one packet")
        if not 0 < self.required_packets <= len(self.packet_ids):
            raise ValueError(
                "required_packets must be in (0, window size]: "
                f"{self.required_packets!r} vs {len(self.packet_ids)} packets"
            )
        if self.publish_end < self.publish_start:
            raise ValueError("publish_end cannot precede publish_start")

    @property
    def total_packets(self) -> int:
        """Number of packets in the window (source + FEC)."""
        return len(self.packet_ids)

    @property
    def fec_packets(self) -> int:
        """Number of parity packets in the window."""
        return self.total_packets - self.source_packets

    def contains(self, packet_id: PacketId) -> bool:
        """Whether ``packet_id`` belongs to this window."""
        return self.packet_ids[0] <= packet_id <= self.packet_ids[-1]
