"""Systematic Reed–Solomon erasure coding (Cauchy construction).

The paper's source groups packets in windows of 110, 9 of which are FEC
packets; receiving *any* 101 of the 110 reconstructs the window.  That
property — any ``k`` of the ``k + m`` symbols suffice — is exactly what an
MDS erasure code gives.  We implement the classic systematic Cauchy
Reed–Solomon construction:

* the generator matrix is ``G = [ I_k ; C ]`` where ``C`` is an ``m × k``
  Cauchy matrix over GF(256): ``C[i][j] = 1 / (x_i ⊕ y_j)`` with the
  ``x_i`` and ``y_j`` all distinct;
* every ``k × k`` submatrix of ``G`` is invertible, so any ``k`` received
  rows (data or parity) can be inverted to recover the data.

The simulator itself only needs the *counting* consequence ("a window is
decodable iff ≥ 101 packets arrived"), but this codec makes the library a
complete streaming system: the examples encode and decode real payloads.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.streaming.gf256 import FIELD_SIZE, Matrix, inverse


class ReedSolomonCode:
    """A systematic ``(k + m, k)`` erasure code over GF(256).

    Parameters
    ----------
    data_shards:
        ``k`` — number of source symbols per codeword.
    parity_shards:
        ``m`` — number of parity symbols per codeword.

    ``k + m`` must not exceed 255 (the Cauchy construction needs ``k + m``
    distinct non-zero field elements split into two disjoint sets).
    """

    def __init__(self, data_shards: int, parity_shards: int) -> None:
        if data_shards < 1:
            raise ValueError(f"data_shards must be >= 1, got {data_shards!r}")
        if parity_shards < 0:
            raise ValueError(f"parity_shards must be >= 0, got {parity_shards!r}")
        if data_shards + parity_shards > FIELD_SIZE - 1:
            raise ValueError(
                "data_shards + parity_shards must be <= 255 for GF(256) Cauchy RS, "
                f"got {data_shards + parity_shards}"
            )
        self.data_shards = data_shards
        self.parity_shards = parity_shards
        self._cauchy = (
            self._build_cauchy_matrix(data_shards, parity_shards) if parity_shards else None
        )

    @property
    def total_shards(self) -> int:
        """``k + m`` — the codeword length in symbols."""
        return self.data_shards + self.parity_shards

    @staticmethod
    def _build_cauchy_matrix(data_shards: int, parity_shards: int) -> Matrix:
        # x_i values for parity rows and y_j values for data columns must be
        # distinct across both sets; use 0..k-1 for data and k..k+m-1 for parity.
        rows: List[List[int]] = []
        for i in range(parity_shards):
            x = data_shards + i
            row = [inverse(x ^ j) for j in range(data_shards)]
            rows.append(row)
        return Matrix(rows)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, data: Sequence[bytes]) -> List[bytes]:
        """Compute the parity shards for ``data``.

        ``data`` must contain exactly ``k`` equal-length byte strings.
        Returns the ``m`` parity shards, each of the same length.
        """
        self._check_data_shards(data)
        if self.parity_shards == 0:
            return []
        return self._cauchy.multiply_vector_bytes([bytes(shard) for shard in data])

    def encode_window(self, data: Sequence[bytes]) -> List[bytes]:
        """Return the full codeword: the data shards followed by parity shards."""
        return list(data) + self.encode(data)

    def encode_batch(self, windows: Sequence[Sequence[bytes]]) -> List[List[bytes]]:
        """Compute parity shards for many windows in one matrix pass.

        Every window shares the same generator matrix, and GF(256) scaling
        acts on each byte position independently — so concatenating shard
        ``j`` of every window into one long shard and multiplying once is
        byte-identical to ``[self.encode(w) for w in windows]`` while paying
        the per-call overhead (big-int conversions, or the numpy kernel
        dispatch once the stacked size crosses its threshold) once per
        *batch* instead of once per window.

        Windows whose shard lengths differ from each other fall back to
        per-window encoding; within each window the usual equal-length rule
        applies.
        """
        for data in windows:
            self._check_data_shards(data)
        if not windows:
            return []
        if self.parity_shards == 0:
            return [[] for _ in windows]
        lengths = {len(shard) for data in windows for shard in data}
        if len(lengths) != 1:
            return [self.encode(data) for data in windows]
        length = lengths.pop()
        stacked = [
            b"".join(bytes(window[j]) for window in windows)
            for j in range(self.data_shards)
        ]
        parity_rows = self._cauchy.multiply_vector_bytes(stacked)
        return [
            [row[w * length : (w + 1) * length] for row in parity_rows]
            for w in range(len(windows))
        ]

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(self, shards: Mapping[int, bytes]) -> List[bytes]:
        """Reconstruct the ``k`` data shards from any ``k`` received shards.

        Parameters
        ----------
        shards:
            Mapping from shard index (0..k-1 are data, k..k+m-1 are parity)
            to the received shard bytes.  At least ``k`` entries are needed.

        Returns
        -------
        list[bytes]
            The ``k`` data shards in order.

        Raises
        ------
        ValueError
            If fewer than ``k`` shards are supplied, indices are out of
            range, or shard lengths differ.
        """
        if len(shards) < self.data_shards:
            raise ValueError(
                f"need at least {self.data_shards} shards to decode, got {len(shards)}"
            )
        lengths = {len(shard) for shard in shards.values()}
        if len(lengths) != 1:
            raise ValueError(f"all shards must have the same length, got lengths {sorted(lengths)}")
        for index in shards:
            if not 0 <= index < self.total_shards:
                raise ValueError(f"shard index {index} out of range [0, {self.total_shards})")

        # Fast path: all data shards present.
        if all(index in shards for index in range(self.data_shards)):
            return [bytes(shards[index]) for index in range(self.data_shards)]

        # Pick k received shards (prefer data shards — their rows are trivial).
        chosen = sorted(shards)[: self.data_shards]
        generator_rows: List[List[int]] = []
        received_rows: List[bytes] = []
        for index in chosen:
            generator_rows.append(self._generator_row(index))
            received_rows.append(bytes(shards[index]))

        decode_matrix = Matrix(generator_rows).inverted()
        return decode_matrix.multiply_vector_bytes(received_rows)

    def reconstruct_all(self, shards: Mapping[int, bytes]) -> List[bytes]:
        """Reconstruct the complete codeword (data + parity) from any ``k`` shards."""
        data = self.decode(shards)
        return self.encode_window(data)

    def _generator_row(self, shard_index: int) -> List[int]:
        if shard_index < self.data_shards:
            return [1 if column == shard_index else 0 for column in range(self.data_shards)]
        return list(self._cauchy.rows[shard_index - self.data_shards])

    def _check_data_shards(self, data: Sequence[bytes]) -> None:
        if len(data) != self.data_shards:
            raise ValueError(f"expected {self.data_shards} data shards, got {len(data)}")
        lengths = {len(shard) for shard in data}
        if len(lengths) > 1:
            raise ValueError(f"all data shards must have the same length, got {sorted(lengths)}")


class WindowCodec:
    """FEC codec bound to a stream window layout.

    Thin convenience wrapper over :class:`ReedSolomonCode` using the stream
    terminology: *source packets* and *FEC packets* of one window.
    """

    def __init__(self, source_packets: int, fec_packets: int) -> None:
        self._code = ReedSolomonCode(source_packets, fec_packets)

    @property
    def source_packets(self) -> int:
        """Number of data packets per window."""
        return self._code.data_shards

    @property
    def fec_packets(self) -> int:
        """Number of parity packets per window."""
        return self._code.parity_shards

    @property
    def window_size(self) -> int:
        """Total packets per window."""
        return self._code.total_shards

    @property
    def required_packets(self) -> int:
        """Minimum number of packets needed to decode a window."""
        return self._code.data_shards

    def encode_window(self, source_payloads: Sequence[bytes]) -> List[bytes]:
        """All 110 payloads (source + parity) for one window's source data."""
        return self._code.encode_window(source_payloads)

    def can_decode(self, received_count: int) -> bool:
        """The counting rule the simulator uses: enough packets arrived?"""
        return received_count >= self.required_packets

    def decode_window(self, received: Mapping[int, bytes]) -> List[bytes]:
        """Recover the source payloads from any ``required_packets`` packets.

        ``received`` maps *index within the window* (0..window_size-1) to the
        packet payload.
        """
        return self._code.decode(received)

    def loss_tolerance(self) -> int:
        """How many packets of a window can be lost while staying decodable."""
        return self.fec_packets


def reference_encode(code: ReedSolomonCode, data: Sequence[bytes]) -> List[bytes]:
    """The pre-fast-path scalar encode (byte-at-a-time matrix multiply).

    Kept as the baseline the bulk path is pinned against (tests) and
    measured against (``benchmarks/bench_large_session.py``).  Byte-identical
    to :meth:`ReedSolomonCode.encode` by construction.
    """
    code._check_data_shards(data)
    if code.parity_shards == 0:
        return []
    parity_rows = code._cauchy.multiply_vector_rows([list(shard) for shard in data])
    return [bytes(row) for row in parity_rows]


def reference_decode(code: ReedSolomonCode, shards: Mapping[int, bytes]) -> List[bytes]:
    """The pre-fast-path scalar decode; see :func:`reference_encode`."""
    if len(shards) < code.data_shards:
        raise ValueError(
            f"need at least {code.data_shards} shards to decode, got {len(shards)}"
        )
    if all(index in shards for index in range(code.data_shards)):
        return [bytes(shards[index]) for index in range(code.data_shards)]
    chosen = sorted(shards)[: code.data_shards]
    generator_rows = [code._generator_row(index) for index in chosen]
    received_rows = [list(shards[index]) for index in chosen]
    decode_matrix = Matrix(generator_rows).inverted()
    data_rows = decode_matrix.multiply_vector_rows(received_rows)
    return [bytes(row) for row in data_rows]


def overhead_ratio(source_packets: int, fec_packets: int) -> float:
    """FEC overhead as a fraction of window traffic (9/110 ≈ 8.2 % in the paper)."""
    total = source_packets + fec_packets
    if total <= 0:
        raise ValueError("window must contain at least one packet")
    return fec_packets / total
