"""Stream configuration and packet schedule.

The paper's source generates a 600 kbps stream, grouping packets in windows
of 110 packets, 9 of which are FEC parity packets; the gossip period is
200 ms.  The packet size is not given in the paper; we default to 1000-byte
payloads, so the source emits 75 packets per second and a window spans about
1.47 s of stream time.

All of this is captured declaratively by :class:`StreamConfig`;
:class:`StreamSchedule` expands it into concrete per-packet publish times and
window compositions, which both the source (to emit) and the metrics layer
(to judge decodability and lag) consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.streaming.packets import PacketDescriptor, PacketId, WindowDescriptor


@dataclass(frozen=True)
class StreamConfig:
    """Parameters of the constant-bit-rate stream.

    Attributes
    ----------
    rate_kbps:
        Total stream rate including FEC overhead (the paper's 600 kbps).
    payload_bytes:
        Wire size of one packet's payload.
    source_packets_per_window:
        Data packets per FEC window (101 in the paper).
    fec_packets_per_window:
        Parity packets per FEC window (9 in the paper).
    num_windows:
        Length of the stream, in whole windows.  The paper's experiments run
        for a few minutes; the default (20 windows ≈ 29 s at paper rates) is
        sized for simulation turnaround and can be raised per experiment.
    start_time:
        Simulated time at which the first packet is published.
    """

    rate_kbps: float = 600.0
    payload_bytes: int = 1000
    source_packets_per_window: int = 101
    fec_packets_per_window: int = 9
    num_windows: int = 20
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_kbps <= 0.0:
            raise ValueError(f"rate_kbps must be positive, got {self.rate_kbps!r}")
        if self.payload_bytes <= 0:
            raise ValueError(f"payload_bytes must be positive, got {self.payload_bytes!r}")
        if self.source_packets_per_window < 1:
            raise ValueError("source_packets_per_window must be >= 1")
        if self.fec_packets_per_window < 0:
            raise ValueError("fec_packets_per_window must be >= 0")
        if self.num_windows < 1:
            raise ValueError(f"num_windows must be >= 1, got {self.num_windows!r}")
        if self.start_time < 0.0:
            raise ValueError(f"start_time must be >= 0, got {self.start_time!r}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def packets_per_window(self) -> int:
        """Total packets per window (source + FEC); 110 with paper defaults."""
        return self.source_packets_per_window + self.fec_packets_per_window

    @property
    def packets_per_second(self) -> float:
        """Emission rate in packets per second (includes FEC packets)."""
        return self.rate_kbps * 1000.0 / (self.payload_bytes * 8.0)

    @property
    def packet_interval(self) -> float:
        """Seconds between consecutive packet publications."""
        return 1.0 / self.packets_per_second

    @property
    def window_duration(self) -> float:
        """Seconds of stream time covered by one window."""
        return self.packets_per_window * self.packet_interval

    @property
    def total_packets(self) -> int:
        """Total number of packets published over the whole stream."""
        return self.packets_per_window * self.num_windows

    @property
    def duration(self) -> float:
        """Total publication time of the stream in seconds."""
        return self.num_windows * self.window_duration

    @property
    def end_time(self) -> float:
        """Simulated time at which the last packet is published."""
        return self.start_time + (self.total_packets - 1) * self.packet_interval

    @classmethod
    def paper_defaults(cls, num_windows: int = 20, start_time: float = 0.0) -> "StreamConfig":
        """The exact streaming configuration of the paper (600 kbps, 110/9)."""
        return cls(
            rate_kbps=600.0,
            payload_bytes=1000,
            source_packets_per_window=101,
            fec_packets_per_window=9,
            num_windows=num_windows,
            start_time=start_time,
        )

    @classmethod
    def scaled_down(
        cls,
        num_windows: int = 12,
        rate_kbps: float = 600.0,
        start_time: float = 0.0,
    ) -> "StreamConfig":
        """A smaller window (22 packets, 2 FEC) keeping the paper's ratios.

        Useful for fast tests and benchmarks: the FEC overhead (≈ 9 %) and
        the decodability threshold (≈ 91 % of the window) match the paper,
        but each window carries 5× fewer packets, so experiments are 5×
        cheaper for the same stream duration in windows.
        """
        return cls(
            rate_kbps=rate_kbps,
            payload_bytes=1000,
            source_packets_per_window=20,
            fec_packets_per_window=2,
            num_windows=num_windows,
            start_time=start_time,
        )


class StreamSchedule:
    """Concrete packet-by-packet expansion of a :class:`StreamConfig`."""

    def __init__(self, config: StreamConfig) -> None:
        self.config = config
        self._packets: List[PacketDescriptor] = []
        self._windows: List[WindowDescriptor] = []
        self._packet_by_id: Dict[PacketId, PacketDescriptor] = {}
        self._build()

    def _build(self) -> None:
        config = self.config
        interval = config.packet_interval
        per_window = config.packets_per_window
        for packet_id in range(config.total_packets):
            window_index, index_in_window = divmod(packet_id, per_window)
            descriptor = PacketDescriptor(
                packet_id=packet_id,
                window_index=window_index,
                index_in_window=index_in_window,
                is_fec=index_in_window >= config.source_packets_per_window,
                publish_time=config.start_time + packet_id * interval,
                size_bytes=config.payload_bytes,
            )
            self._packets.append(descriptor)
            self._packet_by_id[packet_id] = descriptor

        for window_index in range(config.num_windows):
            first = window_index * per_window
            packet_ids = tuple(range(first, first + per_window))
            self._windows.append(
                WindowDescriptor(
                    window_index=window_index,
                    packet_ids=packet_ids,
                    source_packets=config.source_packets_per_window,
                    required_packets=config.source_packets_per_window,
                    publish_start=self._packet_by_id[packet_ids[0]].publish_time,
                    publish_end=self._packet_by_id[packet_ids[-1]].publish_time,
                )
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def packets(self) -> List[PacketDescriptor]:
        """All packet descriptors in publication order."""
        return list(self._packets)

    def windows(self) -> List[WindowDescriptor]:
        """All window descriptors in stream order."""
        return list(self._windows)

    def packet(self, packet_id: PacketId) -> PacketDescriptor:
        """Descriptor of a specific packet."""
        return self._packet_by_id[packet_id]

    def window(self, window_index: int) -> WindowDescriptor:
        """Descriptor of a specific window."""
        return self._windows[window_index]

    def window_of_packet(self, packet_id: PacketId) -> WindowDescriptor:
        """The window a packet belongs to."""
        return self._windows[self._packet_by_id[packet_id].window_index]

    @property
    def num_packets(self) -> int:
        """Total number of packets in the schedule."""
        return len(self._packets)

    @property
    def num_windows(self) -> int:
        """Total number of windows in the schedule."""
        return len(self._windows)

    def packets_published_by(self, time: float) -> int:
        """How many packets have been published at or before ``time``.

        Publish instants are ``start + k * interval``; dividing such a float
        back by ``interval`` can land a few ulps *below* ``k`` (at paper
        rates this bites ~6 % of all publish instants), so a plain
        ``floor(elapsed / interval)`` undercounts by one exactly at publish
        times.  Near-integer ratios are therefore snapped to the integer —
        the tolerance is orders of magnitude below half an interval, so no
        genuinely-earlier time can be miscounted.
        """
        if time < self.config.start_time:
            return 0
        elapsed = time - self.config.start_time
        ratio = elapsed / self.config.packet_interval
        nearest = round(ratio)
        if abs(ratio - nearest) < 1e-9 * max(1.0, nearest):
            count = int(nearest) + 1
        else:
            count = int(math.floor(ratio)) + 1
        return min(count, self.num_packets)
