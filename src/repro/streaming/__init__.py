"""Streaming substrate: the video stream, FEC windows and playback model.

The paper streams 600 kbps of video, grouped in windows of 110 packets of
which 9 are FEC-coded packets; a window is viewable if at least 101 of its
110 packets arrive in time (systematic MDS erasure coding).  This package
provides:

* :class:`StreamConfig` / :class:`StreamSchedule` — the constant-bit-rate
  packet schedule: which packet is published when, and how packets group
  into FEC windows.
* :mod:`repro.streaming.gf256` and :class:`ReedSolomonCode` — a real,
  pure-Python systematic Cauchy Reed–Solomon erasure code over GF(256), so
  the library can actually encode/decode window payloads end-to-end.
* :class:`WindowCodec` — convenience wrapper encoding a window's source
  payloads into FEC payloads and reconstructing from any 101 of the 110.
* :class:`StreamEmitter` — drives the simulator: fires a callback for every
  packet at its publish time (the gossip source hooks into this).
* :class:`PlaybackBuffer` — an online player model with a fixed playout lag,
  reporting which windows were viewable and which were jittered.
"""

from repro.streaming.fec import ReedSolomonCode, WindowCodec
from repro.streaming.packets import PacketDescriptor, WindowDescriptor
from repro.streaming.player import PlaybackBuffer, PlaybackReport
from repro.streaming.schedule import StreamConfig, StreamSchedule
from repro.streaming.source import StreamEmitter

__all__ = [
    "PacketDescriptor",
    "PlaybackBuffer",
    "PlaybackReport",
    "ReedSolomonCode",
    "StreamConfig",
    "StreamEmitter",
    "StreamSchedule",
    "WindowCodec",
    "WindowDescriptor",
]
