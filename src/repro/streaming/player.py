"""Playback model: turning packet arrivals into viewable (or jittered) windows.

The paper's quality metric is defined from the player's point of view: the
player sits ``lag`` seconds behind the source; when a window's playout
deadline arrives, the window is *viewable* if at least 101 of its 110 packets
have been received (the FEC threshold) and *jittered* otherwise.  The stream
quality of a node is the percentage of viewable windows, and a node "views
the stream" if at most 1 % of windows are jittered.

:class:`PlaybackBuffer` is the online version of that player: it is fed
packet arrivals (id + arrival time) and produces a :class:`PlaybackReport`.
The offline analysis used by the experiment harness (which evaluates *many*
lag values from one run) lives in :mod:`repro.metrics.quality`; both follow
the same deadline rule, and the test suite cross-checks them against each
other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from repro.streaming.packets import PacketId
from repro.streaming.schedule import StreamSchedule


@dataclass(frozen=True)
class WindowPlayback:
    """Outcome of playing one window at a fixed lag."""

    window_index: int
    deadline: float
    packets_on_time: int
    required_packets: int

    @property
    def viewable(self) -> bool:
        """Whether the window could be decoded by its playout deadline."""
        return self.packets_on_time >= self.required_packets


@dataclass
class PlaybackReport:
    """Aggregate playback outcome for one node at one lag value."""

    lag: float
    windows: List[WindowPlayback]

    @property
    def total_windows(self) -> int:
        """Number of windows the player attempted to play."""
        return len(self.windows)

    @property
    def viewable_windows(self) -> int:
        """Number of windows decoded in time."""
        return sum(1 for window in self.windows if window.viewable)

    @property
    def jittered_windows(self) -> int:
        """Number of windows that missed their deadline."""
        return self.total_windows - self.viewable_windows

    @property
    def jitter_ratio(self) -> float:
        """Fraction of windows jittered (0.0 when no windows were played)."""
        if not self.windows:
            return 0.0
        return self.jittered_windows / self.total_windows

    def views_stream(self, max_jitter: float = 0.01) -> bool:
        """The paper's viewing criterion: at most ``max_jitter`` of windows jittered."""
        return self.jitter_ratio <= max_jitter


class PlaybackBuffer:
    """An online player with a fixed playout lag.

    Packets arrive via :meth:`on_packet`; windows are judged lazily when
    :meth:`report` is called (the simulator does not need per-window deadline
    events, which keeps the hot path cheap).

    Parameters
    ----------
    schedule:
        The stream schedule (defines windows, deadlines and thresholds).
    lag:
        Playout lag in seconds: each packet's deadline is its publish time
        plus ``lag``.  Use ``float("inf")`` for offline viewing.
    """

    def __init__(self, schedule: StreamSchedule, lag: float) -> None:
        if lag < 0.0:
            raise ValueError(f"lag must be >= 0, got {lag!r}")
        self._schedule = schedule
        self.lag = float(lag)
        self._arrivals: Dict[PacketId, float] = {}
        self._duplicate_count = 0

    @property
    def packets_received(self) -> int:
        """Number of distinct packets received so far."""
        return len(self._arrivals)

    @property
    def duplicates(self) -> int:
        """Number of duplicate packet deliveries observed (should stay 0/low)."""
        return self._duplicate_count

    def on_packet(self, packet_id: PacketId, arrival_time: float) -> None:
        """Record the arrival of a packet; duplicates are counted but ignored."""
        if packet_id in self._arrivals:
            self._duplicate_count += 1
            return
        self._arrivals[packet_id] = arrival_time

    def window_packets_on_time(self, window_index: int) -> int:
        """How many packets of a window arrived before their playout deadline."""
        window = self._schedule.window(window_index)
        on_time = 0
        for packet_id in window.packet_ids:
            arrival = self._arrivals.get(packet_id)
            if arrival is None:
                continue
            deadline = self._schedule.packet(packet_id).publish_time + self.lag
            if arrival <= deadline:
                on_time += 1
        return on_time

    def report(self) -> PlaybackReport:
        """Judge every window of the schedule at this buffer's lag."""
        outcomes: List[WindowPlayback] = []
        for window in self._schedule.windows():
            on_time = self.window_packets_on_time(window.window_index)
            outcomes.append(
                WindowPlayback(
                    window_index=window.window_index,
                    deadline=window.publish_end + self.lag,
                    packets_on_time=on_time,
                    required_packets=window.required_packets,
                )
            )
        return PlaybackReport(lag=self.lag, windows=outcomes)

    def missing_packets(self) -> Set[PacketId]:
        """Packet ids never received (useful for debugging experiments)."""
        all_ids = {descriptor.packet_id for descriptor in self._schedule.packets()}
        return all_ids - set(self._arrivals)
