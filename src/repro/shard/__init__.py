"""Sharded execution: conservative time-window PDES across worker shards.

A sharded run partitions a session's nodes across ``k`` workers
(:mod:`repro.shard.partition`), advances every worker in lockstep
conservative time windows sized by the transport's minimum latency
(:mod:`repro.simulation.backend.sharded`), exchanges cross-shard datagrams
at window barriers, and merges the per-shard fragments into one
:class:`~repro.core.session.SessionResult`
(:func:`~repro.shard.runner.merge_shard_results`).

The defining contract: **any shard count produces byte-identical results to
the scalar oracle** — ``StreamingSession(config).run()`` with the same
config.  Sharding changes how a session executes, never what it computes.
``tests/properties/test_shard_equivalence.py`` pins this for every
registered scenario at 1, 2 and 4 shards.
"""

from repro.shard.partition import partition_nodes, shard_lookup, shard_of_node
from repro.shard.runner import ShardProtocolError, merge_shard_results, run_sharded
from repro.shard.session import (
    ShardResult,
    ShardRouter,
    ShardSession,
    conservative_lookahead,
    session_horizon,
)
from repro.shard.wire import (
    WIRE_FORMATS,
    WireBatch,
    WireFormatError,
    decode_batch,
    encode_batch,
)

__all__ = [
    "ShardProtocolError",
    "ShardResult",
    "ShardRouter",
    "ShardSession",
    "WIRE_FORMATS",
    "WireBatch",
    "WireFormatError",
    "conservative_lookahead",
    "decode_batch",
    "encode_batch",
    "merge_shard_results",
    "partition_nodes",
    "run_sharded",
    "session_horizon",
    "shard_lookup",
    "shard_of_node",
]
