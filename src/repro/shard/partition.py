"""Deterministic node → shard placement.

Placement must be a pure function of ``(node_id, num_shards)`` — independent
of process, platform, build order and shard count history — because every
shard computes the full lookup table independently (workers route datagrams
by it, the coordinator routes window batches by it, and the merge step
re-homes per-node fragments by it).  A stable hash also keeps placement
*uncorrelated* with node id structure: bandwidth classes are assigned by
``node_id % 10`` (:mod:`repro.scenarios.spec`), so a modulo partitioner
would pile one capacity class onto one shard.

The hash reuses the repo's seed-derivation construction
(:func:`repro.simulation.rng.derive_seed`-style SHA-256 over a labelled
string), not Python's randomized ``hash()``.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.network.message import NodeId


def shard_of_node(node_id: NodeId, num_shards: int) -> int:
    """The shard owning ``node_id`` in a ``num_shards``-way partition."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards!r}")
    if num_shards == 1:
        return 0
    digest = hashlib.sha256(f"shard:node-{node_id}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def shard_lookup(num_nodes: int, num_shards: int) -> List[int]:
    """Owner shard of every node id in ``range(num_nodes)``, as a flat list.

    The list form is the routing hot-path structure: one indexed load per
    cross-checked datagram.
    """
    return [shard_of_node(node_id, num_shards) for node_id in range(num_nodes)]


def partition_nodes(num_nodes: int, num_shards: int) -> List[List[NodeId]]:
    """Node ids grouped by owner shard (ascending within each shard).

    Shards can legitimately come out empty — a 2-node session split 4 ways
    leaves at least two shards without nodes; such shards still participate
    in the window protocol (they replicate the control plane).
    """
    groups: List[List[NodeId]] = [[] for _ in range(num_shards)]
    for node_id in range(num_nodes):
        groups[shard_of_node(node_id, num_shards)].append(node_id)
    return groups
