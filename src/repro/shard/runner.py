"""Drive K shard workers through lockstep time windows and merge the results.

The coordinator is deliberately thin: it never inspects simulation state,
only window bookkeeping.  Each round it gathers one :class:`WindowReport`
per shard, routes the outbound datagrams to their receivers' shards, and
computes the next window bound from the global minimum pending-event time::

    t_min      = min(all shard peeks, all in-flight delivery times)
    next_bound = min(until, t_min + lookahead)        # while bound < until

Every quantity in that formula is derived from the config (lookahead,
horizon) or reported by the workers (peeks, delivery times), so workers in
other processes reach bit-identical window sequences with no shared memory.

Once the bound reaches the horizon the run enters the *drain loop*: workers
execute inclusively up to ``until`` and keep exchanging until a round moves
no datagrams and no shard holds an event at or below the horizon.

Two runner modes share all of this logic through a channel object with one
method (``exchange(report) -> reply``):

* ``thread`` — workers are daemon threads, channels are queue pairs.  The
  default: Python threads interleave rather than parallelize, but they add
  no pickling or process-spawn cost, which keeps the equivalence suite and
  small sessions fast.
* ``process`` — workers are OS processes, channels are pipes.  Real
  parallelism for sessions big enough to amortize the per-window pickle of
  the cross-shard batches (see the README's honest measurement notes).
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import traceback
from dataclasses import replace
from typing import Dict, List, Optional

from repro.core.session import SessionConfig, SessionResult
from repro.metrics.delivery import DeliveryLog
from repro.network.stats import TrafficStats
from repro.streaming.schedule import StreamSchedule

from repro.shard.partition import shard_lookup
from repro.shard.session import (
    ShardResult,
    WindowReply,
    WindowReport,
    conservative_lookahead,
    run_shard_worker,
    session_horizon,
)


class ShardProtocolError(RuntimeError):
    """A shard violated the window protocol or died mid-run."""


class _Coordinator:
    """Pure window bookkeeping: reports in, replies out, no I/O."""

    def __init__(self, config: SessionConfig, num_shards: int) -> None:
        self._num_shards = num_shards
        self._lookup = shard_lookup(config.num_nodes, num_shards)
        self._until = session_horizon(config)
        self._lookahead = conservative_lookahead(config)

    def replies(self, reports: List[WindowReport]) -> List[WindowReply]:
        """One coordination round: route datagrams, pick the next bound."""
        if len(reports) != self._num_shards:
            raise ShardProtocolError(
                f"expected {self._num_shards} window reports, got {len(reports)}"
            )
        bound = reports[0].bound
        for report in reports:
            if report.bound != bound:
                raise ShardProtocolError(
                    f"window bounds diverged: shard {report.shard_id} is at "
                    f"{report.bound!r}, shard {reports[0].shard_id} at {bound!r}"
                )
        inbound: List[List] = [[] for _ in range(self._num_shards)]
        moved = False
        t_min: Optional[float] = None
        for report in reports:
            if report.peek_time is not None:
                if t_min is None or report.peek_time < t_min:
                    t_min = report.peek_time
            for datagram in report.outbound:
                moved = True
                deliver_time = datagram[0]
                if t_min is None or deliver_time < t_min:
                    t_min = deliver_time
                inbound[self._lookup[datagram[3].receiver]].append(datagram)
        if bound < self._until:
            # Conservative-window invariant: t_min >= bound, so the next
            # bound strictly advances (by at least the lookahead, capped at
            # the horizon) and jumps over empty stretches in one round.
            done = False
            next_bound = (
                self._until if t_min is None else min(self._until, t_min + self._lookahead)
            )
        else:
            # Drain loop at the horizon: done only when nothing moved and no
            # shard still holds an event at or below ``until`` (events past
            # the horizon stay pending, exactly as in a scalar run).
            done = not moved and (t_min is None or t_min > self._until)
            next_bound = self._until
        return [
            WindowReply(next_bound=next_bound, done=done, inbound=inbound[shard_id])
            for shard_id in range(self._num_shards)
        ]


# ----------------------------------------------------------------------
# Thread mode
# ----------------------------------------------------------------------
class _ThreadChannel:
    """Worker-side barrier endpoint backed by queue pairs."""

    def __init__(self, inbox: "queue.Queue", replies: "queue.Queue") -> None:
        self._inbox = inbox
        self._replies = replies

    def exchange(self, report: WindowReport) -> WindowReply:
        self._inbox.put(("window", report))
        reply = self._replies.get()
        if reply is None:  # poison pill: another shard failed
            raise ShardProtocolError("sharded run aborted")
        return reply


def _run_threaded(config: SessionConfig, num_shards: int) -> List[ShardResult]:
    inbox: "queue.Queue" = queue.Queue()
    reply_queues: List["queue.Queue"] = [queue.Queue() for _ in range(num_shards)]
    results: List[Optional[ShardResult]] = [None] * num_shards

    def worker(shard_id: int) -> None:
        channel = _ThreadChannel(inbox, reply_queues[shard_id])
        try:
            results[shard_id] = run_shard_worker(config, shard_id, num_shards, channel)
            inbox.put(("done", shard_id, None))
        except BaseException as exc:  # noqa: BLE001 — forwarded to the caller
            inbox.put(("error", shard_id, exc))

    threads = [
        threading.Thread(target=worker, args=(shard_id,), daemon=True, name=f"shard-{shard_id}")
        for shard_id in range(num_shards)
    ]
    for thread in threads:
        thread.start()

    def abort(cause: BaseException) -> "NoReturn":  # noqa: F821 — doc only
        for reply_queue in reply_queues:
            reply_queue.put(None)
        raise ShardProtocolError("a shard worker failed; run aborted") from cause

    coordinator = _Coordinator(config, num_shards)
    done = False
    while not done:
        reports: Dict[int, WindowReport] = {}
        while len(reports) < num_shards:
            tag, shard_id, payload = _tagged(inbox.get())
            if tag == "error":
                abort(payload)
            if tag != "window":
                raise ShardProtocolError(
                    f"shard {shard_id} finished before the coordinator released it"
                )
            reports[payload.shard_id] = payload
        round_replies = coordinator.replies([reports[i] for i in range(num_shards)])
        for shard_id, reply in enumerate(round_replies):
            reply_queues[shard_id].put(reply)
        done = round_replies[0].done

    finished = 0
    while finished < num_shards:
        tag, shard_id, payload = _tagged(inbox.get())
        if tag == "error":
            abort(payload)
        if tag == "window":
            raise ShardProtocolError(f"shard {shard_id} kept running after completion")
        finished += 1
    for thread in threads:
        thread.join()
    return [result for result in results if result is not None]


def _tagged(message):
    if isinstance(message, tuple) and len(message) == 3:
        return message
    if isinstance(message, tuple) and len(message) == 2 and message[0] == "window":
        return ("window", message[1].shard_id, message[1])
    raise ShardProtocolError(f"malformed coordinator message: {message!r}")


# ----------------------------------------------------------------------
# Process mode
# ----------------------------------------------------------------------
class _ShardAborted(BaseException):
    """Internal: coordinator told this worker to stop (peer failure)."""


class _PipeChannel:
    """Worker-side barrier endpoint backed by one end of a pipe."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def exchange(self, report: WindowReport) -> WindowReply:
        self._connection.send(("window", report))
        tag, payload = self._connection.recv()
        if tag == "abort":
            raise _ShardAborted()
        if tag != "reply":
            raise ShardProtocolError(f"unexpected coordinator message {tag!r}")
        return payload


def _process_worker_main(config, shard_id, num_shards, connection) -> None:
    try:
        result = run_shard_worker(config, shard_id, num_shards, _PipeChannel(connection))
        connection.send(("result", result))
    except _ShardAborted:
        pass
    except BaseException:  # noqa: BLE001 — serialized back to the parent
        try:
            connection.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        connection.close()


def _run_processes(config: SessionConfig, num_shards: int) -> List[ShardResult]:
    context = multiprocessing.get_context()
    pipes = [context.Pipe() for _ in range(num_shards)]
    workers = [
        context.Process(
            target=_process_worker_main,
            args=(config, shard_id, num_shards, pipes[shard_id][1]),
            name=f"shard-{shard_id}",
        )
        for shard_id in range(num_shards)
    ]
    for worker, (_, child_end) in zip(workers, pipes):
        worker.start()
        child_end.close()  # parent keeps only its end
    connections = [parent_end for parent_end, _ in pipes]

    def abort(detail: str) -> "NoReturn":  # noqa: F821 — doc only
        for connection in connections:
            try:
                connection.send(("abort", None))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
        raise ShardProtocolError(f"sharded run failed: {detail}")

    def receive(shard_id: int):
        try:
            return connections[shard_id].recv()
        except EOFError:
            abort(f"shard {shard_id} died without reporting")

    try:
        coordinator = _Coordinator(config, num_shards)
        done = False
        while not done:
            reports: List[WindowReport] = []
            for shard_id in range(num_shards):
                tag, payload = receive(shard_id)
                if tag == "error":
                    abort(f"shard {shard_id} raised:\n{payload}")
                if tag != "window":
                    abort(f"shard {shard_id} sent {tag!r} mid-run")
                reports.append(payload)
            round_replies = coordinator.replies(reports)
            for shard_id, reply in enumerate(round_replies):
                connections[shard_id].send(("reply", reply))
            done = round_replies[0].done

        results: List[ShardResult] = []
        for shard_id in range(num_shards):
            tag, payload = receive(shard_id)
            if tag == "error":
                abort(f"shard {shard_id} raised:\n{payload}")
            if tag != "result":
                abort(f"shard {shard_id} sent {tag!r} instead of its result")
            results.append(payload)
    finally:
        for connection in connections:
            connection.close()
    for worker in workers:
        worker.join()
    return results


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def merge_shard_results(
    config: SessionConfig, fragments: List[ShardResult]
) -> SessionResult:
    """Reassemble per-shard fragments into one scalar-identical result.

    The merge relies on strict ownership: a node's deliveries, traffic cell
    and stats are recorded exclusively on its owner shard (sends are charged
    on the sender's shard, receptions happen on the receiver's shard, and a
    node plays both roles only where it lives).  Re-homing is therefore pure
    relocation — nothing is ever summed across shards except the event
    counter, which subtracts the replicated control-plane firings.
    """
    if not fragments:
        raise ValueError("cannot merge an empty list of shard results")
    fragments = sorted(fragments, key=lambda fragment: fragment.shard_id)
    num_shards = fragments[0].num_shards
    if [fragment.shard_id for fragment in fragments] != list(range(num_shards)):
        raise ShardProtocolError(
            f"incomplete shard results: got ids "
            f"{[fragment.shard_id for fragment in fragments]!r} for {num_shards} shards"
        )
    lookup = shard_lookup(config.num_nodes, num_shards)

    for fragment in fragments:
        for node_id in fragment.deliveries.raw():
            if lookup[node_id] != fragment.shard_id:
                raise ShardProtocolError(
                    f"shard {fragment.shard_id} recorded deliveries for node "
                    f"{node_id}, owned by shard {lookup[node_id]}"
                )
        for node_id in fragment.traffic.raw():
            if lookup[node_id] != fragment.shard_id:
                raise ShardProtocolError(
                    f"shard {fragment.shard_id} recorded traffic for node "
                    f"{node_id}, owned by shard {lookup[node_id]}"
                )

    first = fragments[0]
    for fragment in fragments[1:]:
        if fragment.failed_nodes != first.failed_nodes:
            raise ShardProtocolError(
                "shards disagree on the failure history — the replicated "
                "control plane diverged"
            )
        if fragment.late_joiners != first.late_joiners:
            raise ShardProtocolError(
                "shards disagree on the late-joiner set — the replicated "
                "control plane diverged"
            )
        if fragment.control_events != first.control_events:
            raise ShardProtocolError(
                "shards disagree on the control-event count — the replicated "
                "control plane diverged"
            )
        if fragment.end_time != first.end_time:
            raise ShardProtocolError("shards disagree on the session end time")

    schedule = StreamSchedule(config.stream)
    deliveries = DeliveryLog(schedule)
    traffic = TrafficStats()
    node_stats = {}
    for node_id in range(config.num_nodes):
        fragment = fragments[lookup[node_id]]
        node_log = fragment.deliveries.raw().get(node_id)
        if node_log:
            # Per-node insertion order is chronological on the owner shard;
            # replaying it preserves the lag accumulators' delivery order.
            for packet_id, delivered_at in node_log.items():
                deliveries.record(node_id, packet_id, delivered_at)
        cell = fragment.traffic.raw().get(node_id)
        if cell is not None:
            traffic.adopt_cell(node_id, cell)
        stats = fragment.node_stats.get(node_id)
        if stats is not None:
            node_stats[node_id] = stats

    events_processed = (
        sum(fragment.events_processed - fragment.control_events for fragment in fragments)
        + first.control_events
    )
    telemetry = None
    if any(fragment.telemetry is not None for fragment in fragments):
        telemetry = tuple(fragment.telemetry for fragment in fragments)
    return SessionResult(
        config=config,
        schedule=schedule,
        deliveries=deliveries,
        traffic=traffic,
        node_stats=node_stats,
        failed_nodes=list(first.failed_nodes),
        events_processed=events_processed,
        end_time=first.end_time,
        late_joiners=list(first.late_joiners),
        telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_sharded(
    config: SessionConfig,
    shards: Optional[int] = None,
    mode: str = "thread",
) -> SessionResult:
    """Run ``config`` partitioned across shard workers; merge the fragments.

    Parameters
    ----------
    config:
        The session to run.  ``config.shards`` supplies the shard count when
        the ``shards`` argument is ``None``; if both are given, the argument
        wins and the config is re-stamped so workers see the same value.
    shards:
        Optional shard-count override (must be ``>= 1``).
    mode:
        ``"thread"`` (default; no pickling, interleaved execution) or
        ``"process"`` (true parallelism, per-window pickling).

    Returns the same :class:`~repro.core.session.SessionResult` a scalar
    ``StreamingSession(config).run()`` of the identical config produces —
    byte-identical for any shard count.
    """
    num_shards = shards if shards is not None else config.shards
    if num_shards is None:
        raise ValueError("run_sharded needs a shard count (argument or config.shards)")
    if num_shards < 1:
        raise ValueError(f"shards must be >= 1, got {num_shards!r}")
    if config.shards != num_shards:
        config = replace(config, shards=num_shards)
    if mode == "thread":
        fragments = _run_threaded(config, num_shards)
    elif mode == "process":
        fragments = _run_processes(config, num_shards)
    else:
        raise ValueError(f"unknown sharded runner mode {mode!r} (thread/process)")
    return merge_shard_results(config, fragments)
