"""Drive K shard workers through lockstep window rounds and merge the results.

The coordinator is deliberately thin: it never inspects simulation state,
only window bookkeeping.  Each round it gathers one :class:`WindowReport`
per shard, forwards the pre-split outbound batches to their destination
shards (validating every datagram's routing on the way), and computes each
shard's next window bound from the reported peek times.

**Adaptive window widening.**  The original runner advanced every shard to
the same bound ``min(until, t_min + lookahead)`` where ``t_min`` is the
global earliest pending-event time.  That is correct but pessimistic: shard
``k`` cannot be influenced before

* ``min_{j != k} p_j + lookahead`` — another shard's earliest pending event
  sends a datagram that needs at least one transport hop, or
* ``p_k + 2 * lookahead`` — shard ``k``'s *own* earliest event is reflected
  back through some other shard (one hop out, one hop back; longer chains
  arrive later and are dominated by these two terms),

where ``p_j`` is shard ``j``'s earliest pending time *including* the
datagrams routed to it this round.  Each shard therefore gets its own bound
``min(until, min_{j != k} p_j + L, p_k + 2L)`` — never smaller than the old
common bound (both terms are ``>= t_min + L``), and strictly wider for the
shard that holds the globally earliest work whenever the other shards are
quiet.  When cross-shard traffic is sparse this cuts the number of barrier
rounds; a single-shard run needs no barriers at all and jumps straight to
the horizon.  The coordinator records the bound it issues to each shard and
verifies the next round's reports against them.

Every quantity in the formula is derived from the config (lookahead,
horizon) or reported by the workers (peeks, batch delivery times), so
workers in other processes reach bit-identical window sequences with no
shared memory.

Once a shard's bound reaches the horizon it enters the *drain loop*: it
executes inclusively up to ``until`` and keeps exchanging until a round
moves no datagrams, every shard is at the horizon, and no shard holds an
event at or below it.

Two runner modes share all of this logic through a channel object with one
method (``exchange(report) -> reply``):

* ``thread`` — workers are daemon threads, channels are queue pairs.  The
  default: Python threads interleave rather than parallelize, but they add
  no pickling or process-spawn cost, which keeps the equivalence suite and
  small sessions fast.
* ``process`` — workers are OS processes, channels are pipes carrying
  pickle-protocol-5 frames.  Real parallelism; the per-window serialization
  cost is the compact wire format's to keep down (:mod:`repro.shard.wire`).
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import threading
import traceback
from multiprocessing import connection as mp_connection
from dataclasses import replace
from typing import Dict, List, Optional

from repro.core.session import SessionConfig, SessionResult
from repro.metrics.delivery import DeliveryLog
from repro.network.stats import TrafficStats
from repro.streaming.schedule import StreamSchedule

from repro.shard.partition import shard_lookup
from repro.shard.session import (
    ShardResult,
    WindowReply,
    WindowReport,
    conservative_lookahead,
    run_shard_worker,
    session_horizon,
)
from repro.shard.wire import batch_length, check_wire_format, iter_headers


class ShardProtocolError(RuntimeError):
    """A shard violated the window protocol or died mid-run."""


class _Coordinator:
    """Pure window bookkeeping: reports in, replies out, no I/O."""

    def __init__(self, config: SessionConfig, num_shards: int) -> None:
        self._num_shards = num_shards
        self._lookup = shard_lookup(config.num_nodes, num_shards)
        self._until = session_horizon(config)
        self._lookahead = conservative_lookahead(config)
        #: Bounds issued last round, by shard id (``None`` until round one —
        #: the first bound is computed identically by every shard backend).
        self._issued: Optional[List[float]] = None
        self.rounds = 0

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _check_bounds(self, reports: List[WindowReport]) -> None:
        if self._issued is None:
            bound = reports[0].bound
            for report in reports:
                if report.bound != bound:
                    raise ShardProtocolError(
                        f"window bounds diverged: shard {report.shard_id} is at "
                        f"{report.bound!r}, shard {reports[0].shard_id} at {bound!r}"
                    )
            return
        for report in reports:
            issued = self._issued[report.shard_id]
            if report.bound != issued:
                raise ShardProtocolError(
                    f"window bounds diverged: shard {report.shard_id} reported "
                    f"bound {report.bound!r}, coordinator issued {issued!r}"
                )

    def _validate_batch(self, report: WindowReport, dest: int, batch) -> Optional[float]:
        """Routing-check one outbound batch; return its earliest delivery time.

        A corrupted or misrouted batch must surface as a diagnosable
        :class:`ShardProtocolError` naming the shard and datagram, never as
        a bare ``IndexError``/``KeyError`` from the lookup table.
        """
        num_nodes = len(self._lookup)
        if not isinstance(dest, int) or not 0 <= dest < self._num_shards:
            raise ShardProtocolError(
                f"shard {report.shard_id} addressed a batch to invalid shard "
                f"{dest!r} ({self._num_shards} shards exist)"
            )
        if dest == report.shard_id:
            raise ShardProtocolError(
                f"shard {report.shard_id} routed a batch to itself; local "
                f"datagrams must never reach the coordinator"
            )
        earliest: Optional[float] = None
        for index, (deliver_time, sender, _seq, receiver) in enumerate(
            iter_headers(batch)
        ):
            if not 0 <= receiver < num_nodes:
                raise ShardProtocolError(
                    f"shard {report.shard_id} sent datagram #{index} for "
                    f"unknown receiver {receiver!r} ({num_nodes} nodes exist)"
                )
            if self._lookup[receiver] != dest:
                raise ShardProtocolError(
                    f"shard {report.shard_id} misrouted datagram #{index}: "
                    f"receiver {receiver} is owned by shard "
                    f"{self._lookup[receiver]}, batch was addressed to shard {dest}"
                )
            if not 0 <= sender < num_nodes or self._lookup[sender] != report.shard_id:
                raise ShardProtocolError(
                    f"shard {report.shard_id} sent datagram #{index} from "
                    f"sender {sender!r}, which it does not own"
                )
            if earliest is None or deliver_time < earliest:
                earliest = deliver_time
        return earliest

    # ------------------------------------------------------------------
    # One round
    # ------------------------------------------------------------------
    def replies(self, reports: List[WindowReport]) -> List[WindowReply]:
        """One coordination round: route batches, pick per-shard next bounds."""
        if len(reports) != self._num_shards:
            raise ShardProtocolError(
                f"expected {self._num_shards} window reports, got {len(reports)}"
            )
        if sorted(report.shard_id for report in reports) != list(range(self._num_shards)):
            raise ShardProtocolError(
                f"window reports carry invalid shard ids "
                f"{[report.shard_id for report in reports]!r}"
            )
        self._check_bounds(reports)
        self.rounds += 1

        inbound: List[List[object]] = [[] for _ in range(self._num_shards)]
        earliest_inbound: List[Optional[float]] = [None] * self._num_shards
        moved = False
        for report in reports:
            for dest, batch in report.outbound.items():
                if batch_length(batch) == 0:
                    continue
                earliest = self._validate_batch(report, dest, batch)
                moved = True
                inbound[dest].append(batch)
                if earliest is not None and (
                    earliest_inbound[dest] is None or earliest < earliest_inbound[dest]
                ):
                    earliest_inbound[dest] = earliest

        # Effective earliest pending time per shard: its own queue peek plus
        # anything just routed to it.  This is the quantity the widening
        # proof (module docstring) is stated over.
        pending: List[Optional[float]] = []
        by_shard = sorted(reports, key=lambda report: report.shard_id)
        for report in by_shard:
            candidates = [
                time
                for time in (report.peek_time, earliest_inbound[report.shard_id])
                if time is not None
            ]
            pending.append(min(candidates) if candidates else None)

        until = self._until
        t_min = min((time for time in pending if time is not None), default=None)
        at_horizon = all(report.bound == until for report in reports)
        if at_horizon and not moved and (t_min is None or t_min > until):
            # Drain loop complete: nothing moved, every shard sits at the
            # horizon, and all remaining events lie strictly past it (they
            # stay pending, exactly as in a scalar run).
            self._issued = [until] * self._num_shards
            return [
                WindowReply(next_bound=until, done=True, inbound=inbound[shard_id])
                for shard_id in range(self._num_shards)
            ]

        lookahead = self._lookahead
        next_bounds: List[float] = []
        for shard_id in range(self._num_shards):
            others = min(
                (
                    time
                    for other, time in enumerate(pending)
                    if other != shard_id and time is not None
                ),
                default=None,
            )
            own = pending[shard_id]
            horizon_candidates: List[float] = []
            if others is not None:
                horizon_candidates.append(others + lookahead)
            if own is not None and self._num_shards > 1:
                horizon_candidates.append(own + 2.0 * lookahead)
            bound = until if not horizon_candidates else min(until, min(horizon_candidates))
            # The widening proof guarantees monotonicity; the max() keeps a
            # shard that already ran its inclusive horizon stretch from ever
            # being handed a smaller bound again.
            next_bounds.append(max(bound, by_shard[shard_id].bound))
        self._issued = next_bounds
        return [
            WindowReply(
                next_bound=next_bounds[shard_id], done=False, inbound=inbound[shard_id]
            )
            for shard_id in range(self._num_shards)
        ]


# ----------------------------------------------------------------------
# Thread mode
# ----------------------------------------------------------------------
#: Seconds to wait for worker threads/processes to wind down after an abort.
_ABORT_JOIN_TIMEOUT = 5.0


class _ThreadChannel:
    """Worker-side barrier endpoint backed by queue pairs.

    Every message on the coordinator's inbox has the same shape —
    ``(tag, shard_id, payload)`` — whether it is a window report, a
    completion notice or a worker error.  (An earlier revision sent
    2-tuples for reports and 3-tuples for everything else; the dual shape
    hid a malformed-message class once and is gone for good.)
    """

    def __init__(self, shard_id: int, inbox: "queue.Queue", replies: "queue.Queue") -> None:
        self._shard_id = shard_id
        self._inbox = inbox
        self._replies = replies

    def exchange(self, report: WindowReport) -> WindowReply:
        self._inbox.put(("window", self._shard_id, report))
        reply = self._replies.get()
        if reply is None:  # poison pill: another shard failed
            raise ShardProtocolError("sharded run aborted")
        return reply


def _run_threaded(config: SessionConfig, num_shards: int, wire: str) -> List[ShardResult]:
    inbox: "queue.Queue" = queue.Queue()
    reply_queues: List["queue.Queue"] = [queue.Queue() for _ in range(num_shards)]
    results: List[Optional[ShardResult]] = [None] * num_shards

    def worker(shard_id: int) -> None:
        channel = _ThreadChannel(shard_id, inbox, reply_queues[shard_id])
        try:
            results[shard_id] = run_shard_worker(
                config, shard_id, num_shards, channel, wire=wire
            )
            inbox.put(("done", shard_id, None))
        except BaseException as exc:  # noqa: BLE001 — forwarded to the caller
            inbox.put(("error", shard_id, exc))

    threads = [
        threading.Thread(target=worker, args=(shard_id,), daemon=True, name=f"shard-{shard_id}")
        for shard_id in range(num_shards)
    ]
    for thread in threads:
        thread.start()

    def abort(cause: BaseException) -> "NoReturn":  # noqa: F821 — doc only
        # Poison-pill every reply queue so blocked workers wake and exit,
        # then join them: a failed run must not leak daemon threads stuck in
        # queue.get() for the life of a pytest or sweep process.  The
        # original worker exception is re-raised, not wrapped — the caller
        # debugs the actual failure, not a generic protocol error.
        for reply_queue in reply_queues:
            reply_queue.put(None)
        for thread in threads:
            thread.join(timeout=_ABORT_JOIN_TIMEOUT)
        raise cause

    coordinator = _Coordinator(config, num_shards)
    done = False
    while not done:
        reports: Dict[int, WindowReport] = {}
        while len(reports) < num_shards:
            tag, shard_id, payload = inbox.get()
            if tag == "error":
                abort(payload)
            if tag != "window":
                abort(
                    ShardProtocolError(
                        f"shard {shard_id} finished before the coordinator released it"
                    )
                )
            reports[payload.shard_id] = payload
        try:
            round_replies = coordinator.replies([reports[i] for i in range(num_shards)])
        except ShardProtocolError as exc:
            abort(exc)
        for shard_id, reply in enumerate(round_replies):
            reply_queues[shard_id].put(reply)
        done = round_replies[0].done

    finished = 0
    while finished < num_shards:
        tag, shard_id, payload = inbox.get()
        if tag == "error":
            abort(payload)
        if tag == "window":
            abort(ShardProtocolError(f"shard {shard_id} kept running after completion"))
        finished += 1
    for thread in threads:
        thread.join()
    return [result for result in results if result is not None]


# ----------------------------------------------------------------------
# Process mode
# ----------------------------------------------------------------------
class _ShardAborted(BaseException):
    """Internal: coordinator told this worker to stop (peer failure)."""


def _send(connection, obj) -> None:
    """Ship one protocol message as a pickle-protocol-5 frame.

    ``Connection.send`` pickles at the interpreter's default protocol;
    framing explicitly at protocol 5 keeps the compact wire batches' flat
    buffers on the cheapest (out-of-band-capable) encoding on every
    supported Python version.
    """
    connection.send_bytes(pickle.dumps(obj, protocol=5))


def _recv(connection):
    return pickle.loads(connection.recv_bytes())


class _PipeChannel:
    """Worker-side barrier endpoint backed by one end of a pipe."""

    def __init__(self, connection) -> None:
        self._connection = connection

    def exchange(self, report: WindowReport) -> WindowReply:
        _send(self._connection, ("window", report))
        tag, payload = _recv(self._connection)
        if tag == "abort":
            raise _ShardAborted()
        if tag != "reply":
            raise ShardProtocolError(f"unexpected coordinator message {tag!r}")
        return payload


def _process_worker_main(config, shard_id, num_shards, connection, wire) -> None:
    try:
        result = run_shard_worker(
            config, shard_id, num_shards, _PipeChannel(connection), wire=wire
        )
        _send(connection, ("result", result))
    except _ShardAborted:
        pass
    except BaseException:  # noqa: BLE001 — serialized back to the parent
        try:
            _send(connection, ("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        connection.close()


def _run_processes(config: SessionConfig, num_shards: int, wire: str) -> List[ShardResult]:
    context = multiprocessing.get_context()
    pipes = [context.Pipe() for _ in range(num_shards)]
    workers = [
        context.Process(
            target=_process_worker_main,
            args=(config, shard_id, num_shards, pipes[shard_id][1], wire),
            name=f"shard-{shard_id}",
        )
        for shard_id in range(num_shards)
    ]
    for worker, (_, child_end) in zip(workers, pipes):
        worker.start()
        child_end.close()  # parent keeps only its end
    connections = [parent_end for parent_end, _ in pipes]

    def abort(detail: str) -> "NoReturn":  # noqa: F821 — doc only
        for connection in connections:
            try:
                _send(connection, ("abort", None))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.join(timeout=_ABORT_JOIN_TIMEOUT)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=_ABORT_JOIN_TIMEOUT)
        raise ShardProtocolError(f"sharded run failed: {detail}")

    def receive(shard_id: int):
        # Wait on the worker's exit sentinel alongside its pipe: EOF alone
        # cannot be trusted to surface a dead worker, because with the fork
        # start method sibling workers inherit (and keep open) this pipe's
        # write end, so the parent's recv would block forever.
        connection = connections[shard_id]
        worker = workers[shard_id]
        ready = mp_connection.wait([connection, worker.sentinel])
        if connection in ready or connection.poll(0):
            try:
                return _recv(connection)
            except EOFError:
                abort(f"shard {shard_id} died without reporting")
        # Sentinel only: the process exited without leaving a message.
        abort(
            f"shard {shard_id} died without reporting (exit code {worker.exitcode})"
        )

    try:
        coordinator = _Coordinator(config, num_shards)
        done = False
        while not done:
            reports: List[WindowReport] = []
            for shard_id in range(num_shards):
                tag, payload = receive(shard_id)
                if tag == "error":
                    abort(f"shard {shard_id} raised:\n{payload}")
                if tag != "window":
                    abort(f"shard {shard_id} sent {tag!r} mid-run")
                reports.append(payload)
            try:
                round_replies = coordinator.replies(reports)
            except ShardProtocolError as exc:
                abort(str(exc))
            for shard_id, reply in enumerate(round_replies):
                _send(connections[shard_id], ("reply", reply))
            done = round_replies[0].done

        results: List[ShardResult] = []
        for shard_id in range(num_shards):
            tag, payload = receive(shard_id)
            if tag == "error":
                abort(f"shard {shard_id} raised:\n{payload}")
            if tag != "result":
                abort(f"shard {shard_id} sent {tag!r} instead of its result")
            results.append(payload)
    finally:
        for connection in connections:
            connection.close()
    for worker in workers:
        worker.join()
    return results


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def merge_shard_results(
    config: SessionConfig, fragments: List[ShardResult]
) -> SessionResult:
    """Reassemble per-shard fragments into one scalar-identical result.

    The merge relies on strict ownership: a node's deliveries, traffic cell
    and stats are recorded exclusively on its owner shard (sends are charged
    on the sender's shard, receptions happen on the receiver's shard, and a
    node plays both roles only where it lives).  Re-homing is therefore pure
    relocation — nothing is ever summed across shards except the event
    counter, which subtracts the replicated control-plane firings.
    """
    if not fragments:
        raise ValueError("cannot merge an empty list of shard results")
    fragments = sorted(fragments, key=lambda fragment: fragment.shard_id)
    num_shards = fragments[0].num_shards
    if [fragment.shard_id for fragment in fragments] != list(range(num_shards)):
        raise ShardProtocolError(
            f"incomplete shard results: got ids "
            f"{[fragment.shard_id for fragment in fragments]!r} for {num_shards} shards"
        )
    lookup = shard_lookup(config.num_nodes, num_shards)

    for fragment in fragments:
        for node_id in fragment.deliveries.raw():
            if lookup[node_id] != fragment.shard_id:
                raise ShardProtocolError(
                    f"shard {fragment.shard_id} recorded deliveries for node "
                    f"{node_id}, owned by shard {lookup[node_id]}"
                )
        for node_id in fragment.traffic.raw():
            if lookup[node_id] != fragment.shard_id:
                raise ShardProtocolError(
                    f"shard {fragment.shard_id} recorded traffic for node "
                    f"{node_id}, owned by shard {lookup[node_id]}"
                )

    first = fragments[0]
    for fragment in fragments[1:]:
        if fragment.failed_nodes != first.failed_nodes:
            raise ShardProtocolError(
                "shards disagree on the failure history — the replicated "
                "control plane diverged"
            )
        if fragment.late_joiners != first.late_joiners:
            raise ShardProtocolError(
                "shards disagree on the late-joiner set — the replicated "
                "control plane diverged"
            )
        if fragment.control_events != first.control_events:
            raise ShardProtocolError(
                "shards disagree on the control-event count — the replicated "
                "control plane diverged"
            )
        if fragment.end_time != first.end_time:
            raise ShardProtocolError("shards disagree on the session end time")

    schedule = StreamSchedule(config.stream)
    deliveries = DeliveryLog(schedule)
    traffic = TrafficStats()
    node_stats = {}
    for node_id in range(config.num_nodes):
        fragment = fragments[lookup[node_id]]
        node_log = fragment.deliveries.raw().get(node_id)
        if node_log:
            # Per-node insertion order is chronological on the owner shard;
            # replaying it preserves the lag accumulators' delivery order.
            for packet_id, delivered_at in node_log.items():
                deliveries.record(node_id, packet_id, delivered_at)
        cell = fragment.traffic.raw().get(node_id)
        if cell is not None:
            traffic.adopt_cell(node_id, cell)
        stats = fragment.node_stats.get(node_id)
        if stats is not None:
            node_stats[node_id] = stats

    events_processed = (
        sum(fragment.events_processed - fragment.control_events for fragment in fragments)
        + first.control_events
    )
    telemetry = None
    if any(fragment.telemetry is not None for fragment in fragments):
        telemetry = tuple(fragment.telemetry for fragment in fragments)
    return SessionResult(
        config=config,
        schedule=schedule,
        deliveries=deliveries,
        traffic=traffic,
        node_stats=node_stats,
        failed_nodes=list(first.failed_nodes),
        events_processed=events_processed,
        end_time=first.end_time,
        late_joiners=list(first.late_joiners),
        telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_sharded(
    config: SessionConfig,
    shards: Optional[int] = None,
    mode: str = "thread",
    wire: str = "compact",
) -> SessionResult:
    """Run ``config`` partitioned across shard workers; merge the fragments.

    Parameters
    ----------
    config:
        The session to run.  ``config.shards`` supplies the shard count when
        the ``shards`` argument is ``None``; if both are given, the argument
        wins and the config is re-stamped so workers see the same value.
    shards:
        Optional shard-count override (must be ``>= 1``).
    mode:
        ``"thread"`` (default; no pickling, interleaved execution) or
        ``"process"`` (true parallelism, per-window wire serialization).
    wire:
        Cross-shard batch encoding: ``"compact"`` (default; columnar
        :mod:`repro.shard.wire` batches) or ``"legacy"`` (plain pickled
        ``RoutedDatagram`` lists, kept as the cross-check oracle).

    Returns the same :class:`~repro.core.session.SessionResult` a scalar
    ``StreamingSession(config).run()`` of the identical config produces —
    byte-identical for any shard count and either wire format.
    """
    num_shards = shards if shards is not None else config.shards
    if num_shards is None:
        raise ValueError("run_sharded needs a shard count (argument or config.shards)")
    if num_shards < 1:
        raise ValueError(f"shards must be >= 1, got {num_shards!r}")
    check_wire_format(wire)
    if config.shards != num_shards:
        config = replace(config, shards=num_shards)
    if mode == "thread":
        fragments = _run_threaded(config, num_shards, wire)
    elif mode == "process":
        fragments = _run_processes(config, num_shards, wire)
    else:
        raise ValueError(f"unknown sharded runner mode {mode!r} (thread/process)")
    return merge_shard_results(config, fragments)
