"""Command line for sharded sessions: run a scenario across K shards.

The ``--parity`` flag is the CI smoke check: it runs the *same config* both
ways — scalar :class:`~repro.core.session.StreamingSession` oracle and the
sharded runner — summarizes both, and exits non-zero on any field mismatch::

    python -m repro.shard run --scenario homogeneous --nodes 30 \
        --shards 2 --parity

Without ``--parity`` it just runs sharded and prints the headline numbers.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import fields
from typing import List, Optional

from repro.core.session import StreamingSession
from repro.scenarios.builder import SessionBuilder
from repro.scenarios.registry import available_scenarios, build_scenario
from repro.sweep.summary import MetricsRequest, PointSummary, summarize

from repro.shard.partition import partition_nodes
from repro.shard.runner import run_sharded
from repro.shard.session import conservative_lookahead
from repro.shard.wire import WIRE_FORMATS


def _positive_int(value: str) -> int:
    """Argparse type for counts that must be >= 1 (clear message, no traceback)."""
    try:
        parsed = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{value!r} is not an integer")
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {parsed}")
    return parsed


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description="Run a registered scenario partitioned across shard workers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser("run", help="run one scenario sharded")
    run.add_argument(
        "--scenario",
        required=True,
        help=f"registered scenario name (one of: {', '.join(available_scenarios())})",
    )
    run.add_argument(
        "--shards",
        type=_positive_int,
        required=True,
        help="number of shard workers (>= 1, at most the node count)",
    )
    run.add_argument(
        "--nodes", type=_positive_int, default=None, help="override the node count"
    )
    run.add_argument("--seed", type=int, default=None, help="override the root seed")
    run.add_argument(
        "--mode",
        choices=("thread", "process"),
        default="thread",
        help="worker mode (default: thread)",
    )
    run.add_argument(
        "--wire",
        choices=WIRE_FORMATS,
        default="compact",
        help="cross-shard batch encoding (default: compact)",
    )
    run.add_argument(
        "--parity",
        action="store_true",
        help="also run the scalar oracle, fail on any summary mismatch, "
        "and print the sharded/scalar wall-clock ratio",
    )
    return parser


def _summary_fields(summary: PointSummary) -> List[str]:
    return [f.name for f in fields(summary) if f.compare]


def _run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    overrides = {}
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.seed is not None:
        overrides["seed"] = args.seed
    spec = build_scenario(args.scenario, shards=args.shards, **overrides)
    config = SessionBuilder.from_spec(spec).to_config()
    if args.shards > config.num_nodes:
        parser.error(
            f"--shards {args.shards} exceeds the node count "
            f"({config.num_nodes} for scenario {spec.name!r}); every shard "
            f"needs at least one node to own"
        )

    sizes = [len(group) for group in partition_nodes(config.num_nodes, args.shards)]
    print(
        f"scenario={spec.name} nodes={config.num_nodes} shards={args.shards} "
        f"mode={args.mode} wire={args.wire} "
        f"lookahead={conservative_lookahead(config):.4f}s partition={sizes}"
    )

    started = time.perf_counter()
    result = run_sharded(config, mode=args.mode, wire=args.wire)
    sharded_wall = time.perf_counter() - started
    request = MetricsRequest()
    sharded = summarize(result, request, cell_id=spec.name, seed=config.seed)
    print(
        f"sharded : events={sharded.events_processed} "
        f"delivery={sharded.delivery_percentage:.2f}% "
        f"viewing(inf)={sharded.viewing_percentage(float('inf')):.2f}% "
        f"wall={sharded_wall:.2f}s"
    )

    if not args.parity:
        return 0

    started = time.perf_counter()
    oracle_result = StreamingSession(config).run()
    oracle_wall = time.perf_counter() - started
    oracle = summarize(oracle_result, request, cell_id=spec.name, seed=config.seed)
    print(
        f"scalar  : events={oracle.events_processed} "
        f"delivery={oracle.delivery_percentage:.2f}% "
        f"viewing(inf)={oracle.viewing_percentage(float('inf')):.2f}% "
        f"wall={oracle_wall:.2f}s"
    )

    mismatched = [
        name
        for name in _summary_fields(sharded)
        if getattr(sharded, name) != getattr(oracle, name)
    ]
    if mismatched:
        print(f"PARITY FAILED: fields differ: {', '.join(mismatched)}", file=sys.stderr)
        for name in mismatched:
            print(f"  {name}:", file=sys.stderr)
            print(f"    sharded: {getattr(sharded, name)!r}", file=sys.stderr)
            print(f"    scalar : {getattr(oracle, name)!r}", file=sys.stderr)
        return 1
    # The speedup trend in CI logs: >1.0 means sharding beat the scalar run.
    print(
        f"parity  : wall ratio sharded/scalar={sharded_wall / oracle_wall:.2f} "
        f"(speedup {oracle_wall / sharded_wall:.2f}x)"
    )
    print(f"PARITY OK: {args.shards}-shard run is identical to the scalar oracle")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.shard``."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _run(args, parser)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
