"""``python -m repro.shard`` — sharded-session command line."""

import sys

from repro.shard.cli import main

sys.exit(main())
