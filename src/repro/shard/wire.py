"""Compact cross-shard wire format: columnar batches instead of pickled objects.

Process-mode sharding pays a serialization tax at every window barrier: the
original runner pickled each window's ``RoutedDatagram`` list — one
:class:`~repro.network.message.Message` object per datagram, each dragging
its dataclass machinery, ``kind`` string and payload object graph through
the pickler.  At metropolis scale that tax dominated the cross-shard path
(docs/performance.md, ROADMAP item 1).

This module replaces the object batch with a *columnar* encoding,
:class:`WireBatch`: per-datagram head records packed into one ``struct``
array (``deliver_time``, ``sender``, ``seq``, ``receiver``, ``size_bytes``,
kind code, payload tag), tag scalars in an aux column, packet-id vectors in
an id column, and payload bytes (served packet contents, or the pickle
fallback for payload types the fast tags do not cover) in a blob column.
Integer columns are adaptively 1/2/4 bytes wide from the batch maxima, and
sequence numbers are delta-encoded against the batch minimum — a smoke-scale
batch pays ~15 bytes of head per datagram, not a pickled object graph.  Four
flat ``bytes`` objects cross the process boundary per batch — pickling them
is a length-prefixed memcpy.  The process channel ships them with
pickle protocol 5 framing (:func:`repro.shard.runner._send`); the buffers
stay in-band because a multiprocessing pipe serializes regardless — the
compact columns, not out-of-band plumbing, are where the bytes go away.

The contract is the shard contract: :func:`decode_batch` reconstructs every
``RoutedDatagram`` *exactly* — same delivery float, same ``Message`` field
values, same payload dataclasses — so the receiving shard's event stream is
byte-identical to what the pickled batch produced.  The shard-equivalence
property suite pins this end to end; ``tests/properties`` pins
``decode(encode(batch)) == batch`` directly, over every protocol message
kind and the pickle fallback.

Two formats are selectable end to end (``run_sharded(..., wire=...)``,
CLI ``--wire``):

* ``"compact"`` (default) — this module's columnar encoding;
* ``"legacy"`` — the original plain ``RoutedDatagram`` lists, kept as the
  cross-check oracle (the ``shard-smoke`` CI job runs both to parity).
"""

from __future__ import annotations

import pickle
import struct
import threading
from functools import lru_cache
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.core.messages import (
    FeedMePayload,
    ProposePayload,
    RequestPayload,
    ServedPacket,
    ServePayload,
)
from repro.network.message import Message

#: The two registered wire formats (CLI choices, ``run_sharded`` argument).
WIRE_FORMATS = ("compact", "legacy")

#: One cross-shard datagram, as produced by the router (re-exported shape;
#: the canonical definition lives in :mod:`repro.shard.session`).
RoutedDatagram = Tuple[float, int, int, Message]

# ----------------------------------------------------------------------
# Layout
# ----------------------------------------------------------------------
# Columns are *adaptively* sized: each batch measures its maxima and picks
# 1-, 2- or 4-byte widths for the node-id, seq-delta, wire-size, aux-scalar
# and packet-id columns (a 16-node smoke session pays 1-byte node ids; a
# metropolis session pays 2).  Sequence numbers — an unbounded lifetime
# counter — are stored as deltas against the batch minimum, which keeps
# them narrow forever.  All widths are pure functions of batch content, so
# encode/decode stays exact and deterministic.
#
# Per-datagram head record: ``deliver_time`` f64 (bit-exact, never
# narrowed), ``sender``, ``seq - seq_base``, ``receiver``, ``size_bytes``,
# kind code (u8), payload tag (u8).  Tag-specific scalars live in the aux
# column, not the head, so a tag pays only for what it uses.

_U32_MAX = 0xFFFFFFFF
_WIDTH_CODES = {1: "B", 2: "H", 4: "I"}

#: Payload tags and their aux-column footprint:
#: NONE — nothing; PROPOSE/REQUEST — 1 aux (id count) + that many entries
#: in the packet-id column; SERVE — 2 aux (packet id, packet size);
#: SERVE_BLOB — 3 aux (packet id, packet size, byte length) + bytes in the
#: blob column; FEED_ME — 1 aux (requester); PICKLE — 1 aux (byte length)
#: + a pickle of the payload in the blob column (the generality escape
#: hatch for payload types the fast tags do not cover).
(
    TAG_NONE,
    TAG_PROPOSE,
    TAG_REQUEST,
    TAG_SERVE,
    TAG_SERVE_BLOB,
    TAG_FEED_ME,
    TAG_PICKLE,
) = range(7)


def _width_for(maximum: int) -> int:
    if maximum <= 0xFF:
        return 1
    if maximum <= 0xFFFF:
        return 2
    return 4


@lru_cache(maxsize=64)
def _head_struct(node_width: int, seq_width: int, size_width: int) -> struct.Struct:
    codes = _WIDTH_CODES
    return struct.Struct(
        f"<d{codes[node_width]}{codes[seq_width]}{codes[node_width]}"
        f"{codes[size_width]}BB"
    )


@lru_cache(maxsize=8)
def _scalar_struct(width: int) -> struct.Struct:
    return struct.Struct(f"<{_WIDTH_CODES[width]}")


class WireFormatError(ValueError):
    """A batch cannot be represented in the compact head columns.

    Raised only for values outside the fixed-width head layout (node ids,
    sequence numbers or wire sizes beyond ``uint32``, more than 256 distinct
    message kinds in one batch).  Payload *types* never raise — anything the
    fast tags cannot carry rides the pickle fallback instead.
    """


class WireBatch:
    """One window's cross-shard batch in columnar form.

    Attributes
    ----------
    count:
        Number of datagrams in the batch.
    kinds:
        Per-batch table of ``Message.kind`` strings; head records index it.
    seq_base:
        The batch's minimum sequence number; head records store deltas
        against it (sequence numbers are an unbounded lifetime counter, the
        deltas inside one window stay narrow).
    widths:
        ``(node, seq, size, aux, ids)`` column widths in bytes, each 1, 2
        or 4, chosen from the batch maxima at encode time.
    head / aux / ids / blob:
        The four flat buffers (fixed head records, tag scalars, packet-id
        vectors, payload bytes).  All plain ``bytes`` — pickling a
        :class:`WireBatch` costs four memcpys regardless of batch size.
    """

    __slots__ = ("count", "kinds", "seq_base", "widths", "head", "aux", "ids", "blob")

    def __init__(
        self,
        count: int,
        kinds: Tuple[str, ...],
        seq_base: int,
        widths: Tuple[int, int, int, int, int],
        head: bytes,
        aux: bytes,
        ids: bytes,
        blob: bytes,
    ) -> None:
        self.count = count
        self.kinds = kinds
        self.seq_base = seq_base
        self.widths = widths
        self.head = head
        self.aux = aux
        self.ids = ids
        self.blob = blob

    def __getstate__(self):
        return (
            self.count,
            self.kinds,
            self.seq_base,
            self.widths,
            self.head,
            self.aux,
            self.ids,
            self.blob,
        )

    def __setstate__(self, state) -> None:
        (
            self.count,
            self.kinds,
            self.seq_base,
            self.widths,
            self.head,
            self.aux,
            self.ids,
            self.blob,
        ) = state

    def __len__(self) -> int:
        return self.count

    def __eq__(self, other) -> bool:
        if not isinstance(other, WireBatch):
            return NotImplemented
        return self.__getstate__() == other.__getstate__()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WireBatch(count={self.count}, nbytes={self.nbytes})"

    @property
    def nbytes(self) -> int:
        """Serialized payload size: the four columns, kind table and header.

        The constant accounts for the batch-level scalars (count, seq base,
        five width bytes) as they cross the wire inside the pickle frame.
        """
        return (
            len(self.head)
            + len(self.aux)
            + len(self.ids)
            + len(self.blob)
            + sum(len(kind) for kind in self.kinds)
            + 16
        )


def _fits_u32(value: int) -> bool:
    return type(value) is int and 0 <= value <= _U32_MAX


def _check_head_field(name: str, value: int) -> int:
    if not _fits_u32(value):
        raise WireFormatError(
            f"cannot encode datagram: {name} {value!r} does not fit the "
            f"uint32 head column"
        )
    return value


def encode_batch(datagrams: Sequence[RoutedDatagram]) -> WireBatch:
    """Pack a window's routed datagrams into one :class:`WireBatch`.

    Protocol payloads (PROPOSE / REQUEST / SERVE / FEED_ME and ``None``)
    take the typed fast tags; any other payload object is pickled
    individually into the blob column, so the format stays exact for
    message types future protocols introduce.

    Two passes: the first stages each record and measures the column
    maxima, the second packs with the narrowest widths that fit them.
    """
    if not datagrams:
        return WireBatch(0, (), 0, (1, 1, 1, 1, 1), b"", b"", b"", b"")

    kind_codes: Dict[str, int] = {}
    staged = []  # (deliver_time, sender, seq, receiver, size, kind, tag, aux_tuple, pids)
    blob = bytearray()
    max_node = max_size = max_aux = max_id = 0
    seq_base = min(datagram[2] for datagram in datagrams)
    max_seq_delta = 0
    for deliver_time, sender, seq, message in datagrams:
        kind_code = kind_codes.setdefault(message.kind, len(kind_codes))
        if kind_code > 0xFF:
            raise WireFormatError(
                f"cannot encode batch: more than 256 distinct message kinds "
                f"(offender: {message.kind!r})"
            )
        receiver = message.receiver
        size_bytes = message.size_bytes
        _check_head_field("sender", sender)
        _check_head_field("receiver", receiver)
        _check_head_field("size_bytes", size_bytes)
        delta = _check_head_field("seq delta", seq - seq_base)
        payload = message.payload
        tag = TAG_NONE
        aux: Tuple[int, ...] = ()
        pids: Tuple[int, ...] = ()
        if payload is None:
            pass
        elif type(payload) is ProposePayload and _ids_encodable(payload.packet_ids):
            tag, pids = TAG_PROPOSE, payload.packet_ids
            aux = (len(pids),)
        elif type(payload) is RequestPayload and _ids_encodable(payload.packet_ids):
            tag, pids = TAG_REQUEST, payload.packet_ids
            aux = (len(pids),)
        elif (
            type(payload) is ServePayload
            and type(payload.packet) is ServedPacket
            and _fits_u32(payload.packet.packet_id)
            and _fits_u32(payload.packet.size_bytes)
            and (payload.packet.payload is None or type(payload.packet.payload) is bytes)
        ):
            packet = payload.packet
            if packet.payload is None:
                tag = TAG_SERVE
                aux = (packet.packet_id, packet.size_bytes)
            else:
                tag = TAG_SERVE_BLOB
                aux = (packet.packet_id, packet.size_bytes, len(packet.payload))
                blob += packet.payload
        elif type(payload) is FeedMePayload and _fits_u32(payload.requester):
            tag, aux = TAG_FEED_ME, (payload.requester,)
        else:
            tag = TAG_PICKLE
            data = pickle.dumps(payload, protocol=5)
            aux = (len(data),)
            blob += data
        if sender > max_node:
            max_node = sender
        if receiver > max_node:
            max_node = receiver
        if size_bytes > max_size:
            max_size = size_bytes
        if delta > max_seq_delta:
            max_seq_delta = delta
        for value in aux:
            if not _fits_u32(value):
                raise WireFormatError(
                    f"cannot encode datagram: payload scalar {value!r} does "
                    f"not fit the aux column"
                )
            if value > max_aux:
                max_aux = value
        for packet_id in pids:
            if packet_id > max_id:
                max_id = packet_id
        staged.append(
            (deliver_time, sender, delta, receiver, size_bytes, kind_code, tag, aux, pids)
        )

    widths = (
        _width_for(max_node),
        _width_for(max_seq_delta),
        _width_for(max_size),
        _width_for(max_aux),
        _width_for(max_id),
    )
    head_pack = _head_struct(widths[0], widths[1], widths[2]).pack
    aux_pack = _scalar_struct(widths[3]).pack
    ids_pack = _scalar_struct(widths[4]).pack
    head = bytearray()
    aux_column = bytearray()
    ids_column = bytearray()
    for deliver_time, sender, delta, receiver, size_bytes, kind_code, tag, aux, pids in staged:
        head += head_pack(deliver_time, sender, delta, receiver, size_bytes, kind_code, tag)
        for value in aux:
            aux_column += aux_pack(value)
        for packet_id in pids:
            ids_column += ids_pack(packet_id)
    kinds = tuple(sorted(kind_codes, key=kind_codes.__getitem__))
    return WireBatch(
        len(datagrams),
        kinds,
        seq_base,
        widths,
        bytes(head),
        bytes(aux_column),
        bytes(ids_column),
        bytes(blob),
    )


def _ids_encodable(packet_ids: Tuple[int, ...]) -> bool:
    return len(packet_ids) <= _U32_MAX and all(_fits_u32(pid) for pid in packet_ids)


def decode_batch(batch: WireBatch) -> List[RoutedDatagram]:
    """Exact inverse of :func:`encode_batch`.

    Reconstructs each ``RoutedDatagram`` with field-identical ``Message``
    and payload values — the decoded batch compares equal to the encoded
    one, tuple for tuple, in the original order.
    """
    out: List[RoutedDatagram] = []
    kinds = batch.kinds
    seq_base = batch.seq_base
    node_width, seq_width, size_width, aux_width, ids_width = batch.widths
    blob = batch.blob
    aux_unpack = _scalar_struct(aux_width).unpack_from
    ids_code = _WIDTH_CODES[ids_width]
    aux_at = 0
    ids_at = 0
    blob_at = 0
    for (
        deliver_time,
        sender,
        delta,
        receiver,
        size_bytes,
        kind_code,
        tag,
    ) in _head_struct(node_width, seq_width, size_width).iter_unpack(batch.head):
        if tag == TAG_NONE:
            payload = None
        elif tag == TAG_PROPOSE or tag == TAG_REQUEST:
            (count,) = aux_unpack(batch.aux, aux_at)
            aux_at += aux_width
            packet_ids = struct.unpack_from(f"<{count}{ids_code}", batch.ids, ids_at)
            ids_at += ids_width * count
            payload = (
                ProposePayload(packet_ids)
                if tag == TAG_PROPOSE
                else RequestPayload(packet_ids)
            )
        elif tag == TAG_SERVE:
            (packet_id,) = aux_unpack(batch.aux, aux_at)
            (packet_size,) = aux_unpack(batch.aux, aux_at + aux_width)
            aux_at += 2 * aux_width
            payload = ServePayload(ServedPacket(packet_id, packet_size))
        elif tag == TAG_SERVE_BLOB:
            (packet_id,) = aux_unpack(batch.aux, aux_at)
            (packet_size,) = aux_unpack(batch.aux, aux_at + aux_width)
            (length,) = aux_unpack(batch.aux, aux_at + 2 * aux_width)
            aux_at += 3 * aux_width
            payload = ServePayload(
                ServedPacket(packet_id, packet_size, blob[blob_at : blob_at + length])
            )
            blob_at += length
        elif tag == TAG_FEED_ME:
            (requester,) = aux_unpack(batch.aux, aux_at)
            aux_at += aux_width
            payload = FeedMePayload(requester)
        elif tag == TAG_PICKLE:
            (length,) = aux_unpack(batch.aux, aux_at)
            aux_at += aux_width
            payload = pickle.loads(blob[blob_at : blob_at + length])
            blob_at += length
        else:
            raise WireFormatError(f"corrupt wire batch: unknown payload tag {tag}")
        out.append(
            (
                deliver_time,
                sender,
                seq_base + delta,
                Message(sender, receiver, kinds[kind_code], size_bytes, payload),
            )
        )
    return out


# ----------------------------------------------------------------------
# Format-agnostic helpers (a batch is a WireBatch or a RoutedDatagram list)
# ----------------------------------------------------------------------
def batch_length(batch) -> int:
    """Number of datagrams in a batch of either wire format."""
    return len(batch)


def iter_headers(batch) -> Iterator[Tuple[float, int, int, int]]:
    """Yield ``(deliver_time, sender, seq, receiver)`` per datagram.

    The coordinator's routing-validation view: both formats expose it
    without touching payloads (for a :class:`WireBatch`, a straight
    ``struct`` scan of the head column).
    """
    if isinstance(batch, WireBatch):
        seq_base = batch.seq_base
        node_width, seq_width, size_width = batch.widths[:3]
        for record in _head_struct(node_width, seq_width, size_width).iter_unpack(
            batch.head
        ):
            yield (record[0], record[1], seq_base + record[2], record[3])
    else:
        for deliver_time, sender, seq, message in batch:
            yield (deliver_time, sender, seq, message.receiver)


def decode_any(batch) -> List[RoutedDatagram]:
    """Materialize a batch of either wire format as ``RoutedDatagram`` list."""
    if isinstance(batch, WireBatch):
        return decode_batch(batch)
    return list(batch)


def merge_inbound(batches: Iterable) -> List[RoutedDatagram]:
    """Decode and merge a window's inbound batches into delivery order.

    Sorting by ``(deliver_time, sender, seq)`` makes the merged order
    independent of how the coordinator concatenated the per-source batches
    (``(sender, seq)`` is globally unique, so the key is a total order).
    """
    merged: List[RoutedDatagram] = []
    for batch in batches:
        merged.extend(decode_any(batch))
    merged.sort(key=lambda datagram: datagram[:3])
    return merged


# ----------------------------------------------------------------------
# Instrumentation (read by the sharded-session benchmark)
# ----------------------------------------------------------------------
class WireStats:
    """Process-local accumulator of encoded cross-shard traffic.

    Routers report every flushed window into the module-level
    :data:`WIRE_STATS`; the ``sharded-session`` benchmark resets it, runs,
    and reads bytes-per-window / bytes-per-datagram.  Thread-mode runs
    aggregate across all shards; process-mode workers accumulate in their
    own processes, so the parent sees zeros (documented in the benchmark).
    """

    __slots__ = ("_lock", "windows", "batches", "datagrams", "wire_bytes")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Zero every counter (start of a run)."""
        with self._lock:
            self.windows = 0
            self.batches = 0
            self.datagrams = 0
            self.wire_bytes = 0

    def record_window(self, batches: int, datagrams: int, wire_bytes: int) -> None:
        """Fold one window exchange's counts into the totals."""
        with self._lock:
            self.windows += 1
            self.batches += batches
            self.datagrams += datagrams
            self.wire_bytes += wire_bytes

    def snapshot(self) -> Dict[str, int]:
        """Copy the counters out under the lock."""
        with self._lock:
            return {
                "windows": self.windows,
                "batches": self.batches,
                "datagrams": self.datagrams,
                "wire_bytes": self.wire_bytes,
            }


WIRE_STATS = WireStats()


def batch_nbytes(batch) -> int:
    """Serialized size estimate of a batch (exact for :class:`WireBatch`)."""
    if isinstance(batch, WireBatch):
        return batch.nbytes
    return len(pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL))


def check_wire_format(wire: str) -> str:
    """Validate a wire-format name; returns it for chaining."""
    if wire not in WIRE_FORMATS:
        raise ValueError(
            f"unknown wire format {wire!r}; expected one of {WIRE_FORMATS}"
        )
    return wire
