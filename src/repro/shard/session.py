"""One shard of a sharded session: a replica control plane, a slice of nodes.

Every shard builds the *full deterministic control plane* of the session —
stream schedule, membership directory with every initially-present node,
armed churn/join plans, latency quality factors for all nodes — exactly as
the scalar :class:`~repro.core.session.StreamingSession` would.  Replication
is what makes placement irrelevant: partner selection, churn victim choice
and failure bookkeeping consume identical RNG streams on every shard, so no
coordination is needed for any membership decision.

What is *not* replicated is the data plane: a shard instantiates, registers
and starts only the :class:`~repro.core.node.GossipNode` objects it owns
(:func:`repro.shard.partition.shard_of_node`).  Datagrams between owned
nodes stay on the local event queue; datagrams to remote nodes are diverted
by :class:`ShardRouter` into the current time window's outbound batch and
re-scheduled verbatim — same absolute delivery instant — on the receiving
shard at the next window barrier (:mod:`repro.simulation.backend.sharded`).

Because the transport's per-datagram randomness runs in per-sender streams
when :attr:`~repro.core.session.SessionConfig.shards` is set, a datagram's
latency and loss draws are identical no matter how many shards exist — the
scalar oracle, 1 shard, 2 shards and 4 shards all compute the same floats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.node import NodeStats
from repro.core.session import SessionConfig, StreamingSession
from repro.metrics.delivery import DeliveryLog
from repro.network.message import Message, NodeId
from repro.network.stats import TrafficStats
from repro.network.transport import DatagramRouter
from repro.simulation.backend.sharded import ShardedBackend
from repro.simulation.engine import Simulator
from repro.simulation.rng import RngRegistry

from repro.shard.partition import shard_lookup
from repro.shard.wire import (
    WIRE_STATS,
    check_wire_format,
    encode_batch,
    merge_inbound,
)

#: One cross-shard datagram: ``(deliver_time, sender, seq, message)``.
#: ``seq`` is the origin shard's monotone dispatch counter; since a sender is
#: owned by exactly one shard, ``(sender, seq)`` is globally unique and the
#: triple ``(deliver_time, sender, seq)`` is a total order over any batch.
RoutedDatagram = Tuple[float, NodeId, int, Message]


def conservative_lookahead(config: SessionConfig) -> float:
    """The window size every shard and the coordinator must agree on.

    This is the transport's minimum propagation delay: upload serialization
    only adds to it, so no datagram sent at ``t`` can be delivered before
    ``t + lookahead``.  Computed from the *config* (via a throwaway model
    instance with no registered nodes) so workers in other processes derive
    the bit-identical float without ever seeing the live network object.
    """
    probe = config.network.build_latency(RngRegistry(0), [])
    lookahead = probe.min_latency()
    if lookahead <= 0.0:
        raise ValueError(
            f"cannot shard this session: latency model "
            f"{config.network.latency_model!r} has min_latency() == "
            f"{lookahead!r}, so no conservative time window exists"
        )
    return lookahead


def session_horizon(config: SessionConfig) -> float:
    """The run's ``until`` — the same expression the scalar session uses."""
    return config.stream.end_time + config.extra_time


@dataclass
class WindowReport:
    """What one shard tells the coordinator at a window barrier.

    ``outbound`` maps destination shard id to that destination's batch — a
    :class:`~repro.shard.wire.WireBatch` in compact mode, a plain
    ``RoutedDatagram`` list in legacy mode.  Pre-splitting by destination in
    the router (which owns the lookup table anyway) means the coordinator
    only forwards batches; it never re-packs them.
    """

    shard_id: int
    bound: float
    outbound: Dict[int, object]
    #: Earliest pending local event after the window (``None``: empty queue).
    peek_time: Optional[float]


@dataclass
class WindowReply:
    """The coordinator's answer: merged inbound traffic plus the next bound.

    ``inbound`` carries one batch per source shard that sent this shard
    traffic, in either wire format; the receiving shard decodes and sorts
    them (:func:`repro.shard.wire.merge_inbound`).
    """

    next_bound: float
    done: bool
    inbound: List[object] = field(default_factory=list)


@dataclass
class ShardResult:
    """The picklable fragment one shard contributes to the merged result.

    ``control_events`` counts the perturbation-injector firings (churn and
    join events), which every shard replicates; the merge subtracts the
    duplicates so the combined ``events_processed`` matches the scalar run.
    """

    shard_id: int
    num_shards: int
    owned: Tuple[NodeId, ...]
    deliveries: DeliveryLog
    traffic: TrafficStats
    node_stats: Dict[NodeId, NodeStats]
    failed_nodes: List[NodeId]
    late_joiners: List[NodeId]
    events_processed: int
    control_events: int
    end_time: float
    telemetry: Optional[object] = None


class ShardRouter(DatagramRouter):
    """Routes accepted datagrams: owned receivers locally, the rest batched.

    Remote datagrams are appended to a per-destination-shard batch carrying
    their absolute delivery time plus a monotone per-shard sequence number;
    the receiving shard sorts its merged inbound by ``(deliver_time, sender,
    seq)`` before scheduling, making delivery order independent of how the
    coordinator concatenated the batches.

    At every window flush the batches are packed into the selected wire
    format: ``"compact"`` produces :class:`~repro.shard.wire.WireBatch`
    columns (the cheap thing to push through a process pipe), ``"legacy"``
    keeps the plain tuple lists as the cross-check oracle.
    """

    __slots__ = ("_network", "_shard_id", "_lookup", "_outbound", "_seq", "_wire")

    def __init__(
        self, network, shard_id: int, lookup: List[int], wire: str = "compact"
    ) -> None:
        self._network = network
        self._shard_id = shard_id
        self._lookup = lookup
        self._outbound: Dict[int, List[RoutedDatagram]] = {}
        self._seq = 0
        self._wire = check_wire_format(wire)

    def dispatch(self, message: Message, deliver_time: float) -> None:
        """Deliver locally or queue the message for its destination shard."""
        dest = self._lookup[message.receiver]
        if dest == self._shard_id:
            self._network.schedule_delivery(message, deliver_time)
            return
        self._seq += 1
        datagram = (deliver_time, message.sender, self._seq, message)
        batch = self._outbound.get(dest)
        if batch is None:
            self._outbound[dest] = [datagram]
        else:
            batch.append(datagram)

    def flush(self) -> Dict[int, object]:
        """Take (and clear) the window's outbound batches, packed for the wire."""
        raw = self._outbound
        self._outbound = {}
        if self._wire != "compact":
            return raw
        batches: Dict[int, object] = {}
        datagrams = 0
        wire_bytes = 0
        for dest, batch in raw.items():
            encoded = encode_batch(batch)
            batches[dest] = encoded
            datagrams += encoded.count
            wire_bytes += encoded.nbytes
        WIRE_STATS.record_window(len(batches), datagrams, wire_bytes)
        return batches


class ShardSession(StreamingSession):
    """A :class:`StreamingSession` restricted to one shard's nodes.

    Parameters
    ----------
    config:
        The full session config (``config.shards`` must be set so the
        transport arms per-sender RNG streams).
    shard_id / num_shards:
        This shard's slot in the partition.
    channel:
        Barrier transport to the coordinator: an object with
        ``exchange(report: WindowReport) -> WindowReply`` that blocks until
        every shard has reached its coordinator-issued window bound.
    wire:
        Cross-shard batch encoding, ``"compact"`` (default) or ``"legacy"``
        (see :mod:`repro.shard.wire`).
    """

    def __init__(
        self,
        config: SessionConfig,
        shard_id: int,
        num_shards: int,
        channel,
        wire: str = "compact",
    ) -> None:
        if config.shards is None:
            raise ValueError("ShardSession requires a config with shards set")
        if not 0 <= shard_id < num_shards:
            raise ValueError(f"shard_id {shard_id!r} out of range for {num_shards} shards")
        super().__init__(config)
        self.shard_id = shard_id
        self.num_shards = num_shards
        self._channel = channel
        self._wire = check_wire_format(wire)
        self._lookup = shard_lookup(config.num_nodes, num_shards)
        self._owned = tuple(
            node_id
            for node_id in range(config.num_nodes)
            if self._lookup[node_id] == shard_id
        )
        self._router: Optional[ShardRouter] = None
        self._control_events = 0

    @property
    def owned_nodes(self) -> Tuple[NodeId, ...]:
        """Ascending ids of the nodes this shard instantiates."""
        return self._owned

    # ------------------------------------------------------------------
    # Build overrides (everything else is the scalar build, replicated)
    # ------------------------------------------------------------------
    def _create_simulator(self) -> Simulator:
        backend = ShardedBackend(
            conservative_lookahead(self.config), barrier=self._window_barrier
        )
        return Simulator(seed=self.config.seed, backend=backend)

    def _build_network(self) -> None:
        super()._build_network()
        assert self.network is not None
        self._router = ShardRouter(self.network, self.shard_id, self._lookup, self._wire)
        self.network.set_router(self._router)

    def _nodes_to_build(self) -> List[NodeId]:
        return list(self._owned)

    def _build_source(self) -> None:
        # Only the shard owning node 0 drives the stream; the emitter's
        # publication events must exist exactly once across the fleet.
        if self.config.source_id in self.nodes:
            super()._build_source()

    def _build_telemetry(self) -> None:
        # Each shard traces into its own file (suffix ``.shardK``); the trace
        # header carries (shard_id, num_shards) so tools can align tracks.
        telemetry = self.config.telemetry
        if telemetry is not None and telemetry.trace_path is not None:
            from dataclasses import replace

            self.config = replace(
                self.config,
                telemetry=telemetry.with_overrides(
                    trace_path=f"{telemetry.trace_path}.shard{self.shard_id}"
                ),
            )
        super()._build_telemetry()

    # ------------------------------------------------------------------
    # Perturbation callbacks: replicated decisions, owned-only application
    # ------------------------------------------------------------------
    def _apply_failures(self, victims: List[NodeId]) -> None:
        assert self.network is not None and self.directory is not None
        assert self.simulator is not None
        self._control_events += 1
        now = self.simulator.now
        for node_id in victims:
            # Directory and failure bookkeeping are replicated on every
            # shard (partner selection must exclude the victim everywhere);
            # only the owner has a live node object and endpoint to crash
            # (fail_node is a no-op for unregistered ids).
            self._failed_nodes.append(node_id)
            self.directory.mark_failed(node_id, now)
            self.network.fail_node(node_id)
            node = self.nodes.get(node_id)
            if node is not None:
                node.fail()

    def _apply_joins(self, joiners: List[NodeId]) -> None:
        assert self.directory is not None
        self._control_events += 1
        for node_id in joiners:
            self.directory.add(node_id)
            node = self.nodes.get(node_id)
            if node is not None:
                node.start()

    # ------------------------------------------------------------------
    # Window barrier (installed on the sharded dispatch backend)
    # ------------------------------------------------------------------
    def _window_barrier(self, bound: float) -> Tuple[float, bool]:
        assert self.simulator is not None and self.network is not None
        assert self._router is not None
        report = WindowReport(
            shard_id=self.shard_id,
            bound=bound,
            outbound=self._router.flush(),
            peek_time=self.simulator._queue.peek_time(),
        )
        reply = self._channel.exchange(report)
        for deliver_time, _sender, _seq, message in merge_inbound(reply.inbound):
            self.network.schedule_delivery(message, deliver_time)
        return reply.next_bound, reply.done

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_shard(self) -> ShardResult:
        """Run this shard to the session horizon; return its fragment."""
        if not self._built:
            self.build()
        assert self.simulator is not None and self.schedule is not None
        assert self.network is not None

        late = set(self._late_joiners)
        for node_id, node in self.nodes.items():
            if node_id not in late:
                node.start()
        if self.emitter is not None:
            self.emitter.start()

        self.simulator.run(until=session_horizon(self.config))

        telemetry_snapshot = (
            self.telemetry.finalize() if self.telemetry is not None else None
        )
        return ShardResult(
            shard_id=self.shard_id,
            num_shards=self.num_shards,
            owned=self._owned,
            deliveries=self.deliveries,
            traffic=self.network.stats,
            node_stats={node_id: node.stats for node_id, node in self.nodes.items()},
            failed_nodes=list(self._failed_nodes),
            late_joiners=list(self._late_joiners),
            events_processed=self.simulator.events_processed,
            control_events=self._control_events,
            end_time=self.simulator.now,
            telemetry=telemetry_snapshot,
        )


def run_shard_worker(
    config: SessionConfig, shard_id: int, num_shards: int, channel, wire: str = "compact"
) -> ShardResult:
    """Worker entry point shared by the thread and process runners."""
    return ShardSession(config, shard_id, num_shards, channel, wire=wire).run_shard()
