"""Command-line entry point for the validation subsystem.

Fuzz (exit code 1 if any case violates an invariant)::

    python -m repro.validation --fuzz 100 --seed 7 --jobs 4 \
        --bundle-dir results/fuzz

Replay a repro bundle (exit code 0 only on an exact reproduction)::

    python -m repro.validation --replay results/fuzz/fuzz-7-42.json

List the armed invariants::

    python -m repro.validation --list-invariants
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.validation.fuzzer import ScenarioFuzzer, replay_bundle
from repro.validation.invariants import DEFAULT_INVARIANTS


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.validation",
        description="Invariant-armed scenario fuzzing and repro-bundle replay.",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        metavar="N",
        help="run N seeded random scenarios with all invariants armed",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="campaign seed; case i is a pure function of (S, i) (default: 0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="J",
        help="worker processes to fan fuzz cases across (default: 1, serial)",
    )
    parser.add_argument(
        "--max-nodes",
        type=int,
        default=40,
        metavar="M",
        help="upper bound on derived system sizes (default: 40)",
    )
    parser.add_argument(
        "--bundle-dir",
        metavar="DIR",
        help="write a replayable repro bundle per failing case into DIR",
    )
    parser.add_argument(
        "--replay",
        metavar="BUNDLE",
        help="re-run a repro bundle and compare against its frozen failure",
    )
    parser.add_argument(
        "--list-invariants",
        action="store_true",
        help="print the shipped invariant checkers and exit",
    )
    args = parser.parse_args(argv)

    if args.list_invariants:
        for factory in DEFAULT_INVARIANTS:
            doc = (factory.__doc__ or "").strip().splitlines()[0]
            print(f"{factory.name:28s} {doc}")
        return 0

    if args.replay is not None:
        report = replay_bundle(args.replay)
        print(report.describe())
        if report.reproduced and report.message:
            print(f"  {report.message}")
        return 0 if (report.reproduced and report.matched) else 1

    if args.fuzz is None:
        parser.error("one of --fuzz, --replay or --list-invariants is required")

    fuzzer = ScenarioFuzzer(args.seed, max_nodes=args.max_nodes)
    failures = 0
    started = time.perf_counter()

    def progress(outcome) -> None:
        nonlocal failures
        if outcome.ok:
            print(f"  {outcome.case_id}: ok ({outcome.events_processed:,} events)")
        else:
            failures += 1
            print(f"  {outcome.case_id}: VIOLATION {outcome.message}")

    print(
        f"fuzzing {args.fuzz} scenarios (campaign seed {args.seed}, "
        f"jobs {args.jobs}, invariants: "
        f"{', '.join(factory.name for factory in DEFAULT_INVARIANTS)})"
    )
    outcomes = fuzzer.run_campaign(
        args.fuzz, jobs=args.jobs, bundle_dir=args.bundle_dir, progress=progress
    )
    elapsed = time.perf_counter() - started
    total_events = sum(outcome.events_processed for outcome in outcomes)
    print(
        f"{len(outcomes)} cases, {failures} violation(s), "
        f"{total_events:,} simulated events in {elapsed:.1f}s"
    )
    if failures and args.bundle_dir:
        print(f"repro bundles written to {args.bundle_dir}")
        print("replay with: python -m repro.validation --replay <bundle.json>")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
