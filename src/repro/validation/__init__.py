"""Deterministic validation: runtime invariants + scenario fuzzing.

This package turns the repo's determinism investment (seed-keyed named RNG
streams, total event ordering) into an automatic correctness engine:

* :mod:`~repro.validation.observers` — zero-cost-when-idle hook layer over
  the simulator, the transport and the gossip nodes;
* :mod:`~repro.validation.invariants` — checkers for the physics the paper
  assumes (bandwidth-cap compliance, packet conservation + FEC accounting,
  event-time monotonicity, three-phase conformance, churn hygiene);
* :mod:`~repro.validation.fuzzer` — a seeded scenario fuzzer that explores
  paper-plausible configuration space with all invariants armed and
  freezes failures into replayable repro bundles;
* :mod:`~repro.validation.bundle` — the bundle format itself.

Command line::

    python -m repro.validation --fuzz 100 --seed 7 --jobs 4 \
        --bundle-dir results/fuzz
    python -m repro.validation --replay results/fuzz/fuzz-7-42.json
"""

from repro.validation.bundle import ReproBundle, spec_from_dict, spec_to_dict
from repro.validation.fuzzer import (
    FuzzCase,
    FuzzOutcome,
    ReplayReport,
    ScenarioFuzzer,
    replay_bundle,
    run_fuzz_case,
)
from repro.validation.invariants import (
    DEFAULT_INVARIANTS,
    BandwidthCapCompliance,
    ChurnHygiene,
    EventTimeMonotonicity,
    Invariant,
    InvariantSuite,
    InvariantViolation,
    PacketConservation,
    ProtocolConformance,
    validate_session,
)
from repro.validation.observers import (
    DeliveryObserver,
    ProtocolObserver,
    SessionObserver,
    SimulationObserver,
    TransportObserver,
    attach_session_observer,
    detach_session_observer,
)

__all__ = [
    "BandwidthCapCompliance",
    "ChurnHygiene",
    "DEFAULT_INVARIANTS",
    "DeliveryObserver",
    "EventTimeMonotonicity",
    "FuzzCase",
    "FuzzOutcome",
    "Invariant",
    "InvariantSuite",
    "InvariantViolation",
    "PacketConservation",
    "ProtocolConformance",
    "ProtocolObserver",
    "ReplayReport",
    "ReproBundle",
    "ScenarioFuzzer",
    "SessionObserver",
    "SimulationObserver",
    "TransportObserver",
    "attach_session_observer",
    "detach_session_observer",
    "replay_bundle",
    "run_fuzz_case",
    "spec_from_dict",
    "spec_to_dict",
    "validate_session",
]
