"""Observer base classes for the simulation's instrumentation edges.

Three substrates expose observer hooks, each zero-cost until somebody
registers (the hosts keep ``None`` instead of an empty list, so the hot
paths pay a single identity test per event/datagram):

* :class:`~repro.simulation.engine.Simulator` — the **event-dispatch edge**
  (:meth:`SimulationObserver.on_event_dispatch`), fired right before each
  popped event's callback runs;
* :class:`~repro.network.transport.Network` — one edge per **datagram
  fate** (accepted / congestion-dropped / lost in flight / delivered /
  dropped at a dead receiver / blocked at a dead sender) plus node
  failure/recovery transitions (:class:`TransportObserver`);
* :class:`~repro.core.node.GossipNode` — the **first-time delivery edge**
  (:meth:`DeliveryObserver.on_packet_delivered`) plus the **protocol-phase
  edges** (:class:`ProtocolObserver`): one callback per gossip round and
  per feed-me round, fired with the partner/target sets the node drew.

The base classes here are deliberately all no-ops: an invariant checker
subclasses the union (:class:`SessionObserver`) and overrides only the edges
it cares about, and the hosts call every method on every registered
observer without reflection.  Observers must not mutate what they observe —
the determinism contract (same config + seed ⇒ same result) holds with and
without observers attached, and ``tests/validation`` pins that.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.network.message import Message, NodeId
from repro.streaming.packets import PacketId


class SimulationObserver:
    """Watches the simulator's event-dispatch edge."""

    def on_event_dispatch(
        self, time: float, callback: Any, args: Tuple[Any, ...]
    ) -> None:
        """An event is about to execute (clock already advanced to ``time``)."""


class TransportObserver:
    """Watches every fate a datagram can meet in the network substrate."""

    def on_send_blocked(self, message: Message, now: float) -> None:
        """The sender is dead or unregistered; nothing entered the network."""

    def on_send_accepted(self, message: Message, now: float, finish_time: float) -> None:
        """The sender's upload limiter accepted the datagram.

        ``finish_time`` is when its last byte leaves the node (serialization
        at the cap rate); the datagram may still be lost in flight or be
        dropped at a dead receiver.
        """

    def on_congestion_drop(self, message: Message, now: float) -> None:
        """The sender's upload backlog was full; the datagram was dropped."""

    def on_in_flight_loss(self, message: Message, now: float) -> None:
        """The loss model discarded the datagram after the limiter accepted it."""

    def on_delivered(self, message: Message, now: float) -> None:
        """The datagram reached a live receiver.

        Fires immediately *before* the receiver's handler runs, so traffic
        the handler emits in reaction observes this delivery as its cause.
        """

    def on_delivery_dropped(self, message: Message, now: float) -> None:
        """The receiver was dead or unregistered at arrival time."""

    def on_node_failed(self, node_id: NodeId, now: float) -> None:
        """``node_id`` crashed (churn): it stops sending and receiving."""

    def on_node_recovered(self, node_id: NodeId, now: float) -> None:
        """``node_id`` came back after a failure."""


class DeliveryObserver:
    """Watches first-time packet deliveries at gossip nodes."""

    def on_packet_delivered(
        self, node_id: NodeId, packet_id: PacketId, time: float, is_source: bool
    ) -> None:
        """``node_id`` delivered ``packet_id`` for the first time.

        ``is_source`` is true for the source's own local deliveries at
        publish time (which arrive through no network message).
        """


class ProtocolObserver:
    """Watches protocol-phase ticks at gossip nodes.

    These edges fire once per node per timer tick (every 0.2 s of simulated
    time by default) — orders of magnitude cooler than the dispatch or
    datagram edges — and carry the partner/target draws the node is about
    to hand its dissemination strategy.  Observers must not mutate the
    sequences they receive.
    """

    def on_gossip_round(
        self, node_id: NodeId, time: float, partners: Sequence[NodeId]
    ) -> None:
        """``node_id`` starts a gossip round towards ``partners``."""

    def on_feed_me_round(
        self, node_id: NodeId, time: float, targets: Sequence[NodeId]
    ) -> None:
        """``node_id`` fires a feed-me round towards ``targets``."""


class SessionObserver(
    SimulationObserver, TransportObserver, DeliveryObserver, ProtocolObserver
):
    """Union base: observes every substrate of one streaming session."""


def attach_session_observer(session, observer: SessionObserver) -> None:
    """Register ``observer`` on a built session's simulator, network and nodes.

    The session must already be built (``session.build()``); registering
    before the substrates exist would silently observe nothing.
    """
    if session.simulator is None or session.network is None:
        raise ValueError(
            "session is not built yet: call session.build() before attaching observers"
        )
    session.simulator.add_observer(observer)
    session.network.add_observer(observer)
    for node in session.nodes.values():
        node.add_observer(observer)


def detach_session_observer(session, observer: SessionObserver) -> None:
    """Remove ``observer`` from every substrate it was attached to."""
    if session.simulator is None or session.network is None:
        return
    session.simulator.remove_observer(observer)
    session.network.remove_observer(observer)
    for node in session.nodes.values():
        node.remove_observer(observer)
