"""Runtime invariant checkers: the physics the paper's claims assume.

Each :class:`Invariant` is a :class:`~repro.validation.observers.SessionObserver`
that watches a running session through the observer edges and raises
:class:`InvariantViolation` the moment the simulation does something the
model forbids.  The shipped checkers:

* ``event-time-monotonicity`` — dispatched event times never decrease;
* ``bandwidth-cap`` — no capped node ever emits faster than its upload cap
  allows, and its throttling backlog never exceeds the configured bound;
* ``packet-conservation`` — every delivered datagram was actually sent
  (exactly once), every packet a non-source node "delivers" arrived in a
  SERVE/PUSH it really received, the delivery log agrees with the observed
  delivery edges, and a window counts as decodable iff enough of its shards
  were actually delivered (FEC accounting);
* ``protocol-conformance`` — under the paper's three-phase protocol, no
  REQUEST without a prior PROPOSE and no SERVE without a prior REQUEST;
* ``churn-hygiene`` — departed nodes neither send, nor handle, nor deliver
  anything after their failure instant.

A violation freezes the failure coordinates — the invariant's name and the
simulator's event index — which is what makes a fuzzer repro bundle
(:mod:`repro.validation.bundle`) replayable to the exact same point.

Checkers observe, never mutate: a session with an :class:`InvariantSuite`
armed produces bit-identical results to an unobserved one (pinned by
``tests/validation/test_observers.py``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.messages import PROPOSE, REQUEST, SERVE, ServePayload
from repro.core.session import SessionResult, StreamingSession
from repro.metrics.quality import OFFLINE_LAG
from repro.network.message import Message, NodeId
from repro.streaming.packets import PacketId

from repro.validation.observers import SessionObserver

_REL_EPS = 1e-9
"""Relative float tolerance for budget comparisons (pure-accounting checks
use exact equality)."""


class InvariantViolation(AssertionError):
    """A runtime invariant failed.

    Attributes
    ----------
    invariant:
        Name of the failed checker (stable across runs; bundle key).
    event_index:
        ``Simulator.events_processed`` at the instant of the violation —
        with a fixed seed and spec this is a deterministic coordinate, so a
        replay fails at the same index.
    detail:
        Free-form diagnostic context (node ids, byte counts, ...).
    """

    def __init__(self, invariant: str, event_index: int, message: str, **detail: Any) -> None:
        self.invariant = invariant
        self.event_index = event_index
        self.detail = detail
        extra = f" [{', '.join(f'{k}={v!r}' for k, v in detail.items())}]" if detail else ""
        super().__init__(f"[{invariant}] at event {event_index}: {message}{extra}")


class Invariant(SessionObserver):
    """Base class: one named checker attachable to a streaming session."""

    name: str = "invariant"

    def __init__(self) -> None:
        self._simulator = None

    @classmethod
    def applies_to(cls, session: StreamingSession) -> bool:
        """Whether this checker is meaningful for the session's configuration."""
        return True

    def bind(self, session: StreamingSession) -> None:
        """Capture session context (caps, schedule, ...) before observing.

        The session is guaranteed to be built.  Subclasses overriding this
        must call ``super().bind(session)``.
        """
        self._simulator = session.simulator

    def finalize(self, result: SessionResult) -> None:
        """End-of-session checks (run after the simulation completes)."""

    def fail(self, message: str, **detail: Any) -> None:
        """Raise an :class:`InvariantViolation` at the current event index."""
        event_index = self._simulator.events_processed if self._simulator is not None else -1
        raise InvariantViolation(self.name, event_index, message, **detail)


class EventTimeMonotonicity(Invariant):
    """Dispatched event times never decrease."""

    name = "event-time-monotonicity"

    def bind(self, session: StreamingSession) -> None:
        super().bind(session)
        self._last_time = session.simulator.now

    def on_event_dispatch(self, time: float, callback: Any, args: Tuple[Any, ...]) -> None:
        if time < self._last_time:
            self.fail(
                f"event time {time!r} is before the previously dispatched {self._last_time!r}",
                time=time,
                previous=self._last_time,
            )
        self._last_time = time


class BandwidthCapCompliance(Invariant):
    """No capped node emits faster than its upload cap allows.

    Two checks per accepted datagram, both exact properties of a correct
    serializing limiter that started idle at t = 0:

    * cumulative accepted bits through ``finish_time`` never exceed
      ``rate × finish_time`` (a rate-r serializer cannot have pushed more);
    * the backlog implied by ``finish_time - now`` never exceeds the
      configured ``max_backlog_seconds``.
    """

    name = "bandwidth-cap"

    def bind(self, session: StreamingSession) -> None:
        super().bind(session)
        self._rate_bps: Dict[NodeId, float] = {}
        self._max_backlog: Dict[NodeId, float] = {}
        self._bits_accepted: Dict[NodeId, float] = {}
        network = session.network
        for node_id in session.nodes:
            cap = network.limiter(node_id).cap
            if cap.rate_bps is not None:
                self._rate_bps[node_id] = cap.rate_bps
                self._max_backlog[node_id] = cap.max_backlog_seconds

    def on_send_accepted(self, message: Message, now: float, finish_time: float) -> None:
        rate = self._rate_bps.get(message.sender)
        if rate is None:
            return
        bits = self._bits_accepted.get(message.sender, 0.0) + message.size_bytes * 8.0
        self._bits_accepted[message.sender] = bits
        budget = rate * finish_time
        if bits > budget * (1.0 + _REL_EPS) + 1e-6:
            self.fail(
                f"node {message.sender} accepted {bits:.0f} bits by t={finish_time:.6f}s "
                f"but its {rate:.0f} bps cap only allows {budget:.0f}",
                node=message.sender,
                bits=bits,
                budget=budget,
            )
        backlog = finish_time - now
        limit = self._max_backlog[message.sender]
        if backlog > limit * (1.0 + _REL_EPS) + 1e-9:
            self.fail(
                f"node {message.sender} built a {backlog:.3f}s upload backlog "
                f"(limit {limit:.3f}s)",
                node=message.sender,
                backlog=backlog,
                limit=limit,
            )


def _served_packet_id(message: Message) -> Optional[PacketId]:
    """The stream packet a datagram carries, if it carries one (SERVE/PUSH)."""
    payload = message.payload
    if isinstance(payload, ServePayload):
        return payload.packet.packet_id
    return None


class PacketConservation(Invariant):
    """No packet materializes out of thin air, and FEC accounting is honest.

    Runtime checks: a delivered datagram must be one the transport accepted
    (identity-matched, delivered at most once; in-flight losses and
    dead-receiver drops release it), and a non-source node may only deliver
    a stream packet that arrived in a SERVE/PUSH datagram it received.

    Finalize checks: the session's :class:`~repro.metrics.delivery.DeliveryLog`
    must agree with the independently observed delivery edges node by node,
    and the quality analyzer must count a window as offline-decodable
    exactly when at least ``required_packets`` of its shards were delivered.
    """

    name = "packet-conservation"

    def bind(self, session: StreamingSession) -> None:
        super().bind(session)
        # Strong references on purpose: keeping accepted messages alive
        # until their fate resolves means id() cannot be reused while the
        # entry exists, making the identity check sound.
        self._in_flight: Dict[int, Message] = {}
        self._received_packets: Dict[NodeId, Set[PacketId]] = {}
        self._delivered: Dict[NodeId, Set[PacketId]] = {}

    def on_send_accepted(self, message: Message, now: float, finish_time: float) -> None:
        self._in_flight[id(message)] = message

    def on_in_flight_loss(self, message: Message, now: float) -> None:
        self._in_flight.pop(id(message), None)

    def on_delivery_dropped(self, message: Message, now: float) -> None:
        self._in_flight.pop(id(message), None)

    def on_delivered(self, message: Message, now: float) -> None:
        entry = self._in_flight.pop(id(message), None)
        if entry is not message:
            self.fail(
                f"{message.kind!r} datagram delivered to node {message.receiver} "
                "was never accepted from its sender (forged or double delivery)",
                sender=message.sender,
                receiver=message.receiver,
                kind=message.kind,
            )
        packet_id = _served_packet_id(message)
        if packet_id is not None:
            self._received_packets.setdefault(message.receiver, set()).add(packet_id)

    def on_packet_delivered(
        self, node_id: NodeId, packet_id: PacketId, time: float, is_source: bool
    ) -> None:
        delivered = self._delivered.setdefault(node_id, set())
        if packet_id in delivered:
            self.fail(
                f"node {node_id} reported packet {packet_id} as first-time delivered twice",
                node=node_id,
                packet=packet_id,
            )
        delivered.add(packet_id)
        if is_source:
            return
        if packet_id not in self._received_packets.get(node_id, ()):
            self.fail(
                f"node {node_id} delivered packet {packet_id} without ever "
                "receiving it in a SERVE/PUSH datagram",
                node=node_id,
                packet=packet_id,
            )

    def finalize(self, result: SessionResult) -> None:
        log = result.deliveries
        for node_id in [result.source_id] + result.receivers():
            observed = len(self._delivered.get(node_id, ()))
            recorded = log.packets_delivered(node_id)
            if observed != recorded:
                self.fail(
                    f"delivery log holds {recorded} packets for node {node_id} "
                    f"but {observed} first-time deliveries were observed",
                    node=node_id,
                )
        schedule = result.schedule
        per_window = schedule.config.packets_per_window
        num_packets = schedule.num_packets
        quality = result.quality()
        for node_id in result.survivors():
            counts = [0] * schedule.num_windows
            for packet_id in self._delivered.get(node_id, ()):
                if 0 <= packet_id < num_packets:
                    counts[packet_id // per_window] += 1
            for window in schedule.windows():
                decodable = counts[window.window_index] >= window.required_packets
                analyzed = quality.window_viewable(node_id, window.window_index, OFFLINE_LAG)
                if decodable != analyzed:
                    self.fail(
                        f"window {window.window_index} of node {node_id} has "
                        f"{counts[window.window_index]} delivered shards "
                        f"(required {window.required_packets}) but the analyzer "
                        f"counts it as {'decodable' if analyzed else 'not decodable'}",
                        node=node_id,
                        window=window.window_index,
                    )


class ProtocolConformance(Invariant):
    """Three-phase causality: PROPOSE before REQUEST before SERVE.

    Only attached when the session runs the paper's ``three-phase``
    protocol; one-phase push protocols serve unsolicited by design.
    """

    name = "protocol-conformance"

    @classmethod
    def applies_to(cls, session: StreamingSession) -> bool:
        return session.config.protocol == "three-phase"

    def bind(self, session: StreamingSession) -> None:
        super().bind(session)
        # Keyed (receiver of the earlier message, its sender): what `node`
        # has been proposed by / has requested from `peer`.
        self._proposed: Dict[Tuple[NodeId, NodeId], Set[PacketId]] = {}
        self._requested: Dict[Tuple[NodeId, NodeId], Set[PacketId]] = {}

    def on_delivered(self, message: Message, now: float) -> None:
        if message.kind == PROPOSE:
            self._proposed.setdefault(
                (message.receiver, message.sender), set()
            ).update(message.payload.packet_ids)
        elif message.kind == REQUEST:
            self._requested.setdefault(
                (message.receiver, message.sender), set()
            ).update(message.payload.packet_ids)

    def on_send_accepted(self, message: Message, now: float, finish_time: float) -> None:
        if message.kind == REQUEST:
            proposed = self._proposed.get((message.sender, message.receiver), set())
            unsolicited = [
                packet_id
                for packet_id in message.payload.packet_ids
                if packet_id not in proposed
            ]
            if unsolicited:
                self.fail(
                    f"node {message.sender} requested packets {unsolicited!r} from "
                    f"node {message.receiver}, which never proposed them",
                    requester=message.sender,
                    proposer=message.receiver,
                )
        elif message.kind == SERVE:
            packet_id = message.payload.packet.packet_id
            requested = self._requested.get((message.sender, message.receiver), set())
            if packet_id not in requested:
                self.fail(
                    f"node {message.sender} served packet {packet_id} to node "
                    f"{message.receiver} without a matching REQUEST",
                    server=message.sender,
                    requester=message.receiver,
                    packet=packet_id,
                )


class ChurnHygiene(Invariant):
    """Departed nodes fall silent: no sends, no handling, no deliveries."""

    name = "churn-hygiene"

    def bind(self, session: StreamingSession) -> None:
        super().bind(session)
        self._failed_at: Dict[NodeId, float] = {}

    def on_node_failed(self, node_id: NodeId, now: float) -> None:
        self._failed_at.setdefault(node_id, now)

    def on_node_recovered(self, node_id: NodeId, now: float) -> None:
        self._failed_at.pop(node_id, None)

    def on_send_accepted(self, message: Message, now: float, finish_time: float) -> None:
        failed_at = self._failed_at.get(message.sender)
        if failed_at is not None:
            self.fail(
                f"node {message.sender} (failed at t={failed_at:.3f}s) sent a "
                f"{message.kind!r} datagram at t={now:.3f}s",
                node=message.sender,
                kind=message.kind,
            )

    def on_delivered(self, message: Message, now: float) -> None:
        failed_at = self._failed_at.get(message.receiver)
        if failed_at is not None:
            self.fail(
                f"node {message.receiver} (failed at t={failed_at:.3f}s) handled a "
                f"{message.kind!r} datagram at t={now:.3f}s",
                node=message.receiver,
                kind=message.kind,
            )

    def on_packet_delivered(
        self, node_id: NodeId, packet_id: PacketId, time: float, is_source: bool
    ) -> None:
        failed_at = self._failed_at.get(node_id)
        if failed_at is not None:
            self.fail(
                f"node {node_id} (failed at t={failed_at:.3f}s) delivered packet "
                f"{packet_id} at t={time:.3f}s",
                node=node_id,
                packet=packet_id,
            )


DEFAULT_INVARIANTS: Tuple[type, ...] = (
    EventTimeMonotonicity,
    BandwidthCapCompliance,
    PacketConservation,
    ProtocolConformance,
    ChurnHygiene,
)
"""Every shipped checker, in attachment order."""


class InvariantSuite:
    """A set of invariants armed together on one streaming session."""

    def __init__(self, invariants: Sequence[Invariant]) -> None:
        self._invariants: List[Invariant] = list(invariants)
        self._attached: List[Invariant] = []
        self._session: Optional[StreamingSession] = None

    @classmethod
    def default(cls) -> "InvariantSuite":
        """Fresh instances of every shipped invariant."""
        return cls([factory() for factory in DEFAULT_INVARIANTS])

    @property
    def invariants(self) -> List[Invariant]:
        """The suite's checkers (attached or not)."""
        return list(self._invariants)

    @property
    def attached(self) -> List[Invariant]:
        """The checkers actually armed by :meth:`attach`."""
        return list(self._attached)

    def attach(self, session: StreamingSession) -> "InvariantSuite":
        """Bind and register every applicable checker on a built session.

        Attaching twice to the same session is a no-op (so a pre-attached
        suite can be handed to :func:`validate_session`); attaching to a
        *different* session is an error — the checkers carry per-session
        state and must not be shared.
        """
        if self._session is session:
            return self
        if self._session is not None:
            raise ValueError(
                "this InvariantSuite is already attached to another session; "
                "build a fresh suite per session"
            )
        if session.simulator is None:
            session.build()
        self._session = session
        for invariant in self._invariants:
            if not invariant.applies_to(session):
                continue
            invariant.bind(session)
            session.simulator.add_observer(invariant)
            session.network.add_observer(invariant)
            for node in session.nodes.values():
                node.add_observer(invariant)
            self._attached.append(invariant)
        return self

    def finalize(self, result: SessionResult) -> None:
        """Run every armed checker's end-of-session checks."""
        for invariant in self._attached:
            invariant.finalize(result)


def validate_session(
    session: StreamingSession, suite: Optional[InvariantSuite] = None
) -> SessionResult:
    """Run a session with invariants armed; raises on the first violation."""
    if session.simulator is None:
        session.build()
    suite = suite if suite is not None else InvariantSuite.default()
    suite.attach(session)
    result = session.run()
    suite.finalize(result)
    return result
