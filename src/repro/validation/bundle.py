"""Replayable repro bundles: a fuzzer failure as one self-contained JSON file.

A bundle freezes everything needed to re-run a failing fuzz case
deterministically: the campaign seed and case index it came from, the fully
serialized :class:`~repro.scenarios.spec.ScenarioSpec` (so the failure
replays even if the fuzzer's derivation ranges change later), the failing
invariant's name, the event index at which it fired, and the code
fingerprint of the tree that produced it (replays under different code are
reported, not trusted).

Spec serialization here is deliberately explicit rather than generic
pickling: bundles are meant to be read by humans, attached to bug reports,
and uploaded as CI artifacts, so every field is plain JSON.  Only the
schedule types the fuzzer generates (catastrophic/staggered churn, flash
crowd joins) are supported; serializing a spec holding an exotic schedule
raises instead of silently dropping the perturbation.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro.membership.churn import CatastrophicChurn, ChurnSchedule, StaggeredChurn
from repro.membership.join import FlashCrowdJoin, JoinSchedule
from repro.scenarios.spec import BandwidthClass, ScenarioSpec
from repro.streaming.schedule import StreamConfig
from repro.telemetry.config import TelemetryConfig

BUNDLE_FORMAT = "repro.validation.bundle/v1"


# ----------------------------------------------------------------------
# Spec <-> JSON
# ----------------------------------------------------------------------
def _churn_to_dict(schedule: Optional[ChurnSchedule]) -> Optional[Dict[str, Any]]:
    if schedule is None:
        return None
    if isinstance(schedule, CatastrophicChurn):
        return {"type": "catastrophic", "time": schedule.time, "fraction": schedule.fraction}
    if isinstance(schedule, StaggeredChurn):
        return {
            "type": "staggered",
            "start": schedule.start,
            "fraction": schedule.fraction,
            "batches": schedule.batches,
            "interval": schedule.interval,
        }
    raise ValueError(f"cannot serialize churn schedule {type(schedule).__name__}")


def _churn_from_dict(data: Optional[Dict[str, Any]]) -> Optional[ChurnSchedule]:
    if data is None:
        return None
    kind = data["type"]
    if kind == "catastrophic":
        return CatastrophicChurn(time=data["time"], fraction=data["fraction"])
    if kind == "staggered":
        return StaggeredChurn(
            start=data["start"],
            fraction=data["fraction"],
            batches=data["batches"],
            interval=data["interval"],
        )
    raise ValueError(f"unknown churn schedule type {kind!r}")


def _join_to_dict(schedule: Optional[JoinSchedule]) -> Optional[Dict[str, Any]]:
    if schedule is None:
        return None
    if isinstance(schedule, FlashCrowdJoin):
        return {"type": "flash-crowd", "time": schedule.time, "fraction": schedule.fraction}
    raise ValueError(f"cannot serialize join schedule {type(schedule).__name__}")


def _join_from_dict(data: Optional[Dict[str, Any]]) -> Optional[JoinSchedule]:
    if data is None:
        return None
    kind = data["type"]
    if kind == "flash-crowd":
        return FlashCrowdJoin(time=data["time"], fraction=data["fraction"])
    raise ValueError(f"unknown join schedule type {kind!r}")


def spec_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """A plain-JSON dictionary capturing every field of the spec."""
    data = asdict(spec)
    data["stream"] = asdict(spec.stream)
    data["bandwidth_classes"] = [asdict(cls) for cls in spec.bandwidth_classes]
    data["churn"] = _churn_to_dict(spec.churn)
    data["join"] = _join_to_dict(spec.join)
    data["telemetry"] = None if spec.telemetry is None else spec.telemetry.to_json_dict()
    # JSON has no inf; feed_me_every may be the INFINITE sentinel.
    if data["feed_me_every"] == float("inf"):
        data["feed_me_every"] = "inf"
    return data


def spec_from_dict(data: Dict[str, Any]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from :func:`spec_to_dict` output."""
    fields = dict(data)
    fields["stream"] = StreamConfig(**fields["stream"])
    fields["bandwidth_classes"] = tuple(
        BandwidthClass(**cls) for cls in fields.get("bandwidth_classes", ())
    )
    fields["churn"] = _churn_from_dict(fields.get("churn"))
    fields["join"] = _join_from_dict(fields.get("join"))
    telemetry = fields.get("telemetry")
    fields["telemetry"] = (
        None if telemetry is None else TelemetryConfig.from_json_dict(telemetry)
    )
    if fields.get("feed_me_every") == "inf":
        fields["feed_me_every"] = float("inf")
    return ScenarioSpec(**fields)


# ----------------------------------------------------------------------
# The bundle
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReproBundle:
    """One failing fuzz case, frozen for deterministic replay."""

    campaign_seed: int
    case_index: int
    spec: ScenarioSpec
    invariant: str
    event_index: int
    message: str
    code_fingerprint: str = ""
    format: str = field(default=BUNDLE_FORMAT)

    @property
    def case_id(self) -> str:
        """Stable identifier of the originating fuzz case."""
        return f"fuzz-{self.campaign_seed}-{self.case_index}"

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "format": self.format,
            "campaign_seed": self.campaign_seed,
            "case_index": self.case_index,
            "spec": spec_to_dict(self.spec),
            "invariant": self.invariant,
            "event_index": self.event_index,
            "message": self.message,
            "code_fingerprint": self.code_fingerprint,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "ReproBundle":
        fmt = data.get("format", "")
        if fmt != BUNDLE_FORMAT:
            raise ValueError(
                f"not a repro bundle (format {fmt!r}, expected {BUNDLE_FORMAT!r})"
            )
        return cls(
            campaign_seed=int(data["campaign_seed"]),
            case_index=int(data["case_index"]),
            spec=spec_from_dict(data["spec"]),
            invariant=str(data["invariant"]),
            event_index=int(data["event_index"]),
            message=str(data["message"]),
            code_fingerprint=str(data.get("code_fingerprint", "")),
        )

    def write(self, path) -> Path:
        """Serialize to ``path`` (parents created), returning the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_json_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path) -> "ReproBundle":
        """Read a bundle previously written with :meth:`write`."""
        return cls.from_json_dict(json.loads(Path(path).read_text(encoding="utf-8")))
