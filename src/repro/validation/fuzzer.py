"""FoundationDB-style scenario fuzzing on top of deterministic simulation.

The :class:`ScenarioFuzzer` derives random-but-valid
:class:`~repro.scenarios.spec.ScenarioSpec`s from a campaign seed — every
knob drawn from paper-plausible ranges (fanout, upload caps, loss, latency
models, churn, flash crowds, both protocols) — and runs each one with the
full :class:`~repro.validation.invariants.InvariantSuite` armed.  Because
case derivation is seeded and the simulation itself derives every draw from
the spec's seed through named RNG streams, a failing case is a pure function
of ``(campaign seed, index)``: the fuzzer freezes it into a
:class:`~repro.validation.bundle.ReproBundle` and :func:`replay_bundle`
re-runs it to the same invariant at the same event index.

Campaigns fan out across worker processes exactly like experiment sweeps
(:mod:`repro.sweep.executor`): each case is independent, workers return
compact picklable :class:`FuzzOutcome` records in completion order, and the
driver reassembles them in case order.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional

from repro.membership.churn import CatastrophicChurn
from repro.membership.join import FlashCrowdJoin
from repro.membership.partners import INFINITE
from repro.scenarios.builder import build_session
from repro.scenarios.spec import ScenarioSpec
from repro.streaming.schedule import StreamConfig
from repro.sweep.store import code_fingerprint

from repro.validation.bundle import ReproBundle
from repro.validation.invariants import InvariantViolation, validate_session

PROTOCOL_CHOICES = ("three-phase", "three-phase", "three-phase", "eager-push")
"""Drawn uniformly: the paper's protocol dominates, the baseline still airs."""

CAP_CHOICES_KBPS = (500.0, 700.0, 1000.0, 2000.0, None)
"""The paper's PlanetLab cap levels plus the uncapped baseline."""

LOSS_CHOICES = (0.0, 0.01, 0.05)
LATENCY_MODELS = ("constant", "uniform", "lognormal", "per-node")


@dataclass(frozen=True)
class FuzzCase:
    """One derived case: its coordinates plus the spec they expand to."""

    campaign_seed: int
    index: int
    spec: ScenarioSpec

    @property
    def case_id(self) -> str:
        return f"fuzz-{self.campaign_seed}-{self.index}"


@dataclass(frozen=True)
class FuzzOutcome:
    """The (picklable) result of running one fuzz case."""

    campaign_seed: int
    index: int
    spec_summary: str
    ok: bool
    events_processed: int = 0
    invariant: str = ""
    event_index: int = -1
    message: str = ""

    @property
    def case_id(self) -> str:
        return f"fuzz-{self.campaign_seed}-{self.index}"


class ScenarioFuzzer:
    """Derives and runs seeded random scenarios with invariants armed.

    Parameters
    ----------
    campaign_seed:
        Root seed of the campaign; case ``i`` is a pure function of
        ``(campaign_seed, i)`` and nothing else.
    max_nodes:
        Upper bound on derived system sizes (runtime knob for CI budgets).
    """

    def __init__(self, campaign_seed: int, max_nodes: int = 40) -> None:
        if max_nodes < 15:
            raise ValueError(f"max_nodes must be >= 15, got {max_nodes!r}")
        self.campaign_seed = campaign_seed
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    # Case derivation
    # ------------------------------------------------------------------
    def derive_case(self, index: int) -> FuzzCase:
        """Expand case ``index`` into a concrete, validated scenario spec.

        String seeding of :class:`random.Random` is SHA-512 based and
        stable across processes and Python versions, so workers and drivers
        derive identical cases.
        """
        rng = random.Random(f"repro-fuzz:{self.campaign_seed}:{index}")
        stream = StreamConfig.scaled_down(num_windows=rng.randint(4, 8))
        churn = None
        join = None
        perturbation = rng.random()
        if perturbation < 0.35:
            churn = CatastrophicChurn(
                time=stream.duration * rng.uniform(0.3, 0.7),
                fraction=rng.uniform(0.1, 0.5),
            )
        elif perturbation < 0.60:
            join = FlashCrowdJoin(
                time=stream.duration * rng.uniform(0.3, 0.6),
                fraction=rng.uniform(0.2, 0.5),
            )
        spec = ScenarioSpec(
            name=f"fuzz-{self.campaign_seed}-{index}",
            description="randomized paper-plausible scenario (repro.validation fuzzer)",
            num_nodes=rng.randint(15, self.max_nodes),
            seed=rng.randrange(2**31),
            protocol=rng.choice(PROTOCOL_CHOICES),
            fanout=rng.randint(3, 10),
            gossip_period=0.2,
            refresh_every=rng.choice((1, 2, 4)),
            feed_me_every=rng.choice((INFINITE, 5, 10)),
            retransmit_timeout=rng.uniform(1.0, 3.0),
            max_request_attempts=rng.randint(1, 3),
            source_fanout=rng.randint(3, 10),
            stream=stream,
            upload_cap_kbps=rng.choice(CAP_CHOICES_KBPS),
            max_backlog_seconds=rng.choice((5.0, 10.0)),
            latency_model=rng.choice(LATENCY_MODELS),
            base_latency=rng.uniform(0.02, 0.1),
            random_loss=rng.choice(LOSS_CHOICES),
            churn=churn,
            join=join,
            source_uncapped=True,
            extra_time=rng.uniform(10.0, 20.0),
        )
        return FuzzCase(campaign_seed=self.campaign_seed, index=index, spec=spec)

    def cases(self, count: int) -> List[FuzzCase]:
        """The campaign's first ``count`` cases, in index order."""
        return [self.derive_case(index) for index in range(count)]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_case(self, index: int) -> FuzzOutcome:
        """Run one case with every applicable invariant armed."""
        case = self.derive_case(index)
        return run_fuzz_case(case)

    def run_campaign(
        self,
        count: int,
        jobs: int = 1,
        bundle_dir=None,
        progress: Optional[Callable[[FuzzOutcome], None]] = None,
    ) -> List[FuzzOutcome]:
        """Run ``count`` cases (optionally on ``jobs`` workers), in index order.

        Every failing case is frozen into a repro bundle under
        ``bundle_dir`` (if given) as ``<case_id>.json``.  ``progress`` is
        invoked per completed case, in completion order.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count!r}")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        outcomes: List[Optional[FuzzOutcome]] = [None] * count
        if jobs == 1 or count <= 1:
            for index in range(count):
                outcome = self.run_case(index)
                outcomes[index] = outcome
                if progress is not None:
                    progress(outcome)
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {
                    pool.submit(_worker, self.campaign_seed, self.max_nodes, index): index
                    for index in range(count)
                }
                for future in as_completed(futures):
                    outcome = future.result()
                    outcomes[outcome.index] = outcome
                    if progress is not None:
                        progress(outcome)
        completed = [outcome for outcome in outcomes if outcome is not None]
        if bundle_dir is not None:
            for outcome in completed:
                if not outcome.ok:
                    self.write_bundle(outcome, bundle_dir)
        return completed

    def write_bundle(self, outcome: FuzzOutcome, bundle_dir) -> Path:
        """Freeze a failing outcome into ``<bundle_dir>/<case_id>.json``."""
        if outcome.ok:
            raise ValueError(f"case {outcome.case_id} passed; nothing to bundle")
        case = self.derive_case(outcome.index)
        bundle = ReproBundle(
            campaign_seed=self.campaign_seed,
            case_index=outcome.index,
            spec=case.spec,
            invariant=outcome.invariant,
            event_index=outcome.event_index,
            message=outcome.message,
            code_fingerprint=code_fingerprint(),
        )
        return bundle.write(Path(bundle_dir) / f"{outcome.case_id}.json")


def run_fuzz_case(case: FuzzCase) -> FuzzOutcome:
    """Run one derived case; invariant violations become failed outcomes."""
    summary = case.spec.describe()
    try:
        result = validate_session(build_session(case.spec))
    except InvariantViolation as violation:
        return FuzzOutcome(
            campaign_seed=case.campaign_seed,
            index=case.index,
            spec_summary=summary,
            ok=False,
            invariant=violation.invariant,
            event_index=violation.event_index,
            message=str(violation),
        )
    return FuzzOutcome(
        campaign_seed=case.campaign_seed,
        index=case.index,
        spec_summary=summary,
        ok=True,
        events_processed=result.events_processed,
    )


def _worker(campaign_seed: int, max_nodes: int, index: int) -> FuzzOutcome:
    return ScenarioFuzzer(campaign_seed, max_nodes=max_nodes).run_case(index)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayReport:
    """What re-running a repro bundle produced."""

    bundle: ReproBundle
    reproduced: bool
    matched: bool
    fingerprint_matched: bool
    invariant: str = ""
    event_index: int = -1
    message: str = ""

    def describe(self) -> str:
        if not self.reproduced:
            return (
                f"{self.bundle.case_id}: NOT reproduced — the session completed "
                "with every invariant holding"
            )
        status = "exact match" if self.matched else (
            f"DIFFERENT failure (got {self.invariant!r} at event {self.event_index}, "
            f"expected {self.bundle.invariant!r} at event {self.bundle.event_index})"
        )
        note = "" if self.fingerprint_matched else " [code fingerprint differs from bundle]"
        return f"{self.bundle.case_id}: reproduced — {status}{note}"


def replay_bundle(bundle_or_path) -> ReplayReport:
    """Re-run a repro bundle's frozen spec with invariants armed.

    The replay is deterministic: with the code unchanged, the same
    invariant fails at the same event index.  Under different code the
    report still replays but flags the fingerprint mismatch.
    """
    bundle = (
        bundle_or_path
        if isinstance(bundle_or_path, ReproBundle)
        else ReproBundle.load(bundle_or_path)
    )
    fingerprint_matched = bundle.code_fingerprint == code_fingerprint()
    try:
        validate_session(build_session(bundle.spec))
    except InvariantViolation as violation:
        return ReplayReport(
            bundle=bundle,
            reproduced=True,
            matched=(
                violation.invariant == bundle.invariant
                and violation.event_index == bundle.event_index
            ),
            fingerprint_matched=fingerprint_matched,
            invariant=violation.invariant,
            event_index=violation.event_index,
            message=str(violation),
        )
    return ReplayReport(
        bundle=bundle,
        reproduced=False,
        matched=False,
        fingerprint_matched=fingerprint_matched,
    )
