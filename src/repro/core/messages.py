"""Protocol message payloads.

Algorithm 1 exchanges three message types plus the optional feed-me request
used by the ``Y`` proactiveness mechanism:

* ``[PROPOSE, event ids]`` — phase 1, push of packet ids;
* ``[REQUEST, wanted ids]`` — phase 2, pull of missing packets;
* ``[SERVE, events]`` — phase 3, push of the actual packet payloads;
* ``[FEED_ME]`` — a request to be inserted into the receiver's partner set.

The network layer only sees opaque payloads with a ``kind`` string and a wire
size; these dataclasses are the typed payloads the protocol puts inside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.streaming.packets import PacketId

PROPOSE = "propose"
"""Message kind tag for phase-1 id announcements."""

REQUEST = "request"
"""Message kind tag for phase-2 pulls."""

SERVE = "serve"
"""Message kind tag for phase-3 payload pushes."""

FEED_ME = "feed-me"
"""Message kind tag for the Y-mechanism view-insertion requests."""


@dataclass(frozen=True, slots=True)
class ProposePayload:
    """Phase 1: the sender advertises packet ids it can serve."""

    packet_ids: Tuple[PacketId, ...]

    def __post_init__(self) -> None:
        if not self.packet_ids:
            raise ValueError("a PROPOSE must advertise at least one packet id")

    def __len__(self) -> int:
        return len(self.packet_ids)


@dataclass(frozen=True, slots=True)
class RequestPayload:
    """Phase 2: the sender pulls the packets it is missing."""

    packet_ids: Tuple[PacketId, ...]

    def __post_init__(self) -> None:
        if not self.packet_ids:
            raise ValueError("a REQUEST must ask for at least one packet id")

    def __len__(self) -> int:
        return len(self.packet_ids)


@dataclass(frozen=True, slots=True)
class ServedPacket:
    """One stream packet carried inside a SERVE message.

    The simulator normally carries no payload bytes (``payload is None``) and
    only tracks sizes; end-to-end examples using the real FEC codec set
    ``payload`` to the encoded shard.
    """

    packet_id: PacketId
    size_bytes: int
    payload: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"served packet size must be positive, got {self.size_bytes!r}")


@dataclass(frozen=True, slots=True)
class ServePayload:
    """Phase 3: the actual packet content."""

    packet: ServedPacket


@dataclass(frozen=True, slots=True)
class FeedMePayload:
    """Ask the receiver to insert the sender into its partner view."""

    requester: int

    def __post_init__(self) -> None:
        if self.requester < 0:
            raise ValueError("requester id must be non-negative")
