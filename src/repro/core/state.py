"""Per-node protocol state.

Mirrors the sets of Algorithm 1:

* ``eventsDelivered`` → :attr:`NodeState.delivered` (with delivery times, so
  the metrics layer can compute lag without extra bookkeeping);
* ``eventsToPropose`` → :attr:`NodeState.events_to_propose` (infect-and-die:
  cleared after each gossip round);
* ``requestedEvents`` → :attr:`NodeState.request_attempts` (we keep a count,
  not just membership, to enforce the ``K``-attempts retransmission bound).

:class:`PendingRequest` tracks one armed retransmission timer: the proposal
it came from and which packets it may still re-request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.network.message import NodeId
from repro.simulation.timers import Timer
from repro.streaming.packets import PacketId


@dataclass(slots=True)
class PendingRequest:
    """An armed retransmission: re-ask ``proposer`` for still-missing packets."""

    proposer: NodeId
    packet_ids: Tuple[PacketId, ...]
    timer: Optional[Timer] = None
    retries_sent: int = 0

    def cancel(self) -> None:
        """Disarm the retransmission timer."""
        if self.timer is not None:
            self.timer.cancel()


@dataclass(slots=True)
class NodeState:
    """Mutable protocol state of one gossip node."""

    delivered: Dict[PacketId, float] = field(default_factory=dict)
    events_to_propose: List[PacketId] = field(default_factory=list)
    request_attempts: Dict[PacketId, int] = field(default_factory=dict)
    pending_requests: List[PendingRequest] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def has_delivered(self, packet_id: PacketId) -> bool:
        """Whether the packet has already been delivered to this node."""
        return packet_id in self.delivered

    def deliver(self, packet_id: PacketId, time: float) -> bool:
        """Record delivery; returns ``False`` if it was a duplicate."""
        if packet_id in self.delivered:
            return False
        self.delivered[packet_id] = time
        return True

    def delivery_time(self, packet_id: PacketId) -> Optional[float]:
        """When the packet was delivered, or ``None`` if it never was."""
        return self.delivered.get(packet_id)

    @property
    def delivered_count(self) -> int:
        """Number of distinct packets delivered so far."""
        return len(self.delivered)

    # ------------------------------------------------------------------
    # Proposal queue (infect-and-die)
    # ------------------------------------------------------------------
    def queue_for_proposal(self, packet_id: PacketId) -> None:
        """Add a freshly delivered packet to the next round's proposal."""
        self.events_to_propose.append(packet_id)

    def drain_proposals(self) -> List[PacketId]:
        """Return and clear the pending proposal ids (one gossip round)."""
        drained = self.events_to_propose
        self.events_to_propose = []
        return drained

    # ------------------------------------------------------------------
    # Request bookkeeping
    # ------------------------------------------------------------------
    def times_requested(self, packet_id: PacketId) -> int:
        """How many REQUESTs this node has sent for the packet so far."""
        return self.request_attempts.get(packet_id, 0)

    def record_request(self, packet_id: PacketId) -> None:
        """Count one REQUEST sent for the packet."""
        self.request_attempts[packet_id] = self.request_attempts.get(packet_id, 0) + 1

    def never_requested(self, packet_id: PacketId) -> bool:
        """Whether the packet has not been requested yet (Algorithm 1, line 10)."""
        return packet_id not in self.request_attempts

    def may_request_again(self, packet_id: PacketId, max_attempts: int) -> bool:
        """Whether another REQUEST for the packet stays within the ``K`` bound."""
        return self.times_requested(packet_id) < max_attempts

    # ------------------------------------------------------------------
    # Retransmission bookkeeping
    # ------------------------------------------------------------------
    def add_pending(self, pending: PendingRequest) -> None:
        """Track an armed retransmission."""
        self.pending_requests.append(pending)

    def remove_pending(self, pending: PendingRequest) -> None:
        """Forget a retransmission that fired or was cancelled."""
        try:
            self.pending_requests.remove(pending)
        except ValueError:
            pass

    def cancel_all_pending(self) -> None:
        """Disarm every retransmission timer (node shutdown)."""
        for pending in self.pending_requests:
            pending.cancel()
        self.pending_requests.clear()

    def missing_from(self, packet_ids: Tuple[PacketId, ...]) -> List[PacketId]:
        """The subset of ``packet_ids`` not yet delivered."""
        return [packet_id for packet_id in packet_ids if packet_id not in self.delivered]

    def delivered_set(self) -> Set[PacketId]:
        """A snapshot of all delivered packet ids."""
        return set(self.delivered)
