"""The gossip node host: timers, state, partner selection and network I/O.

A :class:`GossipNode` owns the per-node machinery and talks to three
substrates:

* the **network** (:class:`repro.network.Network`) to send datagrams and to
  receive them via :meth:`on_message`;
* the **membership directory** through its :class:`PartnerSelector`, which
  implements the fanout and the view refresh rate ``X``;
* the **stream schedule**, used to look up packet sizes when serving.

What the node actually *sends* is decided by a pluggable
:class:`~repro.protocols.base.DisseminationProtocol` strategy: the host fires
its hooks at every timer tick, publication and message arrival, passing along
any randomness it has already drawn (partner sets, source targets).  The
default strategy is the paper's :class:`~repro.protocols.ThreePhaseGossip`
(Algorithm 1); alternatives such as eager push plug in without touching this
class.

The same class plays both roles of the paper's deployment: ordinary nodes
(driven by their gossip timer) and the source (whose :meth:`publish` is
called by the :class:`repro.streaming.StreamEmitter` for every packet, as
``publish(e)`` in Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.membership.directory import MembershipDirectory
from repro.membership.partners import INFINITE, PartnerSelector
from repro.network.message import Message, NodeId
from repro.network.transport import Network
from repro.protocols.base import DisseminationProtocol
from repro.simulation.timers import PeriodicTimer
from repro.streaming.packets import PacketDescriptor, PacketId
from repro.streaming.schedule import StreamSchedule

from repro.core.config import GossipConfig
from repro.core.host import Host
from repro.core.state import NodeState

DeliveryListener = Callable[[NodeId, PacketId, float], None]
"""Callback invoked on every first-time packet delivery (node, packet, time)."""


@dataclass(slots=True)
class NodeStats:
    """Protocol-level counters of one node (all monotonically increasing)."""

    proposes_sent: int = 0
    proposals_received: int = 0
    requests_sent: int = 0
    requests_received: int = 0
    serves_sent: int = 0
    packets_served: int = 0
    retransmission_requests_sent: int = 0
    feed_me_sent: int = 0
    feed_me_received: int = 0
    duplicate_serves_received: int = 0
    gossip_rounds: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dictionary (handy for reports and tests)."""
        return {
            "proposes_sent": self.proposes_sent,
            "proposals_received": self.proposals_received,
            "requests_sent": self.requests_sent,
            "requests_received": self.requests_received,
            "serves_sent": self.serves_sent,
            "packets_served": self.packets_served,
            "retransmission_requests_sent": self.retransmission_requests_sent,
            "feed_me_sent": self.feed_me_sent,
            "feed_me_received": self.feed_me_received,
            "duplicate_serves_received": self.duplicate_serves_received,
            "gossip_rounds": self.gossip_rounds,
        }


class GossipNode:
    """One participant of the gossip-based streaming system.

    Parameters
    ----------
    node_id:
        This node's identifier (must be registered on the network).
    simulator / network / directory / schedule:
        The substrates the node runs on.
    config:
        Protocol knobs (fanout, period, X, Y, retransmission, sizes).
    delivery_listener:
        Optional callback invoked at every first-time packet delivery; the
        metrics layer uses it to build the delivery log.
    is_source:
        Whether this node is the stream source.  The source delivers packets
        through :meth:`publish` and hands each one immediately to the
        protocol with ``config.source_fanout`` random targets.
    protocol:
        The dissemination strategy.  ``None`` (the default) instantiates the
        paper's :class:`~repro.protocols.ThreePhaseGossip`.  The instance is
        bound to this node and must not be shared across nodes.
    """

    def __init__(
        self,
        node_id: NodeId,
        simulator: Host,
        network: Network,
        directory: MembershipDirectory,
        schedule: StreamSchedule,
        config: GossipConfig,
        delivery_listener: Optional[DeliveryListener] = None,
        is_source: bool = False,
        protocol: Optional[DisseminationProtocol] = None,
    ) -> None:
        self.node_id = node_id
        self.is_source = is_source
        self.config = config
        self._simulator = simulator
        self._network = network
        self._directory = directory
        self._schedule = schedule
        self._delivery_listener = delivery_listener
        self.state = NodeState()
        self.stats = NodeStats()
        self._alive = True
        self._observers: Optional[List[Any]] = None

        if protocol is None:
            from repro.protocols.three_phase import ThreePhaseGossip

            protocol = ThreePhaseGossip()
        self.protocol = protocol

        self._partner_rng = simulator.rng.node_stream("partners", node_id)
        self._partners = PartnerSelector(
            node_id=node_id,
            directory=directory,
            fanout=config.fanout,
            refresh_every=config.refresh_every,
            rng=self._partner_rng,
        )
        # The source proposes every packet to ``source_fanout`` nodes; its
        # target set obeys the same view refresh rate X as everybody else's
        # (Algorithm 1 routes publish() through the same selectNodes()).
        self._source_selector: Optional[PartnerSelector] = None
        self._source_round_index = -1
        self._source_targets: List[NodeId] = []
        if is_source:
            self._source_selector = PartnerSelector(
                node_id=node_id,
                directory=directory,
                fanout=config.source_fanout,
                refresh_every=config.refresh_every,
                rng=simulator.rng.node_stream("source-targets", node_id),
            )

        start_delay: Optional[float]
        if config.desynchronize_rounds:
            start_delay = simulator.rng.node_stream("round-phase", node_id).uniform(
                0.0, config.gossip_period
            )
        else:
            start_delay = config.gossip_period
        self._gossip_timer = PeriodicTimer(
            simulator, config.gossip_period, self._on_gossip_round, start_delay=start_delay
        )

        self._feed_me_timer: Optional[PeriodicTimer] = None
        if config.feed_me_every != INFINITE:
            feed_me_period = config.feed_me_every * config.gossip_period
            self._feed_me_timer = PeriodicTimer(
                simulator, feed_me_period, self._on_feed_me_round, start_delay=feed_me_period
            )

        # Bind last: strategies may inspect the full ProtocolHost surface
        # (partners, timers) from an overridden bind().
        protocol.bind(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the node is still running (it has not been crashed)."""
        return self._alive

    @property
    def partners(self) -> PartnerSelector:
        """This node's partner selector (exposed for tests and experiments)."""
        return self._partners

    @property
    def simulator(self) -> Host:
        """The host this node runs on (exposed for protocol strategies).

        A :class:`~repro.simulation.engine.Simulator` in simulated runs, an
        :class:`~repro.realnet.host.AsyncioHost` on the real backend — the
        node only relies on the :class:`~repro.core.host.Host` surface.
        """
        return self._simulator

    @property
    def now(self) -> float:
        """Current time on the host's time axis."""
        return self._simulator.now

    @property
    def schedule(self) -> StreamSchedule:
        """The stream schedule (packet sizes and publish times)."""
        return self._schedule

    def start(self) -> None:
        """Start the node's timers.  Must be called once per experiment."""
        self._gossip_timer.start()
        if self._feed_me_timer is not None:
            self._feed_me_timer.start()

    def fail(self) -> None:
        """Crash the node: stop all activity immediately (churn)."""
        self._alive = False
        self._gossip_timer.stop()
        if self._feed_me_timer is not None:
            self._feed_me_timer.stop()
        self.protocol.on_fail()
        self.state.cancel_all_pending()

    # ------------------------------------------------------------------
    # Source role
    # ------------------------------------------------------------------
    def publish(self, descriptor: PacketDescriptor) -> None:
        """Publish one stream packet (Algorithm 1, ``publish(e)``).

        The packet is delivered locally and handed to the protocol together
        with ``source_fanout`` uniformly random target nodes.
        """
        if not self._alive:
            return
        now = self._simulator.now
        self.deliver(descriptor.packet_id, now)
        targets = self._pick_source_targets(now)
        self.protocol.on_publish(descriptor, targets, now)

    def _pick_source_targets(self, now: float) -> List[NodeId]:
        if self._source_selector is None:
            return []
        round_index = int(now / self.config.gossip_period)
        if round_index != self._source_round_index:
            self._source_round_index = round_index
            self._source_targets = self._source_selector.partners_for_round(now)
        return list(self._source_targets)

    # ------------------------------------------------------------------
    # Timer ticks
    # ------------------------------------------------------------------
    def _on_gossip_round(self) -> None:
        if not self._alive:
            return
        now = self._simulator.now
        self.stats.gossip_rounds += 1
        partners = self._partners.partners_for_round(now)
        if self._observers is not None:
            for observer in self._observers:
                observer.on_gossip_round(self.node_id, now, partners)
        self.protocol.on_gossip_round(now, partners)

    def _on_feed_me_round(self) -> None:
        if not self._alive:
            return
        now = self._simulator.now
        targets = self._partners.pick_feed_me_targets(now)
        if self._observers is not None:
            for observer in self._observers:
                observer.on_feed_me_round(self.node_id, now, targets)
        self.protocol.on_feed_me_round(now, targets)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        """Entry point called by the network when a datagram is delivered."""
        if not self._alive:
            return
        self.protocol.on_message(message)

    # ------------------------------------------------------------------
    # Services offered to the protocol strategy
    # ------------------------------------------------------------------
    def add_observer(self, observer: Any) -> None:
        """Register a node observer.

        ``observer.on_packet_delivered(node_id, packet_id, time, is_source)``
        fires on every *first-time* delivery, before the delivery listener
        (see :class:`repro.validation.observers.DeliveryObserver`), and
        ``on_gossip_round`` / ``on_feed_me_round`` fire at every protocol
        timer tick (:class:`repro.validation.observers.ProtocolObserver`) —
        observers must implement all three, typically by subclassing
        :class:`~repro.validation.observers.SessionObserver`.  With no
        observers each edge pays one ``is None`` test.
        """
        if self._observers is None:
            self._observers = []
        self._observers.append(observer)

    def remove_observer(self, observer: Any) -> None:
        """Unregister a delivery observer (restores the zero-cost path)."""
        if self._observers is not None:
            self._observers.remove(observer)
            if not self._observers:
                self._observers = None

    def deliver(self, packet_id: PacketId, time: float) -> None:
        """Record a first-time delivery and notify the delivery listener."""
        if not self.state.deliver(packet_id, time):
            return
        if self._observers is not None:
            for observer in self._observers:
                observer.on_packet_delivered(self.node_id, packet_id, time, self.is_source)
        if self._delivery_listener is not None:
            self._delivery_listener(self.node_id, packet_id, time)

    def send(self, receiver: NodeId, kind: str, size_bytes: int, payload: object) -> None:
        """Send a datagram from this node through the network substrate."""
        message = Message(
            sender=self.node_id,
            receiver=receiver,
            kind=kind,
            size_bytes=size_bytes,
            payload=payload,
        )
        self._network.send(message)

    def send_many(self, datagrams: Sequence[Tuple[NodeId, str, int, object]]) -> None:
        """Send several datagrams at this instant in one transport batch.

        ``datagrams`` holds ``(receiver, kind, size_bytes, payload)`` tuples;
        equivalent to calling :meth:`send` for each in order (the transport
        batch preserves the per-message loss/latency draw order and delivery
        scheduling), but the sender-side bookkeeping is amortized over the
        burst.  Protocol fan-outs are the intended callers.
        """
        sender = self.node_id
        self._network.send_many(
            [
                Message(sender=sender, receiver=receiver, kind=kind,
                        size_bytes=size_bytes, payload=payload)
                for receiver, kind, size_bytes, payload in datagrams
            ]
        )

    def send_to_all(
        self, targets: Sequence[NodeId], kind: str, size_bytes: int, payload: object
    ) -> None:
        """Fan one payload out to every target in a single transport batch."""
        sender = self.node_id
        self._network.send_many(
            [
                Message(sender=sender, receiver=target, kind=kind,
                        size_bytes=size_bytes, payload=payload)
                for target in targets
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        role = "source" if self.is_source else "node"
        return (
            f"GossipNode({role} {self.node_id}, protocol={self.protocol.name}, "
            f"delivered={self.state.delivered_count}, alive={self._alive})"
        )
