"""The gossip node engine: Algorithm 1, one instance per node.

A :class:`GossipNode` owns the per-node protocol state and timers and talks
to three substrates:

* the **network** (:class:`repro.network.Network`) to send PROPOSE / REQUEST /
  SERVE / FEED_ME datagrams and to receive them via :meth:`on_message`;
* the **membership directory** through its :class:`PartnerSelector`, which
  implements the fanout and the view refresh rate ``X``;
* the **stream schedule**, used to look up packet sizes when serving.

The same class plays both roles of the paper's deployment: ordinary nodes
(driven by their gossip timer) and the source (whose :meth:`publish` is
called by the :class:`repro.streaming.StreamEmitter` for every packet, as
``publish(e)`` in Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.membership.directory import MembershipDirectory
from repro.membership.partners import INFINITE, PartnerSelector
from repro.network.message import Message, NodeId
from repro.network.transport import Network
from repro.simulation.engine import Simulator
from repro.simulation.timers import PeriodicTimer, Timer
from repro.streaming.packets import PacketDescriptor, PacketId
from repro.streaming.schedule import StreamSchedule

from repro.core.config import GossipConfig
from repro.core.messages import (
    FEED_ME,
    PROPOSE,
    REQUEST,
    SERVE,
    FeedMePayload,
    ProposePayload,
    RequestPayload,
    ServePayload,
    ServedPacket,
)
from repro.core.state import NodeState, PendingRequest

DeliveryListener = Callable[[NodeId, PacketId, float], None]
"""Callback invoked on every first-time packet delivery (node, packet, time)."""


@dataclass
class NodeStats:
    """Protocol-level counters of one node (all monotonically increasing)."""

    proposes_sent: int = 0
    proposals_received: int = 0
    requests_sent: int = 0
    requests_received: int = 0
    serves_sent: int = 0
    packets_served: int = 0
    retransmission_requests_sent: int = 0
    feed_me_sent: int = 0
    feed_me_received: int = 0
    duplicate_serves_received: int = 0
    gossip_rounds: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Counters as a plain dictionary (handy for reports and tests)."""
        return {
            "proposes_sent": self.proposes_sent,
            "proposals_received": self.proposals_received,
            "requests_sent": self.requests_sent,
            "requests_received": self.requests_received,
            "serves_sent": self.serves_sent,
            "packets_served": self.packets_served,
            "retransmission_requests_sent": self.retransmission_requests_sent,
            "feed_me_sent": self.feed_me_sent,
            "feed_me_received": self.feed_me_received,
            "duplicate_serves_received": self.duplicate_serves_received,
            "gossip_rounds": self.gossip_rounds,
        }


class GossipNode:
    """One participant of the gossip-based streaming system.

    Parameters
    ----------
    node_id:
        This node's identifier (must be registered on the network).
    simulator / network / directory / schedule:
        The substrates the node runs on.
    config:
        Protocol knobs (fanout, period, X, Y, retransmission, sizes).
    delivery_listener:
        Optional callback invoked at every first-time packet delivery; the
        metrics layer uses it to build the delivery log.
    is_source:
        Whether this node is the stream source.  The source delivers packets
        through :meth:`publish` and proposes each one immediately to
        ``config.source_fanout`` random nodes.
    """

    def __init__(
        self,
        node_id: NodeId,
        simulator: Simulator,
        network: Network,
        directory: MembershipDirectory,
        schedule: StreamSchedule,
        config: GossipConfig,
        delivery_listener: Optional[DeliveryListener] = None,
        is_source: bool = False,
    ) -> None:
        self.node_id = node_id
        self.is_source = is_source
        self.config = config
        self._simulator = simulator
        self._network = network
        self._directory = directory
        self._schedule = schedule
        self._delivery_listener = delivery_listener
        self.state = NodeState()
        self.stats = NodeStats()
        self._alive = True

        self._partner_rng = simulator.rng.node_stream("partners", node_id)
        self._partners = PartnerSelector(
            node_id=node_id,
            directory=directory,
            fanout=config.fanout,
            refresh_every=config.refresh_every,
            rng=self._partner_rng,
        )
        # The source proposes every packet to ``source_fanout`` nodes; its
        # target set obeys the same view refresh rate X as everybody else's
        # (Algorithm 1 routes publish() through the same selectNodes()).
        self._source_selector: Optional[PartnerSelector] = None
        self._source_round_index = -1
        self._source_targets: List[NodeId] = []
        if is_source:
            self._source_selector = PartnerSelector(
                node_id=node_id,
                directory=directory,
                fanout=config.source_fanout,
                refresh_every=config.refresh_every,
                rng=simulator.rng.node_stream("source-targets", node_id),
            )

        start_delay: Optional[float]
        if config.desynchronize_rounds:
            start_delay = simulator.rng.node_stream("round-phase", node_id).uniform(
                0.0, config.gossip_period
            )
        else:
            start_delay = config.gossip_period
        self._gossip_timer = PeriodicTimer(
            simulator, config.gossip_period, self._on_gossip_round, start_delay=start_delay
        )

        self._feed_me_timer: Optional[PeriodicTimer] = None
        if config.feed_me_every != INFINITE:
            feed_me_period = config.feed_me_every * config.gossip_period
            self._feed_me_timer = PeriodicTimer(
                simulator, feed_me_period, self._on_feed_me_round, start_delay=feed_me_period
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """Whether the node is still running (it has not been crashed)."""
        return self._alive

    @property
    def partners(self) -> PartnerSelector:
        """This node's partner selector (exposed for tests and experiments)."""
        return self._partners

    def start(self) -> None:
        """Start the node's timers.  Must be called once per experiment."""
        self._gossip_timer.start()
        if self._feed_me_timer is not None:
            self._feed_me_timer.start()

    def fail(self) -> None:
        """Crash the node: stop all activity immediately (churn)."""
        self._alive = False
        self._gossip_timer.stop()
        if self._feed_me_timer is not None:
            self._feed_me_timer.stop()
        self.state.cancel_all_pending()

    # ------------------------------------------------------------------
    # Source role
    # ------------------------------------------------------------------
    def publish(self, descriptor: PacketDescriptor) -> None:
        """Publish one stream packet (Algorithm 1, ``publish(e)``).

        The packet is delivered locally and its id proposed immediately to
        ``source_fanout`` uniformly random nodes.
        """
        if not self._alive:
            return
        now = self._simulator.now
        self._deliver(descriptor.packet_id, now)
        targets = self._pick_source_targets(now)
        if not targets:
            return
        payload = ProposePayload(packet_ids=(descriptor.packet_id,))
        size = self.config.sizes.propose_size(1)
        for target in targets:
            self._send(target, PROPOSE, size, payload)
        self.stats.proposes_sent += len(targets)

    def _pick_source_targets(self, now: float) -> List[NodeId]:
        if self._source_selector is None:
            return []
        round_index = int(now / self.config.gossip_period)
        if round_index != self._source_round_index:
            self._source_round_index = round_index
            self._source_targets = self._source_selector.partners_for_round(now)
        return list(self._source_targets)

    # ------------------------------------------------------------------
    # Gossip round (phase 1: push ids)
    # ------------------------------------------------------------------
    def _on_gossip_round(self) -> None:
        if not self._alive:
            return
        now = self._simulator.now
        self.stats.gossip_rounds += 1
        partners = self._partners.partners_for_round(now)
        packet_ids = self.state.drain_proposals()
        if not packet_ids and not self.config.propose_when_empty:
            return
        if not partners:
            return
        if packet_ids:
            payload = ProposePayload(packet_ids=tuple(packet_ids))
            size = self.config.sizes.propose_size(len(packet_ids))
        else:
            payload = None
            size = self.config.sizes.propose_size(0)
        for target in partners:
            if payload is None:
                continue
            self._send(target, PROPOSE, size, payload)
            self.stats.proposes_sent += 1

    # ------------------------------------------------------------------
    # Feed-me round (the Y mechanism, sending side)
    # ------------------------------------------------------------------
    def _on_feed_me_round(self) -> None:
        if not self._alive:
            return
        now = self._simulator.now
        targets = self._partners.pick_feed_me_targets(now)
        payload = FeedMePayload(requester=self.node_id)
        size = self.config.sizes.feed_me_size()
        for target in targets:
            self._send(target, FEED_ME, size, payload)
            self.stats.feed_me_sent += 1

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, message: Message) -> None:
        """Entry point called by the network when a datagram is delivered."""
        if not self._alive:
            return
        kind = message.kind
        if kind == PROPOSE:
            self._handle_propose(message.sender, message.payload)
        elif kind == REQUEST:
            self._handle_request(message.sender, message.payload)
        elif kind == SERVE:
            self._handle_serve(message.sender, message.payload)
        elif kind == FEED_ME:
            self._handle_feed_me(message.payload)
        else:
            raise ValueError(f"node {self.node_id} received unknown message kind {kind!r}")

    # Phase 2: request missing packets ---------------------------------
    def _handle_propose(self, sender: NodeId, payload: ProposePayload) -> None:
        self.stats.proposals_received += 1
        wanted: List[PacketId] = []
        for packet_id in payload.packet_ids:
            if self.state.has_delivered(packet_id):
                continue
            if self.state.never_requested(packet_id):
                wanted.append(packet_id)
        if wanted:
            for packet_id in wanted:
                self.state.record_request(packet_id)
            self._send_request(sender, wanted)

        if self.config.retransmission_enabled:
            self._arm_retransmission(sender, payload.packet_ids)

    def _send_request(self, proposer: NodeId, packet_ids: List[PacketId]) -> None:
        payload = RequestPayload(packet_ids=tuple(packet_ids))
        size = self.config.sizes.request_size(len(packet_ids))
        self._send(proposer, REQUEST, size, payload)
        self.stats.requests_sent += 1

    def _arm_retransmission(self, proposer: NodeId, packet_ids: tuple) -> None:
        missing = self.state.missing_from(packet_ids)
        retryable = [
            packet_id
            for packet_id in missing
            if self.state.may_request_again(packet_id, self.config.max_request_attempts)
        ]
        if not retryable:
            return
        pending = PendingRequest(proposer=proposer, packet_ids=tuple(packet_ids))
        timer = Timer(self._simulator, partial(self._on_retransmit_timeout, pending))
        pending.timer = timer
        timer.arm(self.config.retransmit_timeout)
        self.state.add_pending(pending)

    def _on_retransmit_timeout(self, pending: PendingRequest) -> None:
        self.state.remove_pending(pending)
        if not self._alive:
            return
        missing = [
            packet_id
            for packet_id in self.state.missing_from(pending.packet_ids)
            if self.state.may_request_again(packet_id, self.config.max_request_attempts)
        ]
        if not missing:
            return
        for packet_id in missing:
            self.state.record_request(packet_id)
        self._send_request(pending.proposer, missing)
        self.stats.retransmission_requests_sent += 1
        # Another retry may still be allowed for some of these packets; keep
        # a timer armed so the node eventually exhausts its K attempts.
        self._arm_retransmission(pending.proposer, pending.packet_ids)

    # Phase 3: serve requested packets ----------------------------------
    def _handle_request(self, sender: NodeId, payload: RequestPayload) -> None:
        self.stats.requests_received += 1
        for packet_id in payload.packet_ids:
            if not self.state.has_delivered(packet_id):
                continue
            descriptor = self._schedule.packet(packet_id)
            served = ServedPacket(packet_id=packet_id, size_bytes=descriptor.size_bytes)
            size = self.config.sizes.serve_size(descriptor.size_bytes)
            self._send(sender, SERVE, size, ServePayload(packet=served))
            self.stats.serves_sent += 1
            self.stats.packets_served += 1

    def _handle_serve(self, sender: NodeId, payload: ServePayload) -> None:
        packet = payload.packet
        now = self._simulator.now
        if self.state.has_delivered(packet.packet_id):
            self.stats.duplicate_serves_received += 1
            return
        self._deliver(packet.packet_id, now)
        self.state.queue_for_proposal(packet.packet_id)

    def _handle_feed_me(self, payload: FeedMePayload) -> None:
        self.stats.feed_me_received += 1
        self._partners.insert_requester(payload.requester, self._simulator.now)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _deliver(self, packet_id: PacketId, time: float) -> None:
        if not self.state.deliver(packet_id, time):
            return
        if self._delivery_listener is not None:
            self._delivery_listener(self.node_id, packet_id, time)

    def _send(self, receiver: NodeId, kind: str, size_bytes: int, payload: object) -> None:
        message = Message(
            sender=self.node_id,
            receiver=receiver,
            kind=kind,
            size_bytes=size_bytes,
            payload=payload,
        )
        self._network.send(message)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        role = "source" if self.is_source else "node"
        return (
            f"GossipNode({role} {self.node_id}, delivered={self.state.delivered_count}, "
            f"alive={self._alive})"
        )
