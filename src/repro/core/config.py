"""Configuration of the gossip protocol.

Every knob the paper discusses is a field of :class:`GossipConfig`:

* ``fanout`` — partners contacted per gossip period (the paper sweeps 4–100);
* ``gossip_period`` — 200 ms in all of the paper's experiments;
* ``refresh_every`` — the view refresh rate ``X`` (1 = new partners every
  round, :data:`~repro.membership.partners.INFINITE` = static mesh);
* ``feed_me_every`` — the request rate ``Y`` (∞ = disabled, the default);
* ``retransmit_timeout`` / ``max_request_attempts`` — the retransmission
  mechanism (lines 14–15 and 25 of Algorithm 1, ``K`` attempts per packet).
  The paper does not give its retransmission period; the default of 2 s
  (ten gossip periods) is large enough not to trigger duplicate serves for
  packets that are merely queued behind a throttled upload, which matters
  because duplicate serves amplify congestion exactly when the system is
  already loaded;
* ``source_fanout`` — the source proposes each packet to 7 nodes in all of
  the paper's experiments.

:class:`MessageSizeModel` translates protocol messages into wire bytes so the
upload limiter can charge them; the paper never itemizes header sizes, so we
use conventional UDP/IPv4 figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.membership.partners import INFINITE


@dataclass(frozen=True)
class MessageSizeModel:
    """Wire-size accounting for protocol messages.

    Attributes
    ----------
    header_bytes:
        Fixed per-datagram overhead (IP + UDP + application header).
    id_bytes:
        Bytes needed to name one packet id inside PROPOSE / REQUEST messages.
    per_packet_overhead_bytes:
        Application framing added to each stream packet inside a SERVE.
    """

    header_bytes: int = 40
    id_bytes: int = 8
    per_packet_overhead_bytes: int = 16

    def __post_init__(self) -> None:
        if self.header_bytes < 1 or self.id_bytes < 1 or self.per_packet_overhead_bytes < 0:
            raise ValueError("message size parameters must be positive")

    def propose_size(self, num_ids: int) -> int:
        """Size of a PROPOSE datagram advertising ``num_ids`` packet ids."""
        return self.header_bytes + num_ids * self.id_bytes

    def request_size(self, num_ids: int) -> int:
        """Size of a REQUEST datagram asking for ``num_ids`` packet ids."""
        return self.header_bytes + num_ids * self.id_bytes

    def serve_size(self, payload_bytes: int) -> int:
        """Size of a SERVE datagram carrying one stream packet."""
        return self.header_bytes + self.per_packet_overhead_bytes + payload_bytes

    def feed_me_size(self) -> int:
        """Size of a FEED_ME datagram (header only)."""
        return self.header_bytes


@dataclass(frozen=True)
class GossipConfig:
    """All protocol-level knobs of Algorithm 1.

    The defaults reproduce the paper's baseline configuration: fanout 7,
    200 ms gossip period, partner refresh every round (``X = 1``), feed-me
    disabled (``Y = ∞``), retransmission with two attempts per packet, and a
    source fanout of 7.
    """

    fanout: int = 7
    gossip_period: float = 0.2
    refresh_every: float = 1
    feed_me_every: float = INFINITE
    retransmit_timeout: float = 2.0
    max_request_attempts: int = 2
    source_fanout: int = 7
    desynchronize_rounds: bool = True
    sizes: MessageSizeModel = field(default_factory=MessageSizeModel)

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout!r}")
        if self.gossip_period <= 0.0:
            raise ValueError(f"gossip_period must be positive, got {self.gossip_period!r}")
        if self.refresh_every != INFINITE and (
            self.refresh_every < 1 or int(self.refresh_every) != self.refresh_every
        ):
            raise ValueError(
                f"refresh_every must be a positive integer or INFINITE, got {self.refresh_every!r}"
            )
        if self.feed_me_every != INFINITE and (
            self.feed_me_every < 1 or int(self.feed_me_every) != self.feed_me_every
        ):
            raise ValueError(
                f"feed_me_every must be a positive integer or INFINITE, got {self.feed_me_every!r}"
            )
        if self.retransmit_timeout <= 0.0:
            raise ValueError(
                f"retransmit_timeout must be positive, got {self.retransmit_timeout!r}"
            )
        if self.max_request_attempts < 1:
            raise ValueError(
                f"max_request_attempts must be >= 1, got {self.max_request_attempts!r}"
            )
        if self.source_fanout < 1:
            raise ValueError(f"source_fanout must be >= 1, got {self.source_fanout!r}")

    # ------------------------------------------------------------------
    # Convenience constructors and helpers
    # ------------------------------------------------------------------
    @classmethod
    def paper_baseline(cls, fanout: int = 7) -> "GossipConfig":
        """The configuration used in most of the paper's experiments."""
        return cls(fanout=fanout)

    def with_fanout(self, fanout: int) -> "GossipConfig":
        """A copy of this configuration with a different fanout."""
        return self._replace(fanout=fanout)

    def with_refresh_every(self, refresh_every: float) -> "GossipConfig":
        """A copy with a different view refresh rate ``X``."""
        return self._replace(refresh_every=refresh_every)

    def with_feed_me_every(self, feed_me_every: float) -> "GossipConfig":
        """A copy with a different feed-me request rate ``Y``."""
        return self._replace(feed_me_every=feed_me_every)

    def _replace(self, **changes) -> "GossipConfig":
        from dataclasses import replace

        return replace(self, **changes)

    @property
    def retransmission_enabled(self) -> bool:
        """Whether packets may be requested more than once."""
        return self.max_request_attempts > 1

    @staticmethod
    def theoretical_minimum_fanout(system_size: int) -> float:
        """``ln(n)``: the reliability threshold for infect-and-die gossip."""
        if system_size < 2:
            raise ValueError(f"system size must be >= 2, got {system_size!r}")
        return math.log(system_size)
