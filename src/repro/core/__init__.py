"""The paper's contribution: three-phase gossip-based live streaming.

This package implements Algorithm 1 of the paper — the push-request-push
(propose / request / serve) gossip dissemination protocol with infect-and-die
id propagation, retransmission, the fanout knob, and both proactiveness
mechanisms (view refresh rate ``X`` and feed-me request rate ``Y``) — plus
the high-level :class:`StreamingSession` that wires protocol nodes to the
network, membership, streaming and metrics substrates.

Public API sketch::

    from repro.core import GossipConfig, StreamingSession, SessionConfig

    session = StreamingSession(SessionConfig(num_nodes=60, seed=7,
                                             gossip=GossipConfig(fanout=7)))
    result = session.run()
    print(result.quality.viewing_ratio(lag=10.0))
"""

from repro.core.config import GossipConfig, MessageSizeModel
from repro.core.host import Host, ScheduledHandle
from repro.core.messages import (
    FEED_ME,
    PROPOSE,
    REQUEST,
    SERVE,
    FeedMePayload,
    ProposePayload,
    RequestPayload,
    ServePayload,
    ServedPacket,
)
from repro.core.node import GossipNode, NodeStats
from repro.core.session import SessionConfig, SessionResult, StreamingSession
from repro.core.state import NodeState, PendingRequest

__all__ = [
    "FEED_ME",
    "FeedMePayload",
    "GossipConfig",
    "GossipNode",
    "Host",
    "MessageSizeModel",
    "NodeState",
    "NodeStats",
    "PROPOSE",
    "PendingRequest",
    "ProposePayload",
    "REQUEST",
    "RequestPayload",
    "SERVE",
    "ScheduledHandle",
    "ServePayload",
    "ServedPacket",
    "SessionConfig",
    "SessionResult",
    "StreamingSession",
]
