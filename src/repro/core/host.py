"""The host abstraction: what protocol-layer code needs from its runtime.

Everything above the engine — :class:`~repro.core.node.GossipNode`, the
timers, the stream emitter, the churn/join injectors — interacts with its
execution substrate through a deliberately narrow surface: a clock, named
deterministic RNG streams, and cancellable timer scheduling.  :class:`Host`
names that surface as a structural :class:`~typing.Protocol`, so two very
different runtimes satisfy it without sharing any code:

* :class:`~repro.simulation.engine.Simulator` — virtual time, a discrete
  event queue, single-threaded determinism;
* :class:`~repro.realnet.host.AsyncioHost` — wall-clock time mapped onto a
  virtual axis, ``loop.call_at`` timers, real asyncio UDP sockets
  underneath (:mod:`repro.realnet`).

The protocol is *structural* on purpose: the simulation layer sits below
the core layer, so making ``Simulator`` inherit from a core-layer base
class would invert the dependency.  Instead, any object with the right
attributes conforms — ``isinstance(obj, Host)`` works at runtime because
the protocol is ``@runtime_checkable`` (which checks method presence, not
signatures).

Contract notes beyond what the type system can express:

* ``schedule``/``schedule_at`` return a handle whose ``cancel()`` is
  idempotent and whose ``cancelled`` is an *attribute or property*, not a
  method (``asyncio.TimerHandle.cancelled()`` is a method — the realnet
  host wraps it; see :class:`~repro.realnet.host.WallClockHandle`).
* ``now`` never decreases between two reads from the same callback chain.
* RNG streams are deterministic per ``(seed, stream name)`` on every host;
  wall-clock hosts still produce identical *draw sequences* per stream,
  although real-time interleaving may consume shared streams in a
  different global order than the simulator would (which is why the
  realnet backend keys per-datagram draws by sender).
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.simulation.rng import RngRegistry

EventCallback = Callable[..., None]


@runtime_checkable
class ScheduledHandle(Protocol):
    """A cancellable reference to one scheduled callback."""

    def cancel(self) -> None:
        """Cancel the scheduled callback (idempotent)."""
        ...

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        ...


@runtime_checkable
class Host(Protocol):
    """Clock + RNG streams + cancellable timers: the node-facing runtime.

    Both :class:`~repro.simulation.engine.Simulator` and
    :class:`~repro.realnet.host.AsyncioHost` conform structurally.
    """

    @property
    def now(self) -> float:
        """Current time on the host's (virtual) time axis, in seconds."""
        ...

    @property
    def rng(self) -> RngRegistry:
        """Registry of named deterministic random streams."""
        ...

    def schedule(self, delay: float, callback: EventCallback, *args: Any) -> ScheduledHandle:
        """Run ``callback(*args)`` ``delay`` seconds from :attr:`now`."""
        ...

    def schedule_at(self, time: float, callback: EventCallback, *args: Any) -> ScheduledHandle:
        """Run ``callback(*args)`` at absolute host time ``time``."""
        ...

    def cancel(self, handle: Any) -> None:
        """Cancel a previously scheduled callback; ``None`` is ignored."""
        ...


__all__ = ["EventCallback", "Host", "ScheduledHandle"]
