"""High-level API: build and run one gossip streaming session.

A *session* is one complete experiment of the paper: one source streaming to
``n - 1`` receivers over a bandwidth-constrained network, with a given gossip
configuration, for a given stream length, optionally hit by churn or joined
by a flash crowd.  It wires every substrate together:

* a :class:`~repro.simulation.Simulator` seeded for reproducibility;
* a :class:`~repro.network.Network` with upload caps, latencies and loss;
* a :class:`~repro.membership.MembershipDirectory` plus per-node
  :class:`~repro.membership.PartnerSelector`;
* one :class:`~repro.core.node.GossipNode` per participant — each delegating
  its dissemination decisions to the strategy named by
  :attr:`SessionConfig.protocol` — and a
  :class:`~repro.streaming.StreamEmitter` driving the source;
* a :class:`~repro.metrics.DeliveryLog` and traffic statistics feeding the
  quality / lag / bandwidth analyzers.

Typical use::

    config = SessionConfig(num_nodes=60, seed=3,
                           gossip=GossipConfig(fanout=7),
                           network=NetworkConfig(upload_cap_kbps=700))
    result = StreamingSession(config).run()
    print(result.viewing_percentage(lag=10.0))

Prefer building configurations through the declarative scenario layer
(:mod:`repro.scenarios`) — ``run_scenario("churn-window", num_nodes=60)`` —
which composes a :class:`SessionConfig` from a named spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.membership.churn import ChurnInjector, ChurnSchedule
from repro.membership.directory import MembershipDirectory
from repro.membership.join import JoinEvent, JoinInjector, JoinSchedule
from repro.metrics.bandwidth import BandwidthUsage
from repro.metrics.delivery import DeliveryLog
from repro.metrics.quality import OFFLINE_LAG, StreamQualityAnalyzer
from repro.network.bandwidth import BandwidthCap
from repro.network.message import NodeId
from repro.network.stats import TrafficStats
from repro.network.transport import Network, NetworkConfig
from repro.protocols.registry import create_protocol, protocol_factory
from repro.simulation.engine import Simulator
from repro.streaming.schedule import StreamConfig, StreamSchedule
from repro.streaming.source import StreamEmitter
from repro.telemetry.config import TelemetryConfig

from repro.core.config import GossipConfig
from repro.core.node import GossipNode, NodeStats


@dataclass
class SessionConfig:
    """Everything needed to run one streaming session.

    Attributes
    ----------
    num_nodes:
        Total number of nodes including the source (the paper uses 230).
    seed:
        Root seed; two sessions with equal configs and seeds are identical.
    gossip:
        Protocol knobs (fanout, period, X, Y, retransmission).
    stream:
        Stream rate, packet size, FEC window layout and length.
    network:
        Upload caps, latency model and random loss.
    protocol:
        Name of the dissemination protocol every node runs (resolved through
        :mod:`repro.protocols.registry`).  ``"three-phase"`` is the paper's
        Algorithm 1; ``"eager-push"`` is the one-phase baseline.
    source_uncapped:
        Whether the source's upload is unlimited.  The source must serve
        ``source_fanout`` full copies of the stream, which no 700 kbps cap
        can sustain; the paper's source is a well-provisioned node, so this
        defaults to ``True``.
    churn:
        Optional churn schedule (e.g. :class:`CatastrophicChurn`).
    join:
        Optional join schedule (e.g. :class:`FlashCrowdJoin`): the selected
        nodes stay outside the membership directory, with their timers
        stopped, until their join time.
    failure_detection_delay:
        Seconds before crashed nodes stop being selected as partners.
    extra_time:
        Simulated seconds to keep running after the last packet is
        published, letting throttled queues drain (this is what makes
        "offline viewing" recover for moderate fanouts, as in Figure 1).
    telemetry:
        Optional :class:`~repro.telemetry.config.TelemetryConfig`.  ``None``
        (the default) builds no telemetry objects at all — the session's
        object graph and hot paths are exactly the untraced ones.  An armed
        config attaches a metrics registry and/or a streaming trace
        recorder through the observer edges; the run's
        :attr:`SessionResult.telemetry` then carries the snapshot.
    shards:
        ``None`` (the default) runs the classic single-queue session with
        the historical shared RNG streams — bit-compatible with every
        golden file.  An integer ``k >= 1`` declares the session *sharded*:
        per-datagram randomness switches to placement-invariant per-sender
        streams, and :func:`run_session` routes execution through the
        conservative time-window runner (:mod:`repro.shard`), partitioning
        nodes across ``k`` workers.  The contract is exact: any shard count
        produces byte-identical results to a scalar
        :class:`StreamingSession` run of the same config (which is what
        ``tests/properties/test_shard_equivalence.py`` pins) — ``shards``
        changes *how* a session executes, never *what* it computes, but the
        per-sender RNG mode means ``shards=k`` results differ from
        ``shards=None`` ones.
    """

    num_nodes: int = 60
    seed: int = 1
    gossip: GossipConfig = field(default_factory=GossipConfig)
    stream: StreamConfig = field(default_factory=StreamConfig.scaled_down)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    protocol: str = "three-phase"
    source_uncapped: bool = True
    churn: Optional[ChurnSchedule] = None
    join: Optional[JoinSchedule] = None
    failure_detection_delay: float = 5.0
    extra_time: float = 30.0
    telemetry: Optional[TelemetryConfig] = None
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError(f"a session needs at least 2 nodes, got {self.num_nodes!r}")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be >= 1 (or None), got {self.shards!r}")
        if self.extra_time < 0.0:
            raise ValueError(f"extra_time must be >= 0, got {self.extra_time!r}")
        if self.failure_detection_delay < 0.0:
            raise ValueError(
                f"failure_detection_delay must be >= 0, got {self.failure_detection_delay!r}"
            )
        protocol_factory(self.protocol)  # fail fast on unknown protocol names

    @property
    def source_id(self) -> NodeId:
        """The source is always node 0."""
        return 0

    def receiver_ids(self) -> List[NodeId]:
        """Ids of all non-source nodes."""
        return list(range(1, self.num_nodes))

    def late_joiner_ids(self) -> List[NodeId]:
        """Receivers that join late under the configured join schedule.

        Convenience for inspection: this re-evaluates ``join.events()``, so
        it only matches a session's actual partition for deterministic
        schedules (the session itself evaluates the schedule exactly once).
        """
        if self.join is None:
            return []
        return self.join.late_joiners(self.receiver_ids())

    def initial_member_ids(self) -> List[NodeId]:
        """Nodes present in the directory from the start (always the source).

        Same caveat as :meth:`late_joiner_ids`: inspection-only.
        """
        late = set(self.late_joiner_ids())
        return [node_id for node_id in range(self.num_nodes) if node_id not in late]


@dataclass
class SessionResult:
    """Everything measured during one session."""

    config: SessionConfig
    schedule: StreamSchedule
    deliveries: DeliveryLog
    traffic: TrafficStats
    node_stats: Dict[NodeId, NodeStats]
    failed_nodes: List[NodeId]
    events_processed: int
    end_time: float
    late_joiners: List[NodeId] = field(default_factory=list)
    #: Telemetry snapshot (:class:`~repro.telemetry.session.TelemetrySnapshot`)
    #: when the config armed telemetry, else ``None``.  Excluded from
    #: equality: telemetry observes a run, it is not part of the result's
    #: identity.
    telemetry: Optional[object] = field(default=None, compare=False, repr=False)

    _quality_cache: Dict[str, StreamQualityAnalyzer] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Node groups
    # ------------------------------------------------------------------
    @property
    def source_id(self) -> NodeId:
        """The source node id."""
        return self.config.source_id

    def receivers(self) -> List[NodeId]:
        """All non-source nodes, including any that crashed."""
        return self.config.receiver_ids()

    def survivors(self) -> List[NodeId]:
        """Non-source nodes that did not crash during the run."""
        failed = set(self.failed_nodes)
        return [node_id for node_id in self.receivers() if node_id not in failed]

    def initial_survivors(self) -> List[NodeId]:
        """Survivors that were present from the session start (no joiners)."""
        late = set(self.late_joiners)
        return [node_id for node_id in self.survivors() if node_id not in late]

    # ------------------------------------------------------------------
    # Analyzers
    # ------------------------------------------------------------------
    def quality(self, survivors_only: bool = True) -> StreamQualityAnalyzer:
        """Quality analyzer over survivors (default) or all receivers."""
        key = "survivors" if survivors_only else "receivers"
        cached = self._quality_cache.get(key)
        if cached is None:
            nodes = self.survivors() if survivors_only else self.receivers()
            cached = StreamQualityAnalyzer(self.schedule, self.deliveries, nodes)
            self._quality_cache[key] = cached
        return cached

    def bandwidth_usage(self, include_source: bool = False) -> BandwidthUsage:
        """Per-node upload usage averaged over the whole run.

        The divisor is the full simulated duration (stream plus drain time),
        so a node that saturates its upload limiter for the entire run
        reports at most its cap — matching what the paper's Figure 4 plots.
        """
        nodes = self.receivers() if not include_source else [self.source_id] + self.receivers()
        duration = self.end_time if self.end_time > 0.0 else self.schedule.config.duration
        return BandwidthUsage(self.traffic, duration, nodes)

    # ------------------------------------------------------------------
    # Headline numbers (used by figures, examples and tests)
    # ------------------------------------------------------------------
    def viewing_percentage(
        self,
        lag: float = OFFLINE_LAG,
        max_jitter: float = 0.01,
        survivors_only: bool = True,
    ) -> float:
        """Percentage of nodes viewing the stream with ≤ ``max_jitter`` at ``lag``."""
        return self.quality(survivors_only).viewing_ratio(lag, max_jitter) * 100.0

    def average_complete_windows_percentage(
        self,
        lag: float,
        survivors_only: bool = True,
    ) -> float:
        """Average percentage of decodable windows across nodes (Figure 8)."""
        return self.quality(survivors_only).average_complete_window_ratio(lag) * 100.0

    def delivery_ratio(self) -> float:
        """Fraction of (survivor, packet) pairs that were delivered."""
        survivors = self.survivors()
        if not survivors:
            return 0.0
        total = len(survivors) * self.schedule.num_packets
        delivered = sum(self.deliveries.packets_delivered(node_id) for node_id in survivors)
        return delivered / total


class StreamingSession:
    """Builds and runs one gossip streaming experiment."""

    def __init__(self, config: SessionConfig) -> None:
        self.config = config
        self._built = False
        self.simulator: Optional[Simulator] = None
        self.network: Optional[Network] = None
        self.directory: Optional[MembershipDirectory] = None
        self.schedule: Optional[StreamSchedule] = None
        self.nodes: Dict[NodeId, GossipNode] = {}
        self.emitter: Optional[StreamEmitter] = None
        self.deliveries = DeliveryLog()
        self._churn_injector: Optional[ChurnInjector] = None
        self._join_injector: Optional[JoinInjector] = None
        self._failed_nodes: List[NodeId] = []
        self._join_events: List[JoinEvent] = []
        self._late_joiners: List[NodeId] = []
        self.telemetry = None  # SessionTelemetry once built with an armed config

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Instantiate every substrate.  Called automatically by :meth:`run`."""
        if self._built:
            raise RuntimeError("StreamingSession.build() called twice")
        self._built = True
        config = self.config

        simulator = self._create_simulator()
        self.simulator = simulator
        self.schedule = StreamSchedule(config.stream)
        # Bind the delivery log to the schedule: every recorded delivery then
        # also accumulates into per-(node, window) lag arrays, which is what
        # lets the quality analyzer skip the per-delivery pass entirely.
        self.deliveries.bind_schedule(self.schedule)

        self._build_membership()
        self._build_network()
        self._build_nodes()
        self._build_source()
        self._build_churn()
        self._build_join()
        self._build_telemetry()

    def _create_simulator(self) -> Simulator:
        """The simulator driving this session.

        Overridden by the sharded runner's per-shard session, which installs
        a windowed dispatch backend; everything else about :meth:`build` is
        shared between the scalar and sharded paths.
        """
        return Simulator(seed=self.config.seed)

    def _build_membership(self) -> None:
        config = self.config
        directory = MembershipDirectory(detection_delay=config.failure_detection_delay)
        # Evaluate the join schedule exactly once: this event list decides
        # both who stays out of the initial directory and what _build_join
        # arms, so a stateful/randomized schedule cannot desync the two.
        if config.join is not None:
            self._join_events = config.join.events(config.receiver_ids())
            self._late_joiners = [
                node_id for event in self._join_events for node_id in event.joiners
            ]
        late = set(self._late_joiners)
        directory.add_all(
            node_id for node_id in range(config.num_nodes) if node_id not in late
        )
        self.directory = directory

    def _build_network(self) -> None:
        assert self.simulator is not None
        config = self.config
        node_ids = list(range(config.num_nodes))
        # Sharded sessions key per-datagram randomness by sending node so a
        # node's draws do not depend on which shard runs it; unsharded
        # sessions keep the historical shared streams (golden-file compat).
        per_sender = config.shards is not None
        latency = config.network.build_latency(
            self.simulator.rng, node_ids, per_sender=per_sender
        )
        loss = config.network.build_loss(self.simulator.rng, per_sender=per_sender)
        self.network = Network(self.simulator, latency_model=latency, loss_model=loss)

    def _nodes_to_build(self) -> List[NodeId]:
        """Which nodes this session instantiates and registers.

        The scalar session builds every node; a shard session overrides this
        to build only the nodes it owns (while still building the full
        membership directory and perturbation plans, which must be
        replica-identical across shards).
        """
        return list(range(self.config.num_nodes))

    def _build_nodes(self) -> None:
        assert self.simulator is not None and self.network is not None
        assert self.directory is not None and self.schedule is not None
        config = self.config
        for node_id in self._nodes_to_build():
            is_source = node_id == config.source_id
            if is_source and config.source_uncapped:
                cap = BandwidthCap.unlimited()
            else:
                cap = config.network.build_cap(node_id)
            node = GossipNode(
                node_id=node_id,
                simulator=self.simulator,
                network=self.network,
                directory=self.directory,
                schedule=self.schedule,
                config=config.gossip,
                delivery_listener=self.deliveries,
                is_source=is_source,
                protocol=create_protocol(config.protocol),
            )
            self.nodes[node_id] = node
            self.network.register(node_id, node.on_message, cap)

    def _build_source(self) -> None:
        assert self.simulator is not None and self.schedule is not None
        source = self.nodes[self.config.source_id]
        self.emitter = StreamEmitter(self.simulator, self.schedule, source.publish)

    def _build_churn(self) -> None:
        assert self.simulator is not None and self.directory is not None
        config = self.config
        if config.churn is None:
            return
        self._churn_injector = ChurnInjector(self.simulator, config.churn, self._apply_failures)
        self._churn_injector.arm(
            self.directory.churn_candidates(protected=[config.source_id]),
            self.simulator.rng.stream("churn"),
        )

    def _build_join(self) -> None:
        assert self.simulator is not None
        config = self.config
        if config.join is None:
            return
        self._join_injector = JoinInjector(self.simulator, config.join, self._apply_joins)
        self._join_injector.arm_events(self._join_events)

    def _apply_failures(self, victims: List[NodeId]) -> None:
        assert self.network is not None and self.directory is not None and self.simulator is not None
        now = self.simulator.now
        for node_id in victims:
            self._failed_nodes.append(node_id)
            self.directory.mark_failed(node_id, now)
            self.network.fail_node(node_id)
            self.nodes[node_id].fail()

    def _build_telemetry(self) -> None:
        config = self.config
        if config.telemetry is None or not config.telemetry.armed:
            return
        # Imported lazily: the telemetry session layer observes sessions,
        # so importing it from here at module scope would be circular.
        from repro.telemetry.session import SessionTelemetry

        self.telemetry = SessionTelemetry(config.telemetry).attach(self)

    def _apply_joins(self, joiners: List[NodeId]) -> None:
        assert self.directory is not None
        for node_id in joiners:
            self.directory.add(node_id)
            self.nodes[node_id].start()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> SessionResult:
        """Build (if needed), run to completion, and return the results."""
        if not self._built:
            self.build()
        assert self.simulator is not None and self.schedule is not None
        assert self.emitter is not None

        late = set(self._late_joiners)
        for node_id, node in self.nodes.items():
            if node_id not in late:
                node.start()
        self.emitter.start()

        end_time = self.schedule.config.end_time + self.config.extra_time
        self.simulator.run(until=end_time)

        assert self.network is not None
        telemetry_snapshot = (
            self.telemetry.finalize() if self.telemetry is not None else None
        )
        return SessionResult(
            config=self.config,
            schedule=self.schedule,
            deliveries=self.deliveries,
            traffic=self.network.stats,
            node_stats={node_id: node.stats for node_id, node in self.nodes.items()},
            failed_nodes=list(self._failed_nodes),
            events_processed=self.simulator.events_processed,
            end_time=self.simulator.now,
            late_joiners=list(self._late_joiners),
            telemetry=telemetry_snapshot,
        )


def run_session(config: SessionConfig) -> SessionResult:
    """Build and run a session, honouring :attr:`SessionConfig.shards`.

    ``shards=None`` runs the classic scalar session in-process.  A set shard
    count routes through the conservative time-window runner
    (:mod:`repro.shard`), which partitions the nodes across ``shards``
    workers and merges their fragments into one :class:`SessionResult` —
    byte-identical to running ``StreamingSession(config).run()`` directly.
    """
    if config.shards is not None:
        # Imported lazily: repro.shard builds per-shard StreamingSession
        # subclasses, so a module-scope import would be circular.
        from repro.shard import run_sharded

        return run_sharded(config)
    return StreamingSession(config).run()
