"""Running individual experiment points.

An :class:`ExperimentPoint` names one cell of a parameter sweep;
:func:`run_point` executes it from scratch.  :class:`RunCache` memoizes full
:class:`~repro.core.session.SessionResult` objects by point for analyses
that need result-level access (delivery logs, traffic counters).

The figure generators no longer cache results here: they consume compact
:class:`~repro.sweep.PointSummary` records through
:class:`repro.sweep.SummaryCache`, which the :mod:`repro.sweep` subsystem
can fill from a multiprocess executor and persist in a resumable
:class:`~repro.sweep.ResultStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.session import SessionResult
from repro.membership.partners import INFINITE
from repro.scenarios.builder import SessionBuilder

from repro.experiments.scale import ExperimentScale


def format_rate(value: float) -> str:
    """Render a rate knob (X / Y, in gossip periods) honestly.

    ``INFINITE`` renders as ``"inf"``, whole numbers without a decimal point,
    and fractional rates (X = 0.5 means "refresh twice per period") keep
    their fraction instead of being truncated to ``0``.
    """
    if value == INFINITE:
        return "inf"
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return f"{number:g}"


@dataclass(frozen=True)
class ExperimentPoint:
    """One point of a parameter sweep, at a given scale.

    The fields cover every knob the paper's figures vary; unspecified knobs
    take the scale's defaults (700 kbps cap, fanout 7, X = 1, Y = ∞, no
    churn).
    """

    scale_name: str
    fanout: Optional[int] = None
    cap_kbps: Optional[float] = None
    refresh_every: float = 1
    feed_me_every: float = INFINITE
    churn_fraction: float = 0.0
    seed_offset: int = 0
    protocol: str = "three-phase"

    def describe(self) -> str:
        """Short human-readable description of this point."""
        parts = [f"scale={self.scale_name}"]
        if self.protocol != "three-phase":
            parts.append(f"protocol={self.protocol}")
        if self.fanout is not None:
            parts.append(f"fanout={self.fanout}")
        if self.cap_kbps is not None:
            parts.append(f"cap={self.cap_kbps:.0f}kbps")
        parts.append(f"X={format_rate(self.refresh_every)}")
        if self.feed_me_every != INFINITE:
            parts.append(f"Y={format_rate(self.feed_me_every)}")
        if self.churn_fraction > 0.0:
            parts.append(f"churn={self.churn_fraction:.0%}")
        if self.seed_offset:
            parts.append(f"seed+{self.seed_offset}")
        return ", ".join(parts)


def run_point(scale: ExperimentScale, point: ExperimentPoint) -> SessionResult:
    """Run one experiment point from scratch (no caching)."""
    config = scale.session_config(
        fanout=point.fanout,
        cap_kbps=point.cap_kbps,
        refresh_every=point.refresh_every,
        feed_me_every=point.feed_me_every,
        churn_fraction=point.churn_fraction,
        seed_offset=point.seed_offset,
        protocol=point.protocol,
    )
    return SessionBuilder.from_config(config).run()


class RunCache:
    """Memoizes :func:`run_point` results by experiment point.

    Useful for analyses that need the full :class:`SessionResult` of
    overlapping points (e.g. the paper-claims test-suite inspects traffic
    counters).  The figure generators use the lighter
    :class:`repro.sweep.SummaryCache` instead, whose entries are compact,
    picklable and persistable.
    """

    def __init__(self) -> None:
        self._results: Dict[ExperimentPoint, SessionResult] = {}
        self._hits = 0
        self._misses = 0

    @property
    def hits(self) -> int:
        """Number of cache hits so far."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of simulations actually run."""
        return self._misses

    def __len__(self) -> int:
        return len(self._results)

    def get(self, scale: ExperimentScale, point: ExperimentPoint) -> SessionResult:
        """Return the result for ``point``, running the simulation if needed."""
        if point.scale_name != scale.name:
            raise ValueError(
                f"point was built for scale {point.scale_name!r}, not {scale.name!r}"
            )
        cached = self._results.get(point)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        result = run_point(scale, point)
        self._results[point] = result
        return result

    def clear(self) -> None:
        """Drop all cached results (frees a lot of memory after a sweep)."""
        self._results.clear()
