"""Generators for every figure of the paper's evaluation section.

Each ``figureN_*`` function sweeps the parameter the original figure varies,
obtains one :class:`~repro.sweep.PointSummary` per point through a
:class:`~repro.sweep.SummaryCache` (which runs the session serially on a
miss, or serves results precomputed by the parallel sweep executor) and
returns a :class:`FigureResult` whose series correspond to the lines of the
original plot.  ``FigureResult.to_table()`` renders the same data as text.

To regenerate figures on several cores, collect their points with
:func:`figure_points`, execute them with :func:`repro.sweep.run_sweep`,
prime a cache with the outcome and call the generators against it — this is
exactly what ``python -m repro.experiments --jobs N`` does.

The x/y semantics follow the paper exactly:

====== ============================================ =========================
Figure x axis                                       y axis
====== ============================================ =========================
1      fanout (700 kbps cap)                        % nodes with < 1 % jitter
2      stream lag t (700 kbps cap)                  % nodes with critical lag ≤ t
3      fanout (1000 / 2000 kbps caps)               % nodes with < 1 % jitter
4      node rank (sorted by contribution)           upload bandwidth (kbps)
5      view refresh rate X                          % nodes with < 1 % jitter
6      feed-me request rate Y                       % nodes with < 1 % jitter
7      % of nodes failing                           % survivors with < 1 % jitter
8      % of nodes failing                           avg % complete windows
====== ============================================ =========================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.membership.partners import INFINITE
from repro.metrics.quality import OFFLINE_LAG
from repro.metrics.report import Series, format_series_table

from repro.experiments.runner import ExperimentPoint, format_rate
from repro.experiments.scale import REDUCED, ExperimentScale

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.sweep.cache import SummaryCache


def _default_cache() -> "SummaryCache":
    """The process-wide summary cache (imported lazily: sweep imports us)."""
    from repro.sweep.cache import shared_summary_cache

    return shared_summary_cache


@dataclass
class FigureResult:
    """The regenerated data of one paper figure."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    scale_name: str
    series: List[Series] = field(default_factory=list)
    notes: str = ""

    def series_by_label(self, label: str) -> Series:
        """Find one series by its label."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"{self.figure_id} has no series labelled {label!r}")

    def to_table(self, precision: int = 1) -> str:
        """Render all series as one aligned text table."""
        header = (
            f"{self.figure_id}: {self.title}\n"
            f"(scale={self.scale_name}; y = {self.y_label})\n"
        )
        return header + format_series_table(self.series, x_label=self.x_label, precision=precision)


def _lag_label(lag: float) -> str:
    if math.isinf(lag):
        return "offline viewing"
    return f"{lag:.0f}s lag"


def _x_value(value: float) -> float:
    """Represent X / Y sweep values on a numeric axis (∞ → -1 sentinel)."""
    return -1.0 if value == INFINITE else float(value)


def _rate_label(value: float) -> str:
    return format_rate(value)


# ----------------------------------------------------------------------
# Figure 1 — fanout sweep at 700 kbps
# ----------------------------------------------------------------------
def figure1_fanout_700(
    scale: ExperimentScale = REDUCED,
    cache: Optional[SummaryCache] = None,
    fanouts: Optional[Sequence[int]] = None,
) -> FigureResult:
    """Percentage of nodes viewing with < 1 % jitter vs fanout (700 kbps cap)."""
    cache = cache if cache is not None else _default_cache()
    fanouts = tuple(fanouts) if fanouts is not None else scale.fanout_grid
    lags = sorted(scale.lag_values, reverse=True)

    result = FigureResult(
        figure_id="figure1",
        title="Nodes viewing the stream with <1% jitter vs fanout (700 kbps cap)",
        x_label="fanout",
        y_label="% of nodes",
        scale_name=scale.name,
        series=[Series(label=_lag_label(lag)) for lag in lags],
    )
    for fanout in fanouts:
        point = ExperimentPoint(scale_name=scale.name, fanout=fanout)
        summary = cache.get(scale, point)
        for lag, series in zip(lags, result.series):
            series.add(float(fanout), summary.viewing_percentage(lag))
    return result


# ----------------------------------------------------------------------
# Figure 2 — cumulative distribution of stream lag
# ----------------------------------------------------------------------
def figure2_lag_cdf(
    scale: ExperimentScale = REDUCED,
    cache: Optional[SummaryCache] = None,
    fanouts: Optional[Sequence[int]] = None,
) -> FigureResult:
    """Cumulative distribution of per-node critical lag for several fanouts."""
    cache = cache if cache is not None else _default_cache()
    fanouts = tuple(fanouts) if fanouts is not None else scale.fig2_fanouts

    result = FigureResult(
        figure_id="figure2",
        title="Cumulative distribution of stream lag (700 kbps cap)",
        x_label="stream lag (s)",
        y_label="% of nodes with 99% of windows within the lag",
        scale_name=scale.name,
    )
    for fanout in fanouts:
        point = ExperimentPoint(scale_name=scale.name, fanout=fanout)
        summary = cache.get(scale, point)
        series = Series(label=f"fanout {fanout}")
        fractions = summary.lag_cdf_values(scale.fig2_lag_grid)
        for lag, fraction in zip(scale.fig2_lag_grid, fractions):
            series.add(lag, fraction * 100.0)
        result.series.append(series)
    return result


# ----------------------------------------------------------------------
# Figure 3 — fanout sweep at 1000 / 2000 kbps
# ----------------------------------------------------------------------
def figure3_fanout_relaxed_caps(
    scale: ExperimentScale = REDUCED,
    cache: Optional[SummaryCache] = None,
    fanouts: Optional[Sequence[int]] = None,
    caps_kbps: Optional[Sequence[float]] = None,
) -> FigureResult:
    """Fanout sweep under looser upload caps (offline and 10 s lag)."""
    cache = cache if cache is not None else _default_cache()
    fanouts = tuple(fanouts) if fanouts is not None else scale.fanout_grid
    caps = tuple(caps_kbps) if caps_kbps is not None else scale.fig3_caps_kbps

    result = FigureResult(
        figure_id="figure3",
        title="Nodes viewing the stream with <1% jitter vs fanout (1000/2000 kbps caps)",
        x_label="fanout",
        y_label="% of nodes",
        scale_name=scale.name,
    )
    for cap in caps:
        for lag in (OFFLINE_LAG, 10.0):
            series = Series(label=f"{_lag_label(lag)}, {cap:.0f}kbps cap")
            for fanout in fanouts:
                point = ExperimentPoint(scale_name=scale.name, fanout=fanout, cap_kbps=cap)
                summary = cache.get(scale, point)
                series.add(float(fanout), summary.viewing_percentage(lag))
            result.series.append(series)
    return result


# ----------------------------------------------------------------------
# Figure 4 — distribution of upload bandwidth usage
# ----------------------------------------------------------------------
def figure4_bandwidth_usage(
    scale: ExperimentScale = REDUCED,
    cache: Optional[SummaryCache] = None,
    pairs: Optional[Sequence[tuple]] = None,
) -> FigureResult:
    """Per-node upload usage sorted by contribution, for (fanout, cap) pairs."""
    cache = cache if cache is not None else _default_cache()
    pairs = tuple(pairs) if pairs is not None else scale.fig4_pairs

    result = FigureResult(
        figure_id="figure4",
        title="Distribution of upload bandwidth usage among nodes",
        x_label="node rank (1 = largest contributor)",
        y_label="upload bandwidth used (kbps)",
        scale_name=scale.name,
    )
    for fanout, cap in pairs:
        point = ExperimentPoint(scale_name=scale.name, fanout=fanout, cap_kbps=cap)
        summary = cache.get(scale, point)
        usage = summary.sorted_usage(descending=True)
        series = Series(label=f"fanout {fanout}, {cap:.0f}kbps cap")
        for rank, kbps in enumerate(usage, start=1):
            series.add(float(rank), kbps)
        result.series.append(series)
    return result


# ----------------------------------------------------------------------
# Figure 5 — view refresh rate X
# ----------------------------------------------------------------------
def figure5_refresh_rate(
    scale: ExperimentScale = REDUCED,
    cache: Optional[SummaryCache] = None,
    refresh_values: Optional[Sequence[float]] = None,
) -> FigureResult:
    """Viewing percentage as a function of the view refresh rate X."""
    cache = cache if cache is not None else _default_cache()
    refresh_values = (
        tuple(refresh_values) if refresh_values is not None else scale.refresh_grid
    )
    lags = sorted(scale.lag_values, reverse=True)

    result = FigureResult(
        figure_id="figure5",
        title="Nodes viewing the stream with at most 1% jitter vs view refresh rate X",
        x_label="X (gossip periods; -1 denotes infinity)",
        y_label="% of nodes",
        scale_name=scale.name,
        series=[Series(label=_lag_label(lag)) for lag in lags],
        notes="x = -1 encodes X = infinity (a fully static partner set)",
    )
    for refresh in refresh_values:
        point = ExperimentPoint(scale_name=scale.name, refresh_every=refresh)
        summary = cache.get(scale, point)
        for lag, series in zip(lags, result.series):
            series.add(_x_value(refresh), summary.viewing_percentage(lag))
    return result


# ----------------------------------------------------------------------
# Figure 6 — feed-me request rate Y
# ----------------------------------------------------------------------
def figure6_feedme_rate(
    scale: ExperimentScale = REDUCED,
    cache: Optional[SummaryCache] = None,
    feedme_values: Optional[Sequence[float]] = None,
) -> FigureResult:
    """Viewing percentage as a function of the feed-me request rate Y.

    As in the paper, the feed-me mechanism is evaluated on top of an
    otherwise static view (X = ∞): the only view changes come from feed-me
    insertions, so the sweep isolates the effect of Y.
    """
    cache = cache if cache is not None else _default_cache()
    feedme_values = tuple(feedme_values) if feedme_values is not None else scale.feedme_grid
    lags = sorted(scale.lag_values, reverse=True)

    result = FigureResult(
        figure_id="figure6",
        title="Nodes viewing the stream with at most 1% jitter vs feed-me request rate Y",
        x_label="Y (gossip periods; -1 denotes infinity)",
        y_label="% of nodes",
        scale_name=scale.name,
        series=[Series(label=_lag_label(lag)) for lag in lags],
        notes="x = -1 encodes Y = infinity (feed-me disabled); X is infinite throughout",
    )
    for feedme in feedme_values:
        point = ExperimentPoint(
            scale_name=scale.name,
            refresh_every=INFINITE,
            feed_me_every=feedme,
        )
        summary = cache.get(scale, point)
        for lag, series in zip(lags, result.series):
            series.add(_x_value(feedme), summary.viewing_percentage(lag))
    return result


# ----------------------------------------------------------------------
# Figures 7 and 8 — churn
# ----------------------------------------------------------------------
def figure7_churn_unaffected(
    scale: ExperimentScale = REDUCED,
    cache: Optional[SummaryCache] = None,
    churn_fractions: Optional[Sequence[float]] = None,
    refresh_values: Optional[Sequence[float]] = None,
) -> FigureResult:
    """Percentage of *surviving* nodes with < 1 % jitter after a catastrophic failure."""
    cache = cache if cache is not None else _default_cache()
    churn_fractions = (
        tuple(churn_fractions) if churn_fractions is not None else scale.churn_grid
    )
    refresh_values = (
        tuple(refresh_values) if refresh_values is not None else scale.churn_refresh_values
    )

    result = FigureResult(
        figure_id="figure7",
        title="Surviving nodes with <1% jitter vs percentage of failing nodes",
        x_label="% of nodes failing",
        y_label="% of surviving nodes",
        scale_name=scale.name,
    )
    for refresh in refresh_values:
        for lag in (OFFLINE_LAG, 20.0):
            series = Series(label=f"{_lag_label(lag)}, X={_rate_label(refresh)}")
            for fraction in churn_fractions:
                point = ExperimentPoint(
                    scale_name=scale.name,
                    refresh_every=refresh,
                    churn_fraction=fraction,
                )
                summary = cache.get(scale, point)
                series.add(fraction * 100.0, summary.viewing_percentage(lag))
            result.series.append(series)
    return result


def figure8_churn_windows(
    scale: ExperimentScale = REDUCED,
    cache: Optional[SummaryCache] = None,
    churn_fractions: Optional[Sequence[float]] = None,
    refresh_values: Optional[Sequence[float]] = None,
) -> FigureResult:
    """Average percentage of complete windows over survivors vs churn (20 s lag)."""
    cache = cache if cache is not None else _default_cache()
    churn_fractions = (
        tuple(churn_fractions) if churn_fractions is not None else scale.churn_grid
    )
    refresh_values = (
        tuple(refresh_values) if refresh_values is not None else scale.churn_refresh_values
    )

    result = FigureResult(
        figure_id="figure8",
        title="Average percentage of complete windows for surviving nodes (20s lag)",
        x_label="% of nodes failing",
        y_label="average % of complete windows",
        scale_name=scale.name,
    )
    for refresh in refresh_values:
        series = Series(label=f"20s lag, X={_rate_label(refresh)}")
        for fraction in churn_fractions:
            point = ExperimentPoint(
                scale_name=scale.name,
                refresh_every=refresh,
                churn_fraction=fraction,
            )
            summary = cache.get(scale, point)
            series.add(fraction * 100.0, summary.average_complete_windows_percentage(20.0))
        result.series.append(series)
    return result


ALL_FIGURES = {
    "figure1": figure1_fanout_700,
    "figure2": figure2_lag_cdf,
    "figure3": figure3_fanout_relaxed_caps,
    "figure4": figure4_bandwidth_usage,
    "figure5": figure5_refresh_rate,
    "figure6": figure6_feedme_rate,
    "figure7": figure7_churn_unaffected,
    "figure8": figure8_churn_windows,
}
"""All figure generators keyed by figure id (used by the CLI-style examples)."""


def figure_points(figure_id: str, scale: ExperimentScale) -> List[ExperimentPoint]:
    """The experiment points ``figure_id`` needs at ``scale``, without running.

    Implemented as a dry run of the generator against a
    :class:`~repro.sweep.RecordingCache`, so the plan is exactly the
    generator's real request sequence (deduplicated) and cannot drift from
    its implementation.
    """
    if figure_id not in ALL_FIGURES:
        raise KeyError(f"unknown figure {figure_id!r}; available: {sorted(ALL_FIGURES)}")
    from repro.sweep.cache import RecordingCache

    recorder = RecordingCache()
    ALL_FIGURES[figure_id](scale, recorder)
    return recorder.points()


def generate_all(
    scale: ExperimentScale = REDUCED,
    cache: Optional[SummaryCache] = None,
) -> Dict[str, FigureResult]:
    """Regenerate every figure at the given scale (shares runs via the cache)."""
    cache = cache if cache is not None else _default_cache()
    return {figure_id: generator(scale, cache) for figure_id, generator in ALL_FIGURES.items()}
