"""Experiment scales: how big a reproduction run is.

The paper deploys 230 PlanetLab nodes and streams for minutes.  A pure-Python
packet-level simulation cannot sweep that configuration across eight figures
in reasonable time, so experiments are parameterized by a *scale*:

* :data:`SMOKE` — 30 nodes, short stream; seconds per run.  Used by the test
  suite's integration tests.
* :data:`REDUCED` — 60 nodes, ≈ 29 s of stream; tens of seconds per run.
  This is the scale behind ``benchmarks/`` and ``EXPERIMENTS.md``.
* :data:`PAPER` — the paper's own 230 nodes, 600 kbps, 110-packet windows,
  ≈ 2 minutes of stream.  Provided for completeness; a full figure sweep at
  this scale takes hours of CPU.
* :data:`XLARGE` — 1,000 nodes at the paper's exact stream geometry
  (600 kbps, 101 + 9 windows), the gossip literature's evaluation size.
  Single sessions are practical thanks to the fast path
  (``benchmarks/bench_large_session.py`` runs one and reports stage
  timings); full figure sweeps remain multi-core territory.

Besides sizes, a scale also fixes the parameter grids (fanouts, X/Y values,
churn fractions) so that figures probe sensible ranges for the system size:
the interesting fanout range scales with ``ln(n)`` and with the number of
nodes available.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import GossipConfig
from repro.core.session import SessionConfig
from repro.membership.churn import CatastrophicChurn, ChurnSchedule
from repro.membership.partners import INFINITE
from repro.network.transport import NetworkConfig
from repro.scenarios.builder import SessionBuilder
from repro.scenarios.registry import large_session, metropolis
from repro.streaming.schedule import StreamConfig


@dataclass(frozen=True)
class ExperimentScale:
    """A complete sizing of the reproduction experiments.

    Attributes
    ----------
    name:
        Short identifier (``"smoke"``, ``"reduced"``, ``"paper"``).
    num_nodes:
        Total nodes including the source.
    payload_bytes / source_packets_per_window / fec_packets_per_window /
    num_windows:
        Stream layout (see :class:`~repro.streaming.schedule.StreamConfig`).
    max_backlog_seconds:
        Upload-throttling queue capacity.
    extra_time:
        Drain time after the last packet is published.
    retransmit_timeout / max_request_attempts:
        Retransmission behaviour.
    default_cap_kbps:
        Upload cap used when an experiment does not override it (700 kbps).
    base_latency / random_loss:
        Network substrate parameters.
    seed:
        Base seed; individual experiment points derive their own seeds.
    fanout_grid:
        Fanout sweep used by Figures 1–3.
    lag_values:
        The playout lags reported by the viewing-percentage figures.
    refresh_grid / feedme_grid:
        The X and Y sweeps of Figures 5 and 6.
    churn_grid:
        Failure fractions of Figures 7 and 8.
    churn_refresh_values:
        The X values compared under churn.
    fig2_fanouts:
        Fanouts whose lag CDF Figure 2 plots.
    fig4_pairs:
        (fanout, cap_kbps) combinations of Figure 4.
    churn_time:
        Simulated time of the catastrophic failure.
    fanout_collapse_expected:
        Whether the scale's largest grid fanout congests the upload caps
        enough to collapse real-time viewing (the right edge of the paper's
        good-fanout window).  True at 60+ nodes; at the 30-node smoke scale
        the caps never saturate, the collapse regime does not exist, and
        shape checks must assert the curve *stays high* instead.
    """

    name: str
    num_nodes: int
    payload_bytes: int
    source_packets_per_window: int
    fec_packets_per_window: int
    num_windows: int
    max_backlog_seconds: float
    extra_time: float
    retransmit_timeout: float = 2.0
    max_request_attempts: int = 2
    default_cap_kbps: float = 700.0
    base_latency: float = 0.05
    random_loss: float = 0.01
    seed: int = 42
    gossip_period: float = 0.2
    source_fanout: int = 7
    failure_detection_delay: float = 5.0
    fanout_grid: Tuple[int, ...] = (4, 5, 6, 7, 10, 15, 20, 30, 40, 50)
    lag_values: Tuple[float, ...] = (10.0, 20.0, math.inf)
    refresh_grid: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, INFINITE)
    feedme_grid: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, INFINITE)
    churn_grid: Tuple[float, ...] = (0.1, 0.2, 0.35, 0.5, 0.65, 0.8)
    churn_refresh_values: Tuple[float, ...] = (1, 2, 20, INFINITE)
    fig2_fanouts: Tuple[int, ...] = (4, 5, 7, 10, 20, 30, 40, 50)
    fig2_lag_grid: Tuple[float, ...] = tuple(float(t) for t in range(0, 91, 5))
    fig3_caps_kbps: Tuple[float, ...] = (1000.0, 2000.0)
    fig4_pairs: Tuple[Tuple[int, float], ...] = (
        (7, 700.0),
        (40, 700.0),
        (40, 1000.0),
        (40, 2000.0),
        (55, 2000.0),
    )
    churn_time: float = 10.0
    optimal_fanout: int = 7
    fanout_collapse_expected: bool = True

    def __post_init__(self) -> None:
        if self.num_nodes < 3:
            raise ValueError(f"an experiment scale needs at least 3 nodes, got {self.num_nodes!r}")
        for fanout in self.fanout_grid:
            if fanout >= self.num_nodes:
                raise ValueError(
                    f"fanout {fanout} in grid is not smaller than the system size {self.num_nodes}"
                )
        if self.optimal_fanout not in self.fanout_grid:
            raise ValueError(
                f"optimal_fanout {self.optimal_fanout} must be part of fanout_grid "
                f"{self.fanout_grid} so figure checks can reference it"
            )

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def stream_config(self) -> StreamConfig:
        """The stream layout of this scale."""
        return StreamConfig(
            rate_kbps=600.0,
            payload_bytes=self.payload_bytes,
            source_packets_per_window=self.source_packets_per_window,
            fec_packets_per_window=self.fec_packets_per_window,
            num_windows=self.num_windows,
        )

    def network_config(self, cap_kbps: Optional[float] = None) -> NetworkConfig:
        """Network substrate with the given upload cap (default 700 kbps)."""
        return NetworkConfig(
            upload_cap_kbps=self.default_cap_kbps if cap_kbps is None else cap_kbps,
            max_backlog_seconds=self.max_backlog_seconds,
            latency_model="per-node",
            base_latency=self.base_latency,
            random_loss=self.random_loss,
        )

    def gossip_config(
        self,
        fanout: Optional[int] = None,
        refresh_every: float = 1,
        feed_me_every: float = INFINITE,
    ) -> GossipConfig:
        """Protocol knobs with this scale's timing defaults."""
        return GossipConfig(
            fanout=self.optimal_fanout if fanout is None else fanout,
            gossip_period=self.gossip_period,
            refresh_every=refresh_every,
            feed_me_every=feed_me_every,
            retransmit_timeout=self.retransmit_timeout,
            max_request_attempts=self.max_request_attempts,
            source_fanout=self.source_fanout,
        )

    def session_config(
        self,
        fanout: Optional[int] = None,
        cap_kbps: Optional[float] = None,
        refresh_every: float = 1,
        feed_me_every: float = INFINITE,
        churn_fraction: float = 0.0,
        seed_offset: int = 0,
        protocol: str = "three-phase",
    ) -> SessionConfig:
        """A full session configuration for one experiment point.

        Composed through the scenario layer's :class:`SessionBuilder`, the
        same funnel the named scenarios use, so scale-derived and
        scenario-derived sessions cannot drift apart.
        """
        churn: Optional[ChurnSchedule] = None
        if churn_fraction > 0.0:
            churn = CatastrophicChurn(time=self.churn_time, fraction=churn_fraction)
        return (
            SessionBuilder()
            .nodes(self.num_nodes)
            .seed(self.seed + seed_offset)
            .protocol(protocol)
            .gossip(self.gossip_config(fanout, refresh_every, feed_me_every))
            .stream(self.stream_config())
            .network(self.network_config(cap_kbps))
            .source_uncapped(True)
            .churn(churn)
            .failure_detection_delay(self.failure_detection_delay)
            .extra_time(self.extra_time)
            .to_config()
        )

    @property
    def stream_duration(self) -> float:
        """Length of the published stream in seconds."""
        return self.stream_config().duration

    def describe(self) -> str:
        """One-line human-readable description."""
        return (
            f"scale {self.name!r}: {self.num_nodes} nodes, "
            f"{self.stream_duration:.0f}s stream, windows of "
            f"{self.source_packets_per_window}+{self.fec_packets_per_window} packets"
        )


SMOKE = ExperimentScale(
    name="smoke",
    num_nodes=30,
    payload_bytes=1000,
    source_packets_per_window=20,
    fec_packets_per_window=2,
    num_windows=40,
    max_backlog_seconds=8.0,
    extra_time=25.0,
    fanout_grid=(3, 4, 5, 7, 10, 15, 20),
    fig2_fanouts=(4, 7, 15, 20),
    fig2_lag_grid=tuple(float(t) for t in range(0, 61, 5)),
    fig4_pairs=((5, 700.0), (20, 700.0), (20, 2000.0)),
    refresh_grid=(1, 2, 10, 100, INFINITE),
    feedme_grid=(1, 2, 10, 100, INFINITE),
    churn_grid=(0.2, 0.5, 0.8),
    churn_refresh_values=(1, INFINITE),
    fig3_caps_kbps=(2000.0,),
    optimal_fanout=7,
    fanout_collapse_expected=False,
)
"""Small and fast: integration tests and quick sanity experiments."""

REDUCED = ExperimentScale(
    name="reduced",
    num_nodes=60,
    payload_bytes=1000,
    source_packets_per_window=20,
    fec_packets_per_window=2,
    num_windows=100,
    max_backlog_seconds=10.0,
    extra_time=40.0,
)
"""Default scale for benchmarks and EXPERIMENTS.md (≈ 29 s stream, 60 nodes)."""

PAPER = ExperimentScale(
    name="paper",
    num_nodes=230,
    payload_bytes=1000,
    source_packets_per_window=101,
    fec_packets_per_window=9,
    num_windows=80,
    max_backlog_seconds=20.0,
    extra_time=90.0,
    fanout_grid=(4, 5, 6, 7, 10, 15, 20, 35, 40, 50, 80),
    fig2_fanouts=(4, 5, 6, 7, 10, 20, 35, 40, 50),
    fig2_lag_grid=tuple(float(t) for t in range(0, 151, 5)),
    fig4_pairs=((7, 700.0), (50, 700.0), (50, 1000.0), (50, 2000.0), (100, 2000.0)),
    optimal_fanout=7,
)
"""The paper's own configuration (230 nodes, 110-packet windows, ≈ 2 min)."""

# The xlarge scale and the registered "large-session" scenario are the same
# geometry by construction: the scenario spec is the single source of truth
# and the scale derives its sizing from it.
_LARGE_SESSION_SPEC = large_session()

XLARGE = ExperimentScale(
    name="xlarge",
    num_nodes=_LARGE_SESSION_SPEC.num_nodes,
    payload_bytes=_LARGE_SESSION_SPEC.stream.payload_bytes,
    source_packets_per_window=_LARGE_SESSION_SPEC.stream.source_packets_per_window,
    fec_packets_per_window=_LARGE_SESSION_SPEC.stream.fec_packets_per_window,
    num_windows=_LARGE_SESSION_SPEC.stream.num_windows,
    max_backlog_seconds=_LARGE_SESSION_SPEC.max_backlog_seconds,
    extra_time=_LARGE_SESSION_SPEC.extra_time,
    fanout_grid=(4, 5, 6, 7, 10, 15, 20, 35, 50, 80, 120, 200),
    fig2_fanouts=(4, 5, 7, 10, 20, 50, 120),
    fig2_lag_grid=tuple(float(t) for t in range(0, 151, 5)),
    fig4_pairs=((7, 700.0), (50, 700.0), (50, 1000.0), (50, 2000.0), (120, 2000.0)),
    optimal_fanout=7,
)
"""Beyond-paper size: 1,000 nodes, paper stream ratios (fast-path flagship)."""

# Same single-source-of-truth arrangement as xlarge / "large-session": the
# registered "metropolis" scenario defines the geometry, the scale derives
# its sizing from it.
_METROPOLIS_SPEC = metropolis()

METROPOLIS = ExperimentScale(
    name="metropolis",
    num_nodes=_METROPOLIS_SPEC.num_nodes,
    payload_bytes=_METROPOLIS_SPEC.stream.payload_bytes,
    source_packets_per_window=_METROPOLIS_SPEC.stream.source_packets_per_window,
    fec_packets_per_window=_METROPOLIS_SPEC.stream.fec_packets_per_window,
    num_windows=_METROPOLIS_SPEC.stream.num_windows,
    max_backlog_seconds=_METROPOLIS_SPEC.max_backlog_seconds,
    extra_time=_METROPOLIS_SPEC.extra_time,
    fanout_grid=(4, 5, 6, 7, 10, 15, 20, 35, 50, 80, 120, 200, 500),
    fig2_fanouts=(4, 5, 7, 10, 20, 50, 120),
    fig2_lag_grid=tuple(float(t) for t in range(0, 151, 5)),
    fig4_pairs=((7, 700.0), (50, 700.0), (50, 1000.0), (50, 2000.0), (120, 2000.0)),
    optimal_fanout=7,
)
"""City-scale: 10,000 nodes across shard workers (nightly-benchmark size)."""

_SCALES = {scale.name: scale for scale in (SMOKE, REDUCED, PAPER, XLARGE, METROPOLIS)}


def scale_by_name(name: str) -> ExperimentScale:
    """Look up a predefined scale by name (``smoke``/``reduced``/``paper``/``xlarge``)."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; available: {sorted(_SCALES)}"
        ) from None


def available_scales() -> List[str]:
    """Names of the predefined scales."""
    return sorted(_SCALES)
