"""Command-line entry point: regenerate paper figures and ablations.

Examples::

    python -m repro.experiments figure1 --scale smoke
    python -m repro.experiments figure7 figure8 --scale reduced
    python -m repro.experiments ablation:fec --scale smoke
    python -m repro.experiments --list

Parallel and resumable sweeps::

    # run every figure's experiment points on 4 worker processes
    python -m repro.experiments figure1 figure2 --scale reduced --jobs 4

    # persist completed points; a killed run resumes where it stopped
    python -m repro.experiments figure7 --scale paper \
        --jobs 8 --store results/paper.jsonl --resume

The figure tables of a ``--jobs N`` run are byte-identical to the serial
ones: each experiment point derives all randomness from its own seed, so
where (and in which order) points execute cannot change their results.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.sweep.cache import SummaryCache
from repro.sweep.executor import make_executor, run_sweep
from repro.sweep.spec import SweepTask
from repro.sweep.store import ResultStore

from repro.experiments.ablations import ALL_ABLATIONS
from repro.experiments.figures import ALL_FIGURES, figure_points
from repro.experiments.scale import available_scales, scale_by_name


def _available_targets() -> List[str]:
    figures = sorted(ALL_FIGURES)
    ablations = [f"ablation:{name}" for name in sorted(ALL_ABLATIONS)]
    return figures + ablations


def main(argv: List[str] | None = None) -> int:
    """Run the requested figure/ablation generators and print their tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures of 'Stretching Gossip with Live Streaming' (DSN 2009).",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="figure ids (figure1..figure8) and/or ablation:<name>",
    )
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=available_scales(),
        help="experiment scale (default: smoke)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment sweep (default: 1, serial)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        help="append completed points to this JSONL result store",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed points from --store instead of re-running them",
    )
    parser.add_argument("--list", action="store_true", help="list available targets and exit")
    arguments = parser.parse_args(argv)

    if arguments.list or not arguments.targets:
        print("Available targets:")
        for target in _available_targets():
            print(f"  {target}")
        return 0
    if arguments.jobs < 1:
        print(f"--jobs must be >= 1, got {arguments.jobs}")
        return 2
    if arguments.resume and not arguments.store:
        print("--resume requires --store PATH")
        return 2

    # Validate every target before running anything.
    figure_targets = [t for t in arguments.targets if not t.startswith("ablation:")]
    for target in figure_targets:
        if target not in ALL_FIGURES:
            print(f"unknown target {target!r}; available: {_available_targets()}")
            return 2
    for target in arguments.targets:
        if target.startswith("ablation:"):
            name = target.split(":", 1)[1]
            if name not in ALL_ABLATIONS:
                print(f"unknown ablation {name!r}; available: {sorted(ALL_ABLATIONS)}")
                return 2

    scale = scale_by_name(arguments.scale)
    executor = make_executor(arguments.jobs)
    store = ResultStore(arguments.store) if arguments.store else None
    cache = SummaryCache()
    print(f"Running {len(arguments.targets)} target(s) at {scale.describe()}")
    print(f"(jobs={arguments.jobs}" + (f", store={arguments.store}" + (", resume" if arguments.resume else "") + ")" if arguments.store else ")") + "\n")

    # Phase 1: collect every figure target's points (a dry run against a
    # recording cache) and execute them as one deduplicated sweep, so
    # overlapping points across figures run exactly once — and in parallel.
    if figure_targets:
        tasks = [
            SweepTask(point=point)
            for target in figure_targets
            for point in figure_points(target, scale)
        ]
        started = time.time()
        outcome = run_sweep(
            scale,
            tasks,
            executor=executor,
            store=store,
            resume=arguments.resume,
        )
        cache.prime(outcome.results)
        print(
            f"[sweep: executed {outcome.executed} point(s), "
            f"reused {outcome.reused} from store, "
            f"{time.time() - started:.1f}s]\n"
        )

    # Phase 2: render every target (figures read the primed cache).
    for target in arguments.targets:
        started = time.time()
        if target.startswith("ablation:"):
            name = target.split(":", 1)[1]
            result = ALL_ABLATIONS[name](
                scale,
                executor=executor,
                store=store,
                resume=arguments.resume,
            )
        else:
            result = ALL_FIGURES[target](scale, cache)
        print(result.to_table())
        print(f"\n[{target} regenerated in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
