"""Command-line entry point: regenerate paper figures and ablations.

Examples::

    python -m repro.experiments figure1 --scale smoke
    python -m repro.experiments figure7 figure8 --scale reduced
    python -m repro.experiments ablation:fec --scale smoke
    python -m repro.experiments --list
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.experiments.ablations import ALL_ABLATIONS
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.runner import RunCache
from repro.experiments.scale import available_scales, scale_by_name


def _available_targets() -> List[str]:
    figures = sorted(ALL_FIGURES)
    ablations = [f"ablation:{name}" for name in sorted(ALL_ABLATIONS)]
    return figures + ablations


def main(argv: List[str] | None = None) -> int:
    """Run the requested figure/ablation generators and print their tables."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures of 'Stretching Gossip with Live Streaming' (DSN 2009).",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help="figure ids (figure1..figure8) and/or ablation:<name>",
    )
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=available_scales(),
        help="experiment scale (default: smoke)",
    )
    parser.add_argument("--list", action="store_true", help="list available targets and exit")
    arguments = parser.parse_args(argv)

    if arguments.list or not arguments.targets:
        print("Available targets:")
        for target in _available_targets():
            print(f"  {target}")
        return 0

    scale = scale_by_name(arguments.scale)
    cache = RunCache()
    print(f"Running {len(arguments.targets)} target(s) at {scale.describe()}\n")

    for target in arguments.targets:
        started = time.time()
        if target.startswith("ablation:"):
            name = target.split(":", 1)[1]
            if name not in ALL_ABLATIONS:
                print(f"unknown ablation {name!r}; available: {sorted(ALL_ABLATIONS)}")
                return 2
            result = ALL_ABLATIONS[name](scale)
        else:
            if target not in ALL_FIGURES:
                print(f"unknown target {target!r}; available: {_available_targets()}")
                return 2
            result = ALL_FIGURES[target](scale, cache)
        print(result.to_table())
        print(f"\n[{target} regenerated in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
