"""Experiment harness: regenerate every figure of the paper's evaluation.

The paper's evaluation (Section 4) consists of eight figures; each has a
generator here that sweeps the relevant parameter, runs one
:class:`~repro.core.session.StreamingSession` per point, and returns a
:class:`FigureResult` whose series mirror the lines of the original plot.

Because a 230-node, multi-minute PlanetLab deployment is far beyond what a
pure-Python packet-level simulation can sweep in reasonable time, every
generator takes an :class:`ExperimentScale` choosing the system size, stream
length and parameter grids: ``SMOKE`` (fast, for tests), ``REDUCED`` (the
default used by the benchmark harness and EXPERIMENTS.md), ``PAPER`` (the
paper's full 230-node configuration, for users with patience) and
``XLARGE`` (1,000 nodes at the paper's stream geometry, served by the
fast path — see ``benchmarks/bench_large_session.py``).
"""

from repro.experiments.figures import (
    FigureResult,
    figure_points,
    figure1_fanout_700,
    figure2_lag_cdf,
    figure3_fanout_relaxed_caps,
    figure4_bandwidth_usage,
    figure5_refresh_rate,
    figure6_feedme_rate,
    figure7_churn_unaffected,
    figure8_churn_windows,
)
from repro.experiments.runner import ExperimentPoint, RunCache, format_rate, run_point
from repro.experiments.scale import (
    METROPOLIS,
    PAPER,
    REDUCED,
    SMOKE,
    XLARGE,
    ExperimentScale,
    scale_by_name,
)

__all__ = [
    "ExperimentPoint",
    "ExperimentScale",
    "FigureResult",
    "METROPOLIS",
    "PAPER",
    "REDUCED",
    "RunCache",
    "SMOKE",
    "XLARGE",
    "figure1_fanout_700",
    "figure2_lag_cdf",
    "figure3_fanout_relaxed_caps",
    "figure4_bandwidth_usage",
    "figure5_refresh_rate",
    "figure6_feedme_rate",
    "figure7_churn_unaffected",
    "figure8_churn_windows",
    "figure_points",
    "format_rate",
    "run_point",
    "scale_by_name",
]
