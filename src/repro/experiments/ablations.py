"""Ablation studies for the design choices the protocol relies on.

The paper keeps several mechanisms fixed across all experiments — FEC coding
inside each window, request retransmission, a well-provisioned source
proposing to 7 nodes, and (implicitly) some failure-detection delay in the
membership layer.  These ablations quantify how much each of those choices
contributes:

* :func:`retransmission_ablation` — Algorithm 1 with and without the
  retransmission timer (``K = 1`` vs ``K = 2``) under random message loss;
* :func:`fec_ablation` — windows with and without parity packets;
* :func:`detection_delay_ablation` — how long the membership layer keeps
  handing out crashed nodes, under catastrophic churn;
* :func:`source_fanout_ablation` — how many nodes the source proposes each
  packet to.

Each ablation expresses its variants as :class:`~repro.sweep.SweepTask`
lists — an experiment point plus a *config patch* reaching the knob the
point does not model — and executes them through
:func:`~repro.sweep.run_sweep`.  That routes ablations through the same
orchestration layer as the figures: pass an executor for multiprocess runs
and a store for crash-safe resume (the CLI's ``--jobs`` / ``--store`` /
``--resume`` flags do exactly that).

Each function returns a :class:`~repro.experiments.figures.FigureResult`
(one series per metric) so the results render with the same tooling as the
paper's figures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.metrics.quality import OFFLINE_LAG
from repro.metrics.report import Series
from repro.sweep.executor import run_sweep
from repro.sweep.spec import ConfigPatch, SweepTask
from repro.sweep.store import ResultStore
from repro.sweep.summary import PointSummary

from repro.experiments.figures import FigureResult
from repro.experiments.runner import ExperimentPoint
from repro.experiments.scale import REDUCED, ExperimentScale


def _run_tasks(
    scale: ExperimentScale,
    tasks: List[SweepTask],
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
) -> List[PointSummary]:
    outcome = run_sweep(scale, tasks, executor=executor, store=store, resume=resume)
    return outcome.summaries(tasks)


def _result_row(summary: PointSummary) -> dict:
    return {
        "viewing_20s": summary.viewing_percentage(20.0),
        "viewing_offline": summary.viewing_percentage(OFFLINE_LAG),
        "complete_windows_20s": summary.average_complete_windows_percentage(20.0),
        "delivery": summary.delivery_percentage,
    }


def _figure_from_rows(
    figure_id: str,
    title: str,
    x_label: str,
    scale: ExperimentScale,
    xs: Sequence[float],
    rows: Sequence[dict],
    notes: str = "",
) -> FigureResult:
    result = FigureResult(
        figure_id=figure_id,
        title=title,
        x_label=x_label,
        y_label="percentage",
        scale_name=scale.name,
        notes=notes,
    )
    metrics = [
        ("viewing_20s", "% nodes <1% jitter (20s lag)"),
        ("viewing_offline", "% nodes <1% jitter (offline)"),
        ("complete_windows_20s", "avg % complete windows (20s lag)"),
        ("delivery", "% packets delivered"),
    ]
    for key, label in metrics:
        series = Series(label=label)
        for x, row in zip(xs, rows):
            series.add(x, row[key])
        result.series.append(series)
    return result


def _task(
    scale: ExperimentScale,
    patch: ConfigPatch,
    seed_offset: int = 0,
    churn_fraction: float = 0.0,
) -> SweepTask:
    point = ExperimentPoint(
        scale_name=scale.name,
        seed_offset=seed_offset,
        churn_fraction=churn_fraction,
    )
    return SweepTask(point=point, patch=patch)


def retransmission_ablation(
    scale: ExperimentScale = REDUCED,
    loss_probability: float = 0.05,
    seed_offset: int = 0,
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
) -> FigureResult:
    """Quality with and without retransmission under elevated random loss.

    The x axis is ``K``, the maximum number of REQUESTs per packet (1 means
    the retransmission timer is effectively disabled).
    """
    attempts_grid = (1, 2, 3)
    tasks = [
        _task(
            scale,
            patch=(
                ("gossip.max_request_attempts", attempts),
                ("network.random_loss", loss_probability),
            ),
            seed_offset=seed_offset,
        )
        for attempts in attempts_grid
    ]
    rows = [_result_row(s) for s in _run_tasks(scale, tasks, executor, store, resume)]
    return _figure_from_rows(
        figure_id="ablation-retransmission",
        title=f"Retransmission ablation (random loss {loss_probability:.0%})",
        x_label="max request attempts K",
        scale=scale,
        xs=[float(a) for a in attempts_grid],
        rows=rows,
        notes="K = 1 disables retransmission; the paper uses retransmission throughout.",
    )


def fec_ablation(
    scale: ExperimentScale = REDUCED,
    seed_offset: int = 0,
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
) -> FigureResult:
    """Quality with and without the per-window FEC packets.

    The x axis is the number of parity packets per window; 0 removes FEC
    entirely (every source packet becomes indispensable).  The window's
    source-packet count is kept constant so the comparison isolates the
    redundancy, at the cost of a slightly higher stream rate with FEC.
    """
    fec_grid = (0, scale.fec_packets_per_window, scale.fec_packets_per_window * 2)
    tasks = [
        _task(
            scale,
            patch=(("stream.fec_packets_per_window", fec_packets),),
            seed_offset=seed_offset,
        )
        for fec_packets in fec_grid
    ]
    rows = [_result_row(s) for s in _run_tasks(scale, tasks, executor, store, resume)]
    return _figure_from_rows(
        figure_id="ablation-fec",
        title="FEC ablation (parity packets per window)",
        x_label="FEC packets per window",
        scale=scale,
        xs=[float(f) for f in fec_grid],
        rows=rows,
        notes="0 parity packets means a single missing packet breaks its window.",
    )


def detection_delay_ablation(
    scale: ExperimentScale = REDUCED,
    churn_fraction: float = 0.35,
    delays: Sequence[float] = (0.0, 2.0, 5.0, 15.0),
    seed_offset: int = 0,
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
) -> FigureResult:
    """How the membership layer's failure-detection delay shapes churn recovery.

    The paper observes that survivors' losses concentrate in a few seconds
    around the churn event; that interval is exactly the time during which
    crashed nodes keep being selected as partners.
    """
    tasks = [
        _task(
            scale,
            patch=(("failure_detection_delay", delay),),
            seed_offset=seed_offset,
            churn_fraction=churn_fraction,
        )
        for delay in delays
    ]
    rows = [_result_row(s) for s in _run_tasks(scale, tasks, executor, store, resume)]
    return _figure_from_rows(
        figure_id="ablation-detection-delay",
        title=f"Failure-detection delay ablation ({churn_fraction:.0%} churn, X = 1)",
        x_label="detection delay (s)",
        scale=scale,
        xs=[float(d) for d in delays],
        rows=rows,
        notes="0 s is an oracle failure detector; larger delays stretch the post-churn dip.",
    )


def source_fanout_ablation(
    scale: ExperimentScale = REDUCED,
    source_fanouts: Sequence[int] = (1, 3, 7, 14),
    seed_offset: int = 0,
    executor=None,
    store: Optional[ResultStore] = None,
    resume: bool = False,
) -> FigureResult:
    """How many first-hop copies the source injects (the paper fixes 7)."""
    tasks = [
        _task(
            scale,
            patch=(("gossip.source_fanout", source_fanout),),
            seed_offset=seed_offset,
        )
        for source_fanout in source_fanouts
    ]
    rows = [_result_row(s) for s in _run_tasks(scale, tasks, executor, store, resume)]
    return _figure_from_rows(
        figure_id="ablation-source-fanout",
        title="Source fanout ablation",
        x_label="source fanout",
        scale=scale,
        xs=[float(f) for f in source_fanouts],
        rows=rows,
        notes="The source is uncapped; its fanout controls first-hop redundancy.",
    )


ALL_ABLATIONS = {
    "retransmission": retransmission_ablation,
    "fec": fec_ablation,
    "detection-delay": detection_delay_ablation,
    "source-fanout": source_fanout_ablation,
}
"""All ablation generators keyed by short name (used by the CLI)."""
