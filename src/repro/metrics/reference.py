"""Reference (pre-fast-path) quality analyzer, kept for pinning and benchmarks.

This is the original per-call implementation of
:class:`~repro.metrics.quality.StreamQualityAnalyzer`, preserved verbatim:
it re-derives every quantity by walking the per-window lag lists on each
call (``node_jitter`` scans all windows per lag value, ``node_critical_lag``
re-sorts the per-window critical lags per call).

Two consumers keep it alive:

* the equivalence tests in ``tests/metrics/test_quality_fast_path.py``,
  which pin the fast one-pass analyzer against this implementation on
  randomized delivery logs, float-for-float;
* ``benchmarks/bench_large_session.py``, which reports the measured
  speedup of the fast path over this implementation on a real session's
  delivery log.

Do not "optimize" this module — its value is being the slow, obviously
correct baseline.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.metrics.delivery import DeliveryLog
from repro.network.message import NodeId
from repro.streaming.schedule import StreamSchedule

OFFLINE_LAG: float = math.inf
"""Playout lag representing offline viewing (download now, watch later)."""


class ReferenceQualityAnalyzer:
    """The pre-fast-path quality analyzer (see module docstring)."""

    def __init__(
        self,
        schedule: StreamSchedule,
        deliveries: DeliveryLog,
        nodes: Sequence[NodeId],
    ) -> None:
        self._schedule = schedule
        self._deliveries = deliveries
        self._nodes: List[NodeId] = list(nodes)
        # Per node, per window: sorted per-packet lags of delivered packets.
        self._window_lags: Dict[NodeId, List[List[float]]] = {}
        self._precompute()

    def _precompute(self) -> None:
        schedule = self._schedule
        num_windows = schedule.num_windows
        per_window = schedule.config.packets_per_window
        raw = self._deliveries.raw()
        publish_times = [descriptor.publish_time for descriptor in schedule.packets()]

        for node_id in self._nodes:
            node_deliveries = raw.get(node_id, {})
            lags: List[List[float]] = [[] for _ in range(num_windows)]
            for packet_id, delivered_at in node_deliveries.items():
                if packet_id >= len(publish_times):
                    continue
                window_index = packet_id // per_window
                lags[window_index].append(delivered_at - publish_times[packet_id])
            for window_lags in lags:
                window_lags.sort()
            self._window_lags[node_id] = lags

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        """The nodes covered by this analyzer."""
        return list(self._nodes)

    @property
    def num_windows(self) -> int:
        """Number of windows in the analyzed stream."""
        return self._schedule.num_windows

    @property
    def required_packets(self) -> int:
        """Packets needed to decode one window (101 with paper defaults)."""
        return self._schedule.config.source_packets_per_window

    # ------------------------------------------------------------------
    # Per-window / per-node quantities
    # ------------------------------------------------------------------
    def window_viewable(self, node_id: NodeId, window_index: int, lag: float) -> bool:
        """Whether ``node_id`` can decode ``window_index`` at playout lag ``lag``."""
        lags = self._window_lags[node_id][window_index]
        required = self.required_packets
        if len(lags) < required:
            return False
        if math.isinf(lag):
            return True
        on_time = bisect.bisect_right(lags, lag)
        return on_time >= required

    def window_critical_lag(self, node_id: NodeId, window_index: int) -> float:
        """Smallest lag at which the window decodes (``inf`` if it never does)."""
        lags = self._window_lags[node_id][window_index]
        required = self.required_packets
        if len(lags) < required:
            return math.inf
        return lags[required - 1]

    def node_jitter(self, node_id: NodeId, lag: float) -> float:
        """Fraction of windows ``node_id`` cannot decode at playout lag ``lag``."""
        num_windows = self.num_windows
        if num_windows == 0:
            return 0.0
        jittered = sum(
            1
            for window_index in range(num_windows)
            if not self.window_viewable(node_id, window_index, lag)
        )
        return jittered / num_windows

    def node_views_stream(self, node_id: NodeId, lag: float, max_jitter: float = 0.01) -> bool:
        """The paper's viewing criterion: jitter at ``lag`` is at most ``max_jitter``."""
        return self.node_jitter(node_id, lag) <= max_jitter

    def node_complete_window_ratio(self, node_id: NodeId, lag: float) -> float:
        """Fraction of windows ``node_id`` decodes at ``lag`` (Figure 8's metric)."""
        return 1.0 - self.node_jitter(node_id, lag)

    def node_critical_lag(self, node_id: NodeId, max_jitter: float = 0.01) -> float:
        """Smallest playout lag at which the node views the stream."""
        num_windows = self.num_windows
        if num_windows == 0:
            return 0.0
        critical_lags = sorted(
            self.window_critical_lag(node_id, window_index)
            for window_index in range(num_windows)
        )
        needed_windows = math.ceil((1.0 - max_jitter) * num_windows)
        needed_windows = min(max(needed_windows, 1), num_windows)
        return critical_lags[needed_windows - 1]

    # ------------------------------------------------------------------
    # Aggregates over nodes (the paper's figures)
    # ------------------------------------------------------------------
    def viewing_ratio(
        self,
        lag: float,
        max_jitter: float = 0.01,
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> float:
        """Fraction of nodes viewing the stream with ≤ ``max_jitter`` at ``lag``."""
        node_list = list(nodes) if nodes is not None else self._nodes
        if not node_list:
            return 0.0
        viewing = sum(
            1 for node_id in node_list if self.node_views_stream(node_id, lag, max_jitter)
        )
        return viewing / len(node_list)

    def average_complete_window_ratio(
        self,
        lag: float,
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> float:
        """Average fraction of decodable windows across nodes (Figure 8)."""
        node_list = list(nodes) if nodes is not None else self._nodes
        if not node_list:
            return 0.0
        total = sum(self.node_complete_window_ratio(node_id, lag) for node_id in node_list)
        return total / len(node_list)

    def critical_lags(self, nodes: Optional[Iterable[NodeId]] = None) -> List[float]:
        """Critical lag of every node (Figure 2's underlying distribution)."""
        node_list = list(nodes) if nodes is not None else self._nodes
        return [self.node_critical_lag(node_id) for node_id in node_list]

    def lag_cdf(
        self,
        lag_grid: Sequence[float],
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> List[float]:
        """Cumulative fraction of nodes whose critical lag is ≤ each grid value."""
        node_list = list(nodes) if nodes is not None else self._nodes
        if not node_list:
            return [0.0 for _ in lag_grid]
        critical = sorted(self.node_critical_lag(node_id) for node_id in node_list)
        fractions: List[float] = []
        for lag in lag_grid:
            count = bisect.bisect_right(critical, lag)
            fractions.append(count / len(node_list))
        return fractions

    def delivery_ratio(self, node_id: NodeId) -> float:
        """Fraction of all stream packets ever delivered to ``node_id``."""
        total = self._schedule.num_packets
        if total == 0:
            return 0.0
        return self._deliveries.packets_delivered(node_id) / total
