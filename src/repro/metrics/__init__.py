"""Metrics: from raw delivery events to the paper's evaluation quantities.

The paper evaluates two stream-level metrics (Section 4):

* **stream lag** — the difference between the time a packet is published by
  the source and the time it is delivered to a node's player;
* **stream quality** — the percentage of FEC windows that are viewable, a
  window being *jittered* when fewer than 101 of its 110 packets arrive by
  the playout deadline.  A node "views the stream" when at most 1 % of its
  windows are jittered.

plus the per-node upload bandwidth usage of Figure 4.

This package turns the raw observations collected during a run — the
:class:`DeliveryLog` of (node, packet, time) triples and the network's
:class:`~repro.network.stats.TrafficStats` — into those quantities.
"""

from repro.metrics.bandwidth import BandwidthUsage
from repro.metrics.delivery import DeliveryLog
from repro.metrics.quality import OFFLINE_LAG, StreamQualityAnalyzer
from repro.metrics.report import Series, format_series_table, format_table

__all__ = [
    "BandwidthUsage",
    "DeliveryLog",
    "OFFLINE_LAG",
    "Series",
    "StreamQualityAnalyzer",
    "format_series_table",
    "format_table",
]
