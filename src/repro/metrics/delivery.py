"""The delivery log: every first-time packet delivery observed in a run.

Gossip nodes invoke their delivery listener exactly once per (node, packet);
the :class:`DeliveryLog` is the listener used by
:class:`repro.core.session.StreamingSession` and is the single source of
truth for all quality and lag metrics.

Fast path
---------
When the log is *bound to a schedule* (``bind_schedule``, done automatically
by the streaming session), every :meth:`record` call also appends the
delivery's **lag** — delivery time minus publish time — to a compact
per-(node, window) ``array('d')``.  The quality analyzer then consumes those
arrays directly instead of re-walking hundreds of thousands of per-delivery
dictionary entries per analysis pass, which is what makes 1,000-node
sessions analyzable in milliseconds.  The per-delivery mapping is still kept
(it backs :meth:`delivery_time`, :meth:`raw` and duplicate suppression), so
binding changes nothing observable — only the analysis cost.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional

from repro.network.message import NodeId
from repro.streaming.packets import PacketId
from repro.streaming.schedule import StreamSchedule


class DeliveryLog:
    """Records the first delivery time of every packet at every node.

    Parameters
    ----------
    schedule:
        Optional stream schedule to bind immediately (see
        :meth:`bind_schedule`).  Unbound logs behave exactly as before and
        can be bound later — existing entries are back-filled.
    """

    def __init__(self, schedule: Optional[StreamSchedule] = None) -> None:
        self._by_node: Dict[NodeId, Dict[PacketId, float]] = {}
        self._total_deliveries = 0
        self._schedule: Optional[StreamSchedule] = None
        self._publish_times: Optional[array] = None
        self._per_window = 0
        self._num_windows = 0
        self._num_packets = 0
        # Per node: one array('d') of lags per window, in delivery order.
        self._window_lags: Dict[NodeId, List[array]] = {}
        if schedule is not None:
            self.bind_schedule(schedule)

    # ------------------------------------------------------------------
    # Schedule binding (the fast path)
    # ------------------------------------------------------------------
    @property
    def schedule(self) -> Optional[StreamSchedule]:
        """The bound stream schedule, or ``None`` for a plain log."""
        return self._schedule

    def bind_schedule(self, schedule: StreamSchedule) -> None:
        """Bind a schedule: future (and past) deliveries accumulate lags.

        Re-binding replaces the previous binding; deliveries already
        recorded are back-filled against the new schedule, so a log can be
        bound at any point without losing information.
        """
        config = schedule.config
        self._schedule = schedule
        self._per_window = config.packets_per_window
        self._num_windows = schedule.num_windows
        self._num_packets = schedule.num_packets
        self._publish_times = array(
            "d", (descriptor.publish_time for descriptor in schedule.packets())
        )
        self._window_lags = {}
        for node_id, node_log in self._by_node.items():
            for packet_id, delivered_at in node_log.items():
                self._accumulate_lag(node_id, packet_id, delivered_at)

    def _accumulate_lag(self, node_id: NodeId, packet_id: PacketId, time: float) -> None:
        if not 0 <= packet_id < self._num_packets:
            return
        lags = self._window_lags.get(node_id)
        if lags is None:
            lags = [array("d") for _ in range(self._num_windows)]
            self._window_lags[node_id] = lags
        lags[packet_id // self._per_window].append(time - self._publish_times[packet_id])

    def window_lags_of(self, node_id: NodeId) -> Optional[List[array]]:
        """Per-window lag arrays of one node (unsorted, delivery order).

        ``None`` when the log is unbound; an empty-window list is returned
        for bound logs whose node never delivered anything.  The arrays are
        the log's own accumulators — treat them as read-only.
        """
        if self._publish_times is None:
            return None
        lags = self._window_lags.get(node_id)
        if lags is None:
            return [array("d") for _ in range(self._num_windows)]
        return lags

    # ------------------------------------------------------------------
    # Recording (used as a GossipNode delivery listener)
    # ------------------------------------------------------------------
    def record(self, node_id: NodeId, packet_id: PacketId, time: float) -> None:
        """Record one first-time delivery.  Duplicate records are ignored."""
        node_log = self._by_node.setdefault(node_id, {})
        if packet_id in node_log:
            return
        node_log[packet_id] = time
        self._total_deliveries += 1
        if self._publish_times is not None:
            self._accumulate_lag(node_id, packet_id, time)

    def __call__(self, node_id: NodeId, packet_id: PacketId, time: float) -> None:
        """Alias for :meth:`record`, so the log can be passed as a listener."""
        self.record(node_id, packet_id, time)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_deliveries(self) -> int:
        """Total number of (node, packet) deliveries recorded."""
        return self._total_deliveries

    def nodes(self) -> Iterable[NodeId]:
        """Node ids that delivered at least one packet."""
        return tuple(self._by_node)

    def deliveries_of(self, node_id: NodeId) -> Dict[PacketId, float]:
        """Mapping packet id → delivery time for one node (possibly empty)."""
        return dict(self._by_node.get(node_id, {}))

    def delivery_time(self, node_id: NodeId, packet_id: PacketId) -> Optional[float]:
        """Delivery time of a packet at a node, or ``None`` if never delivered."""
        node_log = self._by_node.get(node_id)
        if node_log is None:
            return None
        return node_log.get(packet_id)

    def packets_delivered(self, node_id: NodeId) -> int:
        """Number of distinct packets delivered to ``node_id``."""
        return len(self._by_node.get(node_id, {}))

    def raw(self) -> Dict[NodeId, Dict[PacketId, float]]:
        """Direct (read-only by convention) access to the underlying mapping.

        The reference quality analyzer iterates over every delivery;
        exposing the raw dictionaries avoids copying hundreds of thousands
        of entries.
        """
        return self._by_node

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle the observations, not the derived lag accumulators.

        Worker processes ship results back through pickles; the lag arrays
        and publish-time table are pure derivations of (deliveries,
        schedule), so they are rebuilt on unpickle instead of being copied
        across the process boundary.
        """
        return {
            "by_node": self._by_node,
            "total_deliveries": self._total_deliveries,
            "schedule": self._schedule,
        }

    def __setstate__(self, state) -> None:
        self.__init__()
        self._by_node = state["by_node"]
        self._total_deliveries = state["total_deliveries"]
        schedule = state["schedule"]
        if schedule is not None:
            self.bind_schedule(schedule)
