"""The delivery log: every first-time packet delivery observed in a run.

Gossip nodes invoke their delivery listener exactly once per (node, packet);
the :class:`DeliveryLog` is the listener used by
:class:`repro.core.session.StreamingSession` and is the single source of
truth for all quality and lag metrics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.network.message import NodeId
from repro.streaming.packets import PacketId


class DeliveryLog:
    """Records the first delivery time of every packet at every node."""

    def __init__(self) -> None:
        self._by_node: Dict[NodeId, Dict[PacketId, float]] = {}
        self._total_deliveries = 0

    # ------------------------------------------------------------------
    # Recording (used as a GossipNode delivery listener)
    # ------------------------------------------------------------------
    def record(self, node_id: NodeId, packet_id: PacketId, time: float) -> None:
        """Record one first-time delivery.  Duplicate records are ignored."""
        node_log = self._by_node.setdefault(node_id, {})
        if packet_id in node_log:
            return
        node_log[packet_id] = time
        self._total_deliveries += 1

    def __call__(self, node_id: NodeId, packet_id: PacketId, time: float) -> None:
        """Alias for :meth:`record`, so the log can be passed as a listener."""
        self.record(node_id, packet_id, time)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_deliveries(self) -> int:
        """Total number of (node, packet) deliveries recorded."""
        return self._total_deliveries

    def nodes(self) -> Iterable[NodeId]:
        """Node ids that delivered at least one packet."""
        return tuple(self._by_node)

    def deliveries_of(self, node_id: NodeId) -> Dict[PacketId, float]:
        """Mapping packet id → delivery time for one node (possibly empty)."""
        return dict(self._by_node.get(node_id, {}))

    def delivery_time(self, node_id: NodeId, packet_id: PacketId) -> Optional[float]:
        """Delivery time of a packet at a node, or ``None`` if never delivered."""
        node_log = self._by_node.get(node_id)
        if node_log is None:
            return None
        return node_log.get(packet_id)

    def packets_delivered(self, node_id: NodeId) -> int:
        """Number of distinct packets delivered to ``node_id``."""
        return len(self._by_node.get(node_id, {}))

    def raw(self) -> Dict[NodeId, Dict[PacketId, float]]:
        """Direct (read-only by convention) access to the underlying mapping.

        The quality analyzer iterates over every delivery; exposing the raw
        dictionaries avoids copying hundreds of thousands of entries.
        """
        return self._by_node
