"""Per-node upload bandwidth usage (Figure 4).

Figure 4 plots, for several (fanout, cap) combinations, the upload bandwidth
actually used by every node, sorted from the largest contributor to the
smallest.  The interesting observation is that even with a homogeneous cap
the distribution is heterogeneous, and the heterogeneity grows with spare
capacity.

:class:`BandwidthUsage` derives that curve from the network's traffic
statistics and the measured duration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.network.message import NodeId
from repro.network.stats import TrafficStats


class BandwidthUsage:
    """Upload usage of each node over a measurement duration.

    Parameters
    ----------
    stats:
        The traffic statistics collected by the network during the run.
    duration_seconds:
        Length of the interval over which the average is taken (the session
        uses the full run duration — stream plus drain — so saturated nodes
        report at most their cap).
    nodes:
        Nodes to include; defaults to every node that sent traffic.
    """

    def __init__(
        self,
        stats: TrafficStats,
        duration_seconds: float,
        nodes: Optional[Sequence[NodeId]] = None,
    ) -> None:
        if duration_seconds <= 0.0:
            raise ValueError(f"duration must be positive, got {duration_seconds!r}")
        self._stats = stats
        self.duration_seconds = float(duration_seconds)
        self._nodes: List[NodeId] = list(nodes) if nodes is not None else list(stats.nodes())

    def node_upload_kbps(self, node_id: NodeId) -> float:
        """Average upload rate of one node over the measurement duration."""
        return self._stats.node(node_id).upload_kbps(self.duration_seconds)

    def per_node(self) -> Dict[NodeId, float]:
        """Upload rate of every analyzed node, keyed by node id."""
        return {node_id: self.node_upload_kbps(node_id) for node_id in self._nodes}

    def sorted_usage(self, descending: bool = True) -> List[float]:
        """Upload rates sorted by contribution — the x-axis ordering of Figure 4."""
        return sorted(self.per_node().values(), reverse=descending)

    def mean_kbps(self) -> float:
        """Average upload rate across the analyzed nodes."""
        usage = self.per_node()
        if not usage:
            return 0.0
        return sum(usage.values()) / len(usage)

    def max_kbps(self) -> float:
        """Largest per-node upload rate."""
        usage = self.per_node()
        return max(usage.values()) if usage else 0.0

    def heterogeneity(self) -> float:
        """Coefficient of variation of per-node upload rates.

        Near 0 when every node contributes equally (the 700 kbps saturated
        regime); grows with spare capacity (the 2000 kbps regime).
        """
        usage = list(self.per_node().values())
        if not usage:
            return 0.0
        mean = sum(usage) / len(usage)
        if mean == 0.0:
            return 0.0
        variance = sum((value - mean) ** 2 for value in usage) / len(usage)
        return variance ** 0.5 / mean

    def top_contributor_share(self, top_fraction: float = 0.1) -> float:
        """Fraction of total upload carried by the top ``top_fraction`` of nodes."""
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction!r}")
        usage = self.sorted_usage(descending=True)
        if not usage:
            return 0.0
        total = sum(usage)
        if total == 0.0:
            return 0.0
        top_count = max(1, int(round(len(usage) * top_fraction)))
        return sum(usage[:top_count]) / total

    def filtered(self, nodes: Iterable[NodeId]) -> "BandwidthUsage":
        """A new view restricted to ``nodes`` (e.g. survivors only)."""
        return BandwidthUsage(self._stats, self.duration_seconds, list(nodes))
