"""Plain-text rendering of experiment results.

The benchmark harness regenerates the paper's figures as *series* — named
sequences of (x, y) points — and prints them as aligned text tables, since
the environment has no plotting stack.  These helpers keep that rendering in
one place so every figure generator and example prints consistently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass
class Series:
    """One named curve of a figure: a label and its (x, y) points."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point to the series."""
        self.points.append((x, y))

    def xs(self) -> List[float]:
        """The x coordinates, in insertion order."""
        return [x for x, _ in self.points]

    def ys(self) -> List[float]:
        """The y coordinates, in insertion order."""
        return [y for _, y in self.points]

    def y_at(self, x: float) -> float:
        """The y value recorded for ``x`` (exact match required)."""
        for point_x, point_y in self.points:
            if point_x == x:
                return point_y
        raise KeyError(f"series {self.label!r} has no point at x={x!r}")

    def max_y(self) -> float:
        """Largest y value of the series (0.0 when empty)."""
        return max(self.ys(), default=0.0)

    def argmax_x(self) -> float:
        """x coordinate of the largest y value."""
        if not self.points:
            raise ValueError(f"series {self.label!r} is empty")
        return max(self.points, key=lambda point: point[1])[0]


def _format_value(value: float, precision: int = 1) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 1,
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered_rows = [
        [
            _format_value(cell, precision) if isinstance(cell, (int, float)) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = " | ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_series_table(
    series_list: Sequence[Series],
    x_label: str = "x",
    precision: int = 1,
) -> str:
    """Render several series sharing (roughly) the same x grid as one table.

    Missing points (a series without a value at some x) render as ``-``.
    """
    all_xs: List[float] = []
    seen: Dict[float, None] = {}
    for series in series_list:
        for x in series.xs():
            if x not in seen:
                seen[x] = None
                all_xs.append(x)

    headers = [x_label] + [series.label for series in series_list]
    rows: List[List[object]] = []
    for x in all_xs:
        row: List[object] = [x]
        for series in series_list:
            try:
                row.append(series.y_at(x))
            except KeyError:
                row.append("-")
        rows.append(row)
    return format_table(headers, rows, precision=precision)


def percentage(fraction: float) -> float:
    """Convert a 0–1 fraction to a 0–100 percentage."""
    return fraction * 100.0
