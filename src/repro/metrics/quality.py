"""Stream quality and stream lag analysis.

All of the paper's evaluation quantities derive from one observation per
(node, window): the sorted list of per-packet *lags* — delivery time minus
publish time — of the window's packets that were eventually delivered.

From those sorted lags, for any playout lag ``L``:

* the window is **viewable at lag L** iff at least ``required_packets`` of
  its packets have individual lag ≤ L;
* a node's **jitter at lag L** is the fraction of windows not viewable;
* a node **views the stream** at lag L if its jitter is ≤ 1 % (Figures 1, 3,
  5, 6, 7);
* a node's **critical lag** (Figure 2) is the smallest L at which it views
  the stream — computed exactly from the per-window critical lags;
* the **complete-window ratio** at lag L (Figure 8) is the fraction of
  windows viewable at L, averaged over nodes.

"Offline viewing" is simply ``L = ∞`` (:data:`OFFLINE_LAG`).

Fast path
---------
A window is viewable at ``L`` iff its *critical lag* (the
``required``-th-smallest packet lag, ``∞`` when fewer than ``required``
packets ever arrived) is ≤ ``L``.  The analyzer therefore precomputes, per
node, the **sorted array of finite window-critical lags** (plus a count of
never-decodable windows) exactly once; every jitter / viewing /
complete-window / CDF query over any number of lag values then reduces to
one ``bisect`` per (node, lag) instead of a scan over all windows.  When the
delivery log is bound to the analyzed schedule (sessions do this), the
per-window lag arrays are taken straight from the log's incremental
accumulators, so the analyzer never iterates per-delivery dictionaries at
all.  Results are float-for-float identical to
:class:`repro.metrics.reference.ReferenceQualityAnalyzer` — pinned by test.
"""

from __future__ import annotations

import bisect
import math
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.delivery import DeliveryLog
from repro.network.message import NodeId
from repro.streaming.schedule import StreamSchedule

OFFLINE_LAG: float = math.inf
"""Playout lag representing offline viewing (download now, watch later)."""


class StreamQualityAnalyzer:
    """Computes jitter, viewing ratios, critical lags and window completeness.

    Parameters
    ----------
    schedule:
        The stream schedule of the run (windows, publish times, thresholds).
    deliveries:
        The run's delivery log.
    nodes:
        The node ids to analyze (typically all non-source nodes, or the
        survivors of a churn experiment).  Nodes with no deliveries at all
        are still analyzed — they simply have 100 % jitter.
    """

    def __init__(
        self,
        schedule: StreamSchedule,
        deliveries: DeliveryLog,
        nodes: Sequence[NodeId],
    ) -> None:
        self._schedule = schedule
        self._deliveries = deliveries
        self._nodes: List[NodeId] = list(nodes)
        # Per node, per window: sorted per-packet lags of delivered packets.
        self._window_lags: Dict[NodeId, List[array]] = {}
        # Per node: sorted finite window-critical lags + never-decodable count.
        self._critical_finite: Dict[NodeId, array] = {}
        self._critical_inf: Dict[NodeId, int] = {}
        self._precompute()

    def _node_window_lags(
        self, node_id: NodeId, publish_times: Optional[List[float]]
    ) -> List[array]:
        """One node's per-window lag arrays (from the log's accumulators when
        the log is bound to this analyzer's stream, rebuilt otherwise)."""
        deliveries = self._deliveries
        if publish_times is None:
            return deliveries.window_lags_of(node_id)

        schedule = self._schedule
        per_window = schedule.config.packets_per_window
        num_packets = schedule.num_packets
        lags: List[array] = [array("d") for _ in range(schedule.num_windows)]
        for packet_id, delivered_at in deliveries.raw().get(node_id, {}).items():
            if packet_id >= num_packets:
                continue
            lags[packet_id // per_window].append(
                delivered_at - publish_times[packet_id]
            )
        return lags

    def _precompute(self) -> None:
        required = self.required_packets
        bound = self._deliveries.schedule
        publish_times: Optional[List[float]] = None
        if bound is None or bound.config != self._schedule.config:
            # Unbound (or differently-bound) log: fall back to scanning the
            # raw per-delivery mapping, hoisting the publish-time table out
            # of the per-node loop.
            publish_times = [
                descriptor.publish_time for descriptor in self._schedule.packets()
            ]
        for node_id in self._nodes:
            window_lags = self._node_window_lags(node_id, publish_times)
            finite = array("d")
            inf_count = 0
            sorted_windows: List[array] = []
            for lags in window_lags:
                ordered = array("d", sorted(lags))
                sorted_windows.append(ordered)
                if len(ordered) < required:
                    inf_count += 1
                else:
                    finite.append(ordered[required - 1])
            finite = array("d", sorted(finite))
            self._window_lags[node_id] = sorted_windows
            self._critical_finite[node_id] = finite
            self._critical_inf[node_id] = inf_count

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        """The nodes covered by this analyzer."""
        return list(self._nodes)

    @property
    def num_windows(self) -> int:
        """Number of windows in the analyzed stream."""
        return self._schedule.num_windows

    @property
    def required_packets(self) -> int:
        """Packets needed to decode one window (101 with paper defaults)."""
        return self._schedule.config.source_packets_per_window

    # ------------------------------------------------------------------
    # Per-window / per-node quantities
    # ------------------------------------------------------------------
    def window_viewable(self, node_id: NodeId, window_index: int, lag: float) -> bool:
        """Whether ``node_id`` can decode ``window_index`` at playout lag ``lag``."""
        lags = self._window_lags[node_id][window_index]
        required = self.required_packets
        if len(lags) < required:
            return False
        if math.isinf(lag):
            return True
        return lags[required - 1] <= lag

    def window_critical_lag(self, node_id: NodeId, window_index: int) -> float:
        """Smallest lag at which the window decodes (``inf`` if it never does)."""
        lags = self._window_lags[node_id][window_index]
        required = self.required_packets
        if len(lags) < required:
            return math.inf
        return lags[required - 1]

    def _viewable_windows(self, node_id: NodeId, lag: float) -> int:
        finite = self._critical_finite[node_id]
        if math.isinf(lag):
            return len(finite)
        return bisect.bisect_right(finite, lag)

    def node_jitter(self, node_id: NodeId, lag: float) -> float:
        """Fraction of windows ``node_id`` cannot decode at playout lag ``lag``."""
        num_windows = self.num_windows
        if num_windows == 0:
            return 0.0
        jittered = num_windows - self._viewable_windows(node_id, lag)
        return jittered / num_windows

    def node_views_stream(self, node_id: NodeId, lag: float, max_jitter: float = 0.01) -> bool:
        """The paper's viewing criterion: jitter at ``lag`` is at most ``max_jitter``."""
        return self.node_jitter(node_id, lag) <= max_jitter

    def node_complete_window_ratio(self, node_id: NodeId, lag: float) -> float:
        """Fraction of windows ``node_id`` decodes at ``lag`` (Figure 8's metric)."""
        return 1.0 - self.node_jitter(node_id, lag)

    def node_critical_lag(self, node_id: NodeId, max_jitter: float = 0.01) -> float:
        """Smallest playout lag at which the node views the stream.

        Equals the ``ceil((1 - max_jitter) * W)``-th smallest per-window
        critical lag; ``inf`` when too many windows never decode at all.
        """
        num_windows = self.num_windows
        if num_windows == 0:
            return 0.0
        needed_windows = math.ceil((1.0 - max_jitter) * num_windows)
        needed_windows = min(max(needed_windows, 1), num_windows)
        finite = self._critical_finite[node_id]
        if needed_windows <= len(finite):
            return finite[needed_windows - 1]
        return math.inf

    # ------------------------------------------------------------------
    # Aggregates over nodes (the paper's figures)
    # ------------------------------------------------------------------
    def viewing_ratio(
        self,
        lag: float,
        max_jitter: float = 0.01,
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> float:
        """Fraction of nodes viewing the stream with ≤ ``max_jitter`` at ``lag``.

        This is the y-axis of Figures 1, 3, 5, 6 and 7.
        """
        node_list = list(nodes) if nodes is not None else self._nodes
        if not node_list:
            return 0.0
        viewing = sum(
            1 for node_id in node_list if self.node_views_stream(node_id, lag, max_jitter)
        )
        return viewing / len(node_list)

    def viewing_ratio_curve(
        self,
        lags: Sequence[float],
        max_jitter: float = 0.01,
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> List[Tuple[float, float]]:
        """``(lag, viewing_ratio)`` for every lag in ``lags``.

        A convenience over per-lag calls; each point costs one bisect per
        node thanks to the precomputed critical-lag arrays.
        """
        node_list = list(nodes) if nodes is not None else self._nodes
        return [(lag, self.viewing_ratio(lag, max_jitter, node_list)) for lag in lags]

    def average_complete_window_ratio(
        self,
        lag: float,
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> float:
        """Average fraction of decodable windows across nodes (Figure 8)."""
        node_list = list(nodes) if nodes is not None else self._nodes
        if not node_list:
            return 0.0
        total = sum(self.node_complete_window_ratio(node_id, lag) for node_id in node_list)
        return total / len(node_list)

    def complete_window_curve(
        self,
        lags: Sequence[float],
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> List[Tuple[float, float]]:
        """``(lag, average_complete_window_ratio)`` for every lag in ``lags``."""
        node_list = list(nodes) if nodes is not None else self._nodes
        return [(lag, self.average_complete_window_ratio(lag, node_list)) for lag in lags]

    def critical_lags(self, nodes: Optional[Iterable[NodeId]] = None) -> List[float]:
        """Critical lag of every node (Figure 2's underlying distribution)."""
        node_list = list(nodes) if nodes is not None else self._nodes
        return [self.node_critical_lag(node_id) for node_id in node_list]

    def lag_cdf(
        self,
        lag_grid: Sequence[float],
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> List[float]:
        """Cumulative fraction of nodes whose critical lag is ≤ each grid value.

        This is Figure 2: "percentage of nodes that can view at least 99 % of
        the stream with a lag shorter than t".
        """
        node_list = list(nodes) if nodes is not None else self._nodes
        if not node_list:
            return [0.0 for _ in lag_grid]
        critical = sorted(self.node_critical_lag(node_id) for node_id in node_list)
        fractions: List[float] = []
        for lag in lag_grid:
            count = bisect.bisect_right(critical, lag)
            fractions.append(count / len(node_list))
        return fractions

    def delivery_ratio(self, node_id: NodeId) -> float:
        """Fraction of all stream packets ever delivered to ``node_id``."""
        total = self._schedule.num_packets
        if total == 0:
            return 0.0
        return self._deliveries.packets_delivered(node_id) / total
