"""Endpoint protocol for objects attached to the network."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.network.message import Message


@runtime_checkable
class Endpoint(Protocol):
    """Anything that can be registered on a :class:`repro.network.Network`.

    Gossip nodes, the stream source and test doubles all implement this
    protocol: a stable ``node_id`` and an ``on_message`` callback invoked by
    the transport when a datagram is delivered.
    """

    @property
    def node_id(self) -> int:
        """Stable identifier of this endpoint."""
        ...

    def on_message(self, message: Message) -> None:
        """Handle a datagram delivered to this endpoint."""
        ...
