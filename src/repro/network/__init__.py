"""Network substrate: an unreliable, bandwidth-constrained message fabric.

The paper deploys its gossip protocol over UDP on 230 PlanetLab nodes whose
*upload* bandwidth is artificially capped by a throttling bandwidth limiter.
This package reproduces that substrate in simulation:

* :class:`Message` — a typed datagram with an explicit wire size.
* :class:`UploadLimiter` — the per-node upload cap: messages are serialized
  through a FIFO queue drained at the cap rate; a bounded backlog models the
  throttling behaviour and drops on overflow (congestion loss).
* latency models (:mod:`repro.network.latency`) — per-link propagation delay,
  including per-node "good node / bad node" factors.
* loss models (:mod:`repro.network.loss`) — random datagram loss on top of
  congestion drops.
* :class:`Network` — the transport tying it all together: endpoints register
  a receive handler; ``send`` applies the sender's upload limiter, the link
  latency and the loss model, then schedules delivery.
* :class:`TrafficStats` — byte/message accounting per node and message kind,
  used to reproduce the paper's bandwidth-usage figure (Figure 4).
"""

from repro.network.bandwidth import BandwidthCap, UploadLimiter
from repro.network.endpoints import Endpoint
from repro.network.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    PerNodeQualityLatency,
    UniformLatency,
)
from repro.network.loss import CompositeLoss, LossModel, NoLoss, PerNodeLoss, UniformLoss
from repro.network.message import Message
from repro.network.stats import NodeTraffic, TrafficStats
from repro.network.transport import Network, NetworkConfig

__all__ = [
    "BandwidthCap",
    "CompositeLoss",
    "ConstantLatency",
    "Endpoint",
    "LatencyModel",
    "LogNormalLatency",
    "LossModel",
    "Message",
    "Network",
    "NetworkConfig",
    "NoLoss",
    "NodeTraffic",
    "PerNodeLoss",
    "PerNodeQualityLatency",
    "TrafficStats",
    "UniformLatency",
    "UniformLoss",
    "UploadLimiter",
]
