"""Traffic accounting.

The paper's Figure 4 plots the distribution of *used* upload bandwidth across
nodes for several (fanout, cap) combinations.  :class:`TrafficStats` records,
per node and per message kind, how many bytes were accepted by the upload
limiter, dropped due to congestion, lost in flight, and received — enough to
regenerate that figure and to sanity-check every experiment.

These counters are also the single source of the telemetry layer's ``net.*``
metrics: :meth:`TrafficStats.bind_registry` registers a snapshot-time
collector on a :class:`~repro.telemetry.metrics.MetricsRegistry`, so
Figure-4 accounting and telemetry share one recording code path (the
:class:`NodeTraffic` cells) instead of double-counting on the transport hot
path.  The per-node API stays exactly as before — it is the thin view the
figures read.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.network.message import NodeId


@dataclass(slots=True)
class NodeTraffic:
    """Byte and message counters for a single node."""

    bytes_sent: int = 0
    bytes_received: int = 0
    bytes_dropped_congestion: int = 0
    bytes_lost_in_flight: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    messages_dropped_congestion: int = 0
    messages_lost_in_flight: int = 0
    sent_bytes_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    received_bytes_by_kind: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def upload_kbps(self, duration_seconds: float) -> float:
        """Average upload rate over ``duration_seconds``, in kbps."""
        if duration_seconds <= 0.0:
            raise ValueError(f"duration must be positive, got {duration_seconds!r}")
        return self.bytes_sent * 8.0 / duration_seconds / 1000.0

    def congestion_drop_ratio(self) -> float:
        """Fraction of offered messages dropped by the upload limiter."""
        offered = self.messages_sent + self.messages_dropped_congestion
        if offered == 0:
            return 0.0
        return self.messages_dropped_congestion / offered


class TrafficStats:
    """Per-node traffic counters with an optional measurement window.

    The measurement window (``start_measurement`` / ``stop_measurement``)
    lets experiments exclude warm-up traffic from bandwidth-usage figures.
    """

    def __init__(self) -> None:
        self._per_node: Dict[NodeId, NodeTraffic] = defaultdict(NodeTraffic)
        self._window_start: Optional[float] = None
        self._window_end: Optional[float] = None
        self._measuring = True

    # ------------------------------------------------------------------
    # Measurement window
    # ------------------------------------------------------------------
    def start_measurement(self, now: float) -> None:
        """Begin the measurement window: clears all counters."""
        self._per_node.clear()
        self._window_start = now
        self._window_end = None
        self._measuring = True

    def stop_measurement(self, now: float) -> None:
        """End the measurement window; later traffic is not recorded."""
        self._window_end = now
        self._measuring = False

    @property
    def window_duration(self) -> Optional[float]:
        """Length of the measurement window, if both ends were marked."""
        if self._window_start is None or self._window_end is None:
            return None
        return self._window_end - self._window_start

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_sent(self, node_id: NodeId, kind: str, size_bytes: int) -> None:
        """Record a datagram accepted by ``node_id``'s upload limiter."""
        if not self._measuring:
            return
        traffic = self._per_node[node_id]
        traffic.bytes_sent += size_bytes
        traffic.messages_sent += 1
        traffic.sent_bytes_by_kind[kind] += size_bytes

    def record_received(self, node_id: NodeId, kind: str, size_bytes: int) -> None:
        """Record a datagram delivered to ``node_id``."""
        if not self._measuring:
            return
        traffic = self._per_node[node_id]
        traffic.bytes_received += size_bytes
        traffic.messages_received += 1
        traffic.received_bytes_by_kind[kind] += size_bytes

    def record_congestion_drop(self, node_id: NodeId, kind: str, size_bytes: int) -> None:
        """Record a datagram dropped by ``node_id``'s upload limiter."""
        if not self._measuring:
            return
        traffic = self._per_node[node_id]
        traffic.bytes_dropped_congestion += size_bytes
        traffic.messages_dropped_congestion += 1

    def record_in_flight_loss(self, node_id: NodeId, kind: str, size_bytes: int) -> None:
        """Record a datagram from ``node_id`` lost by the network after sending."""
        if not self._measuring:
            return
        traffic = self._per_node[node_id]
        traffic.bytes_lost_in_flight += size_bytes
        traffic.messages_lost_in_flight += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, node_id: NodeId) -> NodeTraffic:
        """Counters for ``node_id`` (zeros if it never appeared)."""
        return self._per_node[node_id]

    def nodes(self) -> Iterable[NodeId]:
        """Ids of all nodes that have recorded any traffic."""
        return tuple(self._per_node)

    def raw(self) -> Dict[NodeId, NodeTraffic]:
        """Direct (read-only by convention) access to the per-node cells.

        Mirrors :meth:`repro.metrics.delivery.DeliveryLog.raw`: the sharded
        runner's merge step re-homes whole cells — every counter of a node
        is recorded on the shard that owns it, so cells never need summing.
        """
        return self._per_node

    def adopt_cell(self, node_id: NodeId, cell: NodeTraffic) -> None:
        """Install a node's counter cell wholesale (shard-merge path).

        Refuses to overwrite: a cell arriving for an already-populated node
        means two shards both recorded traffic for it, which violates the
        ownership invariant the merge relies on.
        """
        if node_id in self._per_node:
            raise ValueError(f"traffic cell for node {node_id} is already populated")
        self._per_node[node_id] = cell

    def upload_usage_kbps(self, duration_seconds: float) -> Dict[NodeId, float]:
        """Average upload rate per node over ``duration_seconds`` in kbps."""
        return {
            node_id: traffic.upload_kbps(duration_seconds)
            for node_id, traffic in self._per_node.items()
        }

    def total_bytes_sent(self) -> int:
        """Total bytes accepted by all upload limiters."""
        return sum(traffic.bytes_sent for traffic in self._per_node.values())

    def total_congestion_drops(self) -> int:
        """Total messages dropped by upload limiters across all nodes."""
        return sum(
            traffic.messages_dropped_congestion for traffic in self._per_node.values()
        )

    def total_in_flight_losses(self) -> int:
        """Total messages lost in flight across all nodes."""
        return sum(traffic.messages_lost_in_flight for traffic in self._per_node.values())

    # ------------------------------------------------------------------
    # Telemetry view
    # ------------------------------------------------------------------
    def bind_registry(self, registry) -> None:
        """Export these counters through a telemetry metrics registry.

        Registers :meth:`metrics_view` as a snapshot-time collector: the
        :class:`NodeTraffic` cells stay the only recording path and the
        registry reads them lazily, so arming telemetry adds zero cost to
        the transport hot path.
        """
        registry.register_collector(self.metrics_view)

    def metrics_view(self) -> Dict[str, float]:
        """The aggregate ``net.*`` metric snapshot of the current counters.

        Totals are summed across nodes; byte counters are additionally
        split per message kind (``net.bytes_sent{kind=serve}`` …), which is
        the shape the paper's Figure-4 phase-budget analysis wants.
        """
        from repro.telemetry.metrics import render_metric_name

        totals = NodeTraffic()
        by_kind_sent: Dict[str, int] = defaultdict(int)
        by_kind_received: Dict[str, int] = defaultdict(int)
        for traffic in self._per_node.values():
            totals.bytes_sent += traffic.bytes_sent
            totals.bytes_received += traffic.bytes_received
            totals.bytes_dropped_congestion += traffic.bytes_dropped_congestion
            totals.bytes_lost_in_flight += traffic.bytes_lost_in_flight
            totals.messages_sent += traffic.messages_sent
            totals.messages_received += traffic.messages_received
            totals.messages_dropped_congestion += traffic.messages_dropped_congestion
            totals.messages_lost_in_flight += traffic.messages_lost_in_flight
            for kind, size in traffic.sent_bytes_by_kind.items():
                by_kind_sent[kind] += size
            for kind, size in traffic.received_bytes_by_kind.items():
                by_kind_received[kind] += size
        out = {
            "net.bytes_sent": float(totals.bytes_sent),
            "net.bytes_received": float(totals.bytes_received),
            "net.bytes_dropped_congestion": float(totals.bytes_dropped_congestion),
            "net.bytes_lost_in_flight": float(totals.bytes_lost_in_flight),
            "net.messages_sent": float(totals.messages_sent),
            "net.messages_received": float(totals.messages_received),
            "net.messages_dropped_congestion": float(totals.messages_dropped_congestion),
            "net.messages_lost_in_flight": float(totals.messages_lost_in_flight),
        }
        for kind in sorted(by_kind_sent):
            name = render_metric_name("net.bytes_sent", {"kind": kind})
            out[name] = float(by_kind_sent[kind])
        for kind in sorted(by_kind_received):
            name = render_metric_name("net.bytes_received", {"kind": kind})
            out[name] = float(by_kind_received[kind])
        return out
