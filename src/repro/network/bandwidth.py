"""Upload bandwidth caps and the throttling limiter.

This module is the heart of the substrate: the paper's central observation —
that gossip has a *narrow* good-fanout window under constrained bandwidth —
comes entirely from upload contention.  PlanetLab nodes were given an
artificial upload cap (700 / 1000 / 2000 kbps) enforced by a limiter that
*throttles* bursts (queues them) rather than dropping them immediately, and
drops only when the backlog grows too large.

:class:`UploadLimiter` reproduces that mechanism: every outgoing datagram is
serialized through a FIFO at the cap rate.  The limiter answers "when does
this datagram finish leaving the node?", which the transport adds to the
propagation latency.  If accepting the datagram would push the backlog past
the configured capacity, the datagram is dropped (congestion loss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

VECTORIZE_MIN_BATCH = 32
"""Below this many datagrams per batch the scalar loop beats numpy's call
overhead; measured on the serve-burst distribution of the flagship session."""


@dataclass(frozen=True)
class BandwidthCap:
    """An upload capacity constraint.

    Attributes
    ----------
    rate_bps:
        Upload rate in bits per second, or ``None`` for unlimited upload
        (the "ideal settings" the paper criticises; useful as a baseline).
    max_backlog_seconds:
        Maximum backlog the throttling queue may hold, expressed in seconds
        of serialization time at the cap rate.  A datagram whose acceptance
        would push the backlog beyond this limit is dropped.
    """

    rate_bps: Optional[float]
    max_backlog_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.rate_bps is not None and self.rate_bps <= 0.0:
            raise ValueError(f"rate_bps must be positive or None, got {self.rate_bps!r}")
        if self.max_backlog_seconds <= 0.0:
            raise ValueError(
                f"max_backlog_seconds must be positive, got {self.max_backlog_seconds!r}"
            )

    @classmethod
    def from_kbps(cls, kbps: Optional[float], max_backlog_seconds: float = 10.0) -> "BandwidthCap":
        """Build a cap from a rate in kilobits per second (``None`` = unlimited)."""
        if kbps is None:
            return cls(rate_bps=None, max_backlog_seconds=max_backlog_seconds)
        return cls(rate_bps=float(kbps) * 1000.0, max_backlog_seconds=max_backlog_seconds)

    @classmethod
    def unlimited(cls) -> "BandwidthCap":
        """An uncapped upload (ideal-network baseline)."""
        return cls(rate_bps=None)

    @property
    def is_unlimited(self) -> bool:
        """Whether this cap imposes no constraint."""
        return self.rate_bps is None

    @property
    def max_backlog_bytes(self) -> Optional[float]:
        """Backlog capacity in bytes (``None`` when unlimited)."""
        if self.rate_bps is None:
            return None
        return self.rate_bps * self.max_backlog_seconds / 8.0

    def kbps(self) -> Optional[float]:
        """The cap expressed in kbps, or ``None`` when unlimited."""
        if self.rate_bps is None:
            return None
        return self.rate_bps / 1000.0


class UploadLimiter:
    """Serializes a node's outgoing datagrams at its upload cap rate.

    The limiter tracks a single quantity: ``busy_until``, the simulated time
    at which the last accepted byte will have left the node.  The backlog at
    time ``now`` is therefore ``(busy_until - now) * rate`` bits.

    The limiter does not schedule events itself; the transport asks it when a
    datagram's serialization completes and schedules delivery accordingly.
    """

    __slots__ = (
        "cap",
        "_busy_until",
        "bytes_accepted",
        "bytes_dropped",
        "messages_accepted",
        "messages_dropped",
    )

    def __init__(self, cap: BandwidthCap) -> None:
        self.cap = cap
        self._busy_until = 0.0
        self.bytes_accepted = 0
        self.bytes_dropped = 0
        self.messages_accepted = 0
        self.messages_dropped = 0

    def backlog_seconds(self, now: float) -> float:
        """Seconds of queued (not yet serialized) traffic at time ``now``."""
        return max(0.0, self._busy_until - now)

    def backlog_bytes(self, now: float) -> float:
        """Bytes of queued traffic at time ``now`` (0 when unlimited)."""
        if self.cap.rate_bps is None:
            return 0.0
        return self.backlog_seconds(now) * self.cap.rate_bps / 8.0

    def is_saturated(self, now: float, threshold_seconds: float = 1.0) -> bool:
        """Whether the backlog currently exceeds ``threshold_seconds``."""
        return self.backlog_seconds(now) > threshold_seconds

    def enqueue(self, size_bytes: int, now: float) -> Optional[float]:
        """Try to accept a datagram of ``size_bytes`` at time ``now``.

        Returns the simulated time at which the datagram finishes leaving the
        node, or ``None`` if it was dropped because the backlog is full.
        """
        if size_bytes <= 0:
            raise ValueError(f"size_bytes must be positive, got {size_bytes!r}")
        cap = self.cap
        rate = cap.rate_bps
        if rate is None:
            self.bytes_accepted += size_bytes
            self.messages_accepted += 1
            return now

        busy = self._busy_until
        backlog = busy - now
        if backlog < 0.0:
            backlog = 0.0
        serialization = size_bytes * 8.0 / rate
        if backlog + serialization > cap.max_backlog_seconds:
            self.bytes_dropped += size_bytes
            self.messages_dropped += 1
            return None

        finish = (busy if busy > now else now) + serialization
        self._busy_until = finish
        self.bytes_accepted += size_bytes
        self.messages_accepted += 1
        return finish

    def enqueue_many(self, sizes: Sequence[int], now: float) -> List[Optional[float]]:
        """Accept a burst of datagrams offered at the same instant.

        Exactly equivalent to calling :meth:`enqueue` once per entry of
        ``sizes`` in order (same finish times, same drop decisions, same
        counter updates — the serialization chain ``busy_until`` is carried
        through the burst element by element).  Returns one finish time or
        ``None`` (dropped) per datagram.

        Large bursts on a capped link use the vectorized numpy kernel
        (:mod:`repro.network.bandwidth_numpy`) when the numpy backend is
        active; its floating-point operation order matches the scalar chain
        bit for bit, and it declines (returning ``None``) on any burst it
        cannot reproduce exactly, falling back to the scalar loop.
        """
        if self.cap.rate_bps is not None and len(sizes) >= VECTORIZE_MIN_BATCH:
            from repro.network.bandwidth_numpy import enqueue_many_vectorized

            result = enqueue_many_vectorized(self, sizes, now)
            if result is not None:
                return result
        enqueue = self.enqueue
        return [enqueue(size, now) for size in sizes]

    def reset_counters(self) -> None:
        """Zero the byte/message counters (keeps the current backlog)."""
        self.bytes_accepted = 0
        self.bytes_dropped = 0
        self.messages_accepted = 0
        self.messages_dropped = 0
