"""Datagram loss models.

The protocol runs over UDP: datagrams can vanish.  Two sources of loss exist
in the reproduction, mirroring the paper's deployment:

* *random loss* modelled here (wide-area packet loss independent of load);
* *congestion loss* produced by the upload limiter when a node's backlog
  overflows (modelled in :mod:`repro.network.bandwidth`, not here).

Like the latency models, the random models accept ``per_sender=True`` to key
their per-datagram draws by the sending node (``loss/<model>/node-<id>``)
instead of one shared stream — the placement-invariant mode required by the
sharded runner (:mod:`repro.shard`; see :mod:`repro.network.latency` for the
rationale).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Mapping, Optional
import random

from repro.simulation.rng import RngRegistry

from repro.network.latency import _SenderStreams
from repro.network.message import Message, NodeId


class LossModel(ABC):
    """Base class: decides whether one datagram is lost in flight."""

    @abstractmethod
    def is_lost(self, message: Message) -> bool:
        """Return ``True`` if this datagram should be dropped in flight."""

    def describe(self) -> str:
        """Human-readable one-line description (used in experiment reports)."""
        return type(self).__name__


class NoLoss(LossModel):
    """Ideal network: nothing is ever lost in flight."""

    def is_lost(self, message: Message) -> bool:
        return False

    def describe(self) -> str:
        return "no random loss"


class UniformLoss(LossModel):
    """Each datagram is independently lost with fixed probability."""

    def __init__(
        self, rng: RngRegistry, probability: float = 0.01, per_sender: bool = False
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0, 1], got {probability!r}")
        self.probability = float(probability)
        self._rng: Optional[random.Random] = None if per_sender else rng.stream("loss/uniform")
        self._sender_streams = _SenderStreams(rng, "loss/uniform") if per_sender else None

    def is_lost(self, message: Message) -> bool:
        if self.probability == 0.0:
            return False
        rng = self._rng
        if rng is None:
            rng = self._sender_streams.for_sender(message.sender)
        return rng.random() < self.probability

    def describe(self) -> str:
        return f"uniform loss p={self.probability:.3f}"


class PerNodeLoss(LossModel):
    """Per-receiver loss probabilities (lossy last miles).

    Nodes missing from the mapping use ``default`` probability.
    """

    def __init__(
        self,
        rng: RngRegistry,
        probabilities: Mapping[NodeId, float],
        default: float = 0.0,
        per_sender: bool = False,
    ) -> None:
        for node_id, probability in probabilities.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"loss probability for node {node_id} must be in [0, 1], got {probability!r}"
                )
        if not 0.0 <= default <= 1.0:
            raise ValueError(f"default loss probability must be in [0, 1], got {default!r}")
        self._probabilities: Dict[NodeId, float] = dict(probabilities)
        self.default = float(default)
        self._rng: Optional[random.Random] = None if per_sender else rng.stream("loss/per-node")
        self._sender_streams = _SenderStreams(rng, "loss/per-node") if per_sender else None

    def probability_for(self, node_id: NodeId) -> float:
        """The loss probability applied to datagrams destined to ``node_id``."""
        return self._probabilities.get(node_id, self.default)

    def is_lost(self, message: Message) -> bool:
        probability = self.probability_for(message.receiver)
        if probability == 0.0:
            return False
        rng = self._rng
        if rng is None:
            rng = self._sender_streams.for_sender(message.sender)
        return rng.random() < probability

    def describe(self) -> str:
        return f"per-node loss ({len(self._probabilities)} nodes configured)"


class CompositeLoss(LossModel):
    """A datagram is lost if *any* of the component models loses it."""

    def __init__(self, models: Iterable[LossModel]) -> None:
        self.models = tuple(models)
        if not self.models:
            raise ValueError("CompositeLoss requires at least one component model")

    def is_lost(self, message: Message) -> bool:
        return any(model.is_lost(message) for model in self.models)

    def describe(self) -> str:
        return " + ".join(model.describe() for model in self.models)
