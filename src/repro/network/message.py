"""Messages exchanged over the simulated network.

A :class:`Message` is the network-layer view of a datagram: who sends it, who
receives it, how many bytes it occupies on the wire, a ``kind`` tag used for
traffic accounting, and an opaque payload interpreted by the application
(the gossip protocol defines PROPOSE / REQUEST / SERVE / FEED_ME payloads in
:mod:`repro.core.messages`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

NodeId = int
"""Nodes are identified by small non-negative integers."""


@dataclass(frozen=True, slots=True)
class Message:
    """An application datagram with explicit wire size.

    The class is slotted: one :class:`Message` is allocated per datagram on
    the simulation hot path, and dropping the per-instance ``__dict__``
    measurably reduces allocator pressure in large sessions.

    Attributes
    ----------
    sender:
        Node id of the sender.
    receiver:
        Node id of the destination.
    kind:
        Short tag naming the message type (e.g. ``"propose"``); used only
        for per-kind traffic accounting and debugging.
    size_bytes:
        Number of bytes the datagram occupies on the wire, including
        application headers.  The upload limiter charges exactly this amount
        against the sender's cap.
    payload:
        Opaque application payload delivered to the receiver's handler.
    """

    sender: NodeId
    receiver: NodeId
    kind: str
    size_bytes: int
    payload: Any = field(default=None)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"message size must be positive, got {self.size_bytes!r}")
        if self.sender < 0 or self.receiver < 0:
            raise ValueError("node ids must be non-negative")

    def size_bits(self) -> int:
        """Wire size in bits (used by the bandwidth limiter)."""
        return self.size_bytes * 8
