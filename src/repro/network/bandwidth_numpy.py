"""Vectorized serializing bandwidth limiter (numpy backend kernel).

Companion to :meth:`repro.network.bandwidth.UploadLimiter.enqueue_many`:
computes a whole burst's serialization chain with numpy while reproducing
the scalar loop's floating-point results *bit for bit*.

Exactness argument
------------------
The scalar chain is ``finish_i = max(now, busy_i) + size_i * 8.0 / rate``
with ``busy_{i+1} = finish_i`` for accepted datagrams.  Once the first
datagram of a burst is accepted, ``busy_i >= now`` for the rest of the
burst, so the chain degenerates to a plain running sum — which
``np.add.accumulate`` evaluates in the same left-to-right association as
the python loop (ufunc ``accumulate`` is sequential, never pairwise).  The
per-element serialization ``size * 8.0 / rate`` and the backlog test
``max(0.0, prev - now) + ser > max_backlog`` use the same IEEE operations
elementwise.  The kernel is *optimistic*: it assumes no datagram drops; if
the drop mask fires anywhere (or any size fails validation), it returns
``None`` and the caller re-runs the burst through the scalar loop, which
then owns the partial-acceptance bookkeeping.  Congestion drops are rare
by construction (the backlog has to exceed ten seconds of serialization),
so the optimism almost always pays.

This module is one of the two places allowed to import numpy (see the
ruff ``banned-api`` guard in ``pyproject.toml``); it must stay importable
— but inert — when numpy is absent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

try:  # pragma: no cover - exercised via the no-numpy CI leg
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.simulation.backend import numpy_kernels_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.bandwidth import UploadLimiter


def available() -> bool:
    """Whether the vectorized kernel can run in this interpreter."""
    return np is not None


def enqueue_many_vectorized(
    limiter: "UploadLimiter", sizes: Sequence[int], now: float
) -> Optional[List[Optional[float]]]:
    """Vectorized :meth:`UploadLimiter.enqueue_many` for capped links.

    Returns the per-datagram finish times, or ``None`` when the kernel
    declines (numpy absent or disabled, a drop would occur, or a size fails
    validation) — the caller must then fall back to the scalar loop.
    """
    if np is None or not numpy_kernels_enabled():
        return None
    cap = limiter.cap
    rate = cap.rate_bps
    sizes_arr = np.asarray(sizes, dtype=np.float64)
    if sizes_arr.ndim != 1 or sizes_arr.size == 0 or not np.all(sizes_arr > 0.0):
        return None
    serialization = sizes_arr * 8.0 / rate

    busy = limiter._busy_until
    first_start = busy if busy > now else now
    chain = serialization.copy()
    chain[0] += first_start
    finishes = np.add.accumulate(chain)

    previous_busy = np.empty_like(finishes)
    previous_busy[0] = busy
    previous_busy[1:] = finishes[:-1]
    backlog = np.maximum(previous_busy - now, 0.0)
    if np.any(backlog + serialization > cap.max_backlog_seconds):
        return None

    limiter._busy_until = float(finishes[-1])
    total = 0
    for size in sizes:
        total += size
    limiter.bytes_accepted += total
    limiter.messages_accepted += len(sizes)
    return [float(finish) for finish in finishes]
