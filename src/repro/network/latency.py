"""Propagation latency models.

The paper runs on PlanetLab, where link latencies are heterogeneous and the
difference between well-connected ("good") and poorly-connected ("bad") nodes
drives an important observation: good nodes win the proposal race and end up
serving more of the stream (Figure 4).  The models below let experiments
choose between a constant latency, i.i.d. random latencies, and a per-node
quality model reproducing the good/bad asymmetry.

All latencies are one-way propagation delays in seconds and exclude the
serialization delay imposed by :class:`repro.network.bandwidth.UploadLimiter`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Sequence

from repro.simulation.rng import RngRegistry

from repro.network.message import NodeId


class LatencyModel(ABC):
    """Base class: produces a one-way delay for a (sender, receiver) pair."""

    @abstractmethod
    def sample(self, sender: NodeId, receiver: NodeId) -> float:
        """Return the propagation delay in seconds for one datagram."""

    def describe(self) -> str:
        """Human-readable one-line description (used in experiment reports)."""
        return type(self).__name__


class ConstantLatency(LatencyModel):
    """Every datagram takes exactly ``delay`` seconds to propagate."""

    def __init__(self, delay: float = 0.05) -> None:
        if delay < 0.0:
            raise ValueError(f"latency cannot be negative, got {delay!r}")
        self.delay = float(delay)

    def sample(self, sender: NodeId, receiver: NodeId) -> float:
        return self.delay

    def describe(self) -> str:
        return f"constant {self.delay * 1000:.0f} ms"


class UniformLatency(LatencyModel):
    """Latency drawn i.i.d. from ``[low, high]`` for every datagram."""

    def __init__(self, rng: RngRegistry, low: float = 0.02, high: float = 0.12) -> None:
        if low < 0.0 or high < low:
            raise ValueError(f"invalid latency range [{low!r}, {high!r}]")
        self._rng = rng.stream("latency/uniform")
        self.low = float(low)
        self.high = float(high)

    def sample(self, sender: NodeId, receiver: NodeId) -> float:
        return self._rng.uniform(self.low, self.high)

    def describe(self) -> str:
        return f"uniform [{self.low * 1000:.0f}, {self.high * 1000:.0f}] ms"


class LogNormalLatency(LatencyModel):
    """Latency drawn i.i.d. from a lognormal distribution.

    Wide-area RTT distributions are heavy-tailed; a lognormal with a median
    around 60 ms and a moderate sigma is a standard approximation for
    PlanetLab-like conditions.
    """

    def __init__(
        self,
        rng: RngRegistry,
        median: float = 0.06,
        sigma: float = 0.5,
        minimum: float = 0.005,
    ) -> None:
        if median <= 0.0 or sigma < 0.0 or minimum < 0.0:
            raise ValueError("invalid lognormal latency parameters")
        self._rng = rng.stream("latency/lognormal")
        self.median = float(median)
        self.sigma = float(sigma)
        self.minimum = float(minimum)

    def sample(self, sender: NodeId, receiver: NodeId) -> float:
        value = self._rng.lognormvariate(math.log(self.median), self.sigma)
        return max(self.minimum, value)

    def describe(self) -> str:
        return f"lognormal median {self.median * 1000:.0f} ms sigma {self.sigma:.2f}"


class PerNodeQualityLatency(LatencyModel):
    """Per-node latency factors: "good" nodes are fast, "bad" nodes are slow.

    Each node ``i`` gets a quality factor ``q_i`` drawn once from a lognormal
    distribution; the latency of a datagram from ``s`` to ``r`` is

    ``base * (q_s + q_r) / 2 * jitter``

    where ``jitter`` is a small per-datagram multiplicative noise.  Nodes with
    low factors consistently deliver proposals earlier and therefore win the
    request race — reproducing the heterogeneous contribution the paper
    observes even under homogeneous bandwidth caps.
    """

    def __init__(
        self,
        rng: RngRegistry,
        node_ids: Sequence[NodeId],
        base: float = 0.05,
        quality_sigma: float = 0.6,
        jitter: float = 0.2,
        minimum: float = 0.005,
    ) -> None:
        if base <= 0.0 or quality_sigma < 0.0 or not 0.0 <= jitter < 1.0:
            raise ValueError("invalid per-node latency parameters")
        self.base = float(base)
        self.jitter = float(jitter)
        self.minimum = float(minimum)
        self._sample_rng = rng.stream("latency/per-node/jitter")
        quality_rng = rng.stream("latency/per-node/quality")
        self._quality: Dict[NodeId, float] = {
            node_id: quality_rng.lognormvariate(0.0, quality_sigma) for node_id in node_ids
        }

    def quality(self, node_id: NodeId) -> float:
        """The node's latency factor (1.0 is average; lower is better)."""
        return self._quality[node_id]

    def register_node(self, node_id: NodeId) -> None:
        """Assign a quality factor to a node added after construction."""
        if node_id not in self._quality:
            quality_rng = self._sample_rng
            self._quality[node_id] = quality_rng.lognormvariate(0.0, 0.3)

    def sample(self, sender: NodeId, receiver: NodeId) -> float:
        pair_quality = (self._quality[sender] + self._quality[receiver]) / 2.0
        noise = 1.0 + self._sample_rng.uniform(-self.jitter, self.jitter)
        return max(self.minimum, self.base * pair_quality * noise)

    def describe(self) -> str:
        return f"per-node quality, base {self.base * 1000:.0f} ms"
