"""Propagation latency models.

The paper runs on PlanetLab, where link latencies are heterogeneous and the
difference between well-connected ("good") and poorly-connected ("bad") nodes
drives an important observation: good nodes win the proposal race and end up
serving more of the stream (Figure 4).  The models below let experiments
choose between a constant latency, i.i.d. random latencies, and a per-node
quality model reproducing the good/bad asymmetry.

All latencies are one-way propagation delays in seconds and exclude the
serialization delay imposed by :class:`repro.network.bandwidth.UploadLimiter`.

Sender-keyed draws
------------------
The random models support two draw modes.  The default shares one stream
across all datagrams, so the i-th draw goes to the i-th send *globally* —
fine for a single event loop, and pinned by the pre-sharding golden files.
With ``per_sender=True`` every sender draws from its own stream
(``latency/<model>/node-<sender>``): a node's delays then depend only on its
own send history, never on how sends from different nodes interleave.  That
placement-invariance is what lets the sharded runner
(:mod:`repro.shard`) execute disjoint node sets on independent event loops
and still reproduce the scalar run bit for bit.

``min_latency()`` is the greatest lower bound a model can ever return.  It
is the conservative lookahead of the sharded backend (a datagram sent at
``t`` cannot arrive before ``t + min_latency()``), and is also handy
standalone for validation checkers bounding feasible delivery times.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence

from repro.simulation.rng import RngRegistry

from repro.network.message import NodeId


class LatencyModel(ABC):
    """Base class: produces a one-way delay for a (sender, receiver) pair."""

    @abstractmethod
    def sample(self, sender: NodeId, receiver: NodeId) -> float:
        """Return the propagation delay in seconds for one datagram."""

    @abstractmethod
    def min_latency(self) -> float:
        """Greatest lower bound on :meth:`sample` over all pairs and draws.

        The sharded backend uses this as its conservative lookahead, so the
        bound must hold for *every* possible draw, not just typical ones.
        """

    def describe(self) -> str:
        """Human-readable one-line description (used in experiment reports)."""
        return type(self).__name__


class _SenderStreams:
    """Per-sender ``random.Random`` streams under ``<purpose>/node-<id>``.

    A tiny cache in front of :meth:`RngRegistry.node_stream`: the registry
    keys by formatted string, which costs an f-string per call; datagram
    sampling is hot enough that an int-keyed dict is worth keeping here.
    """

    __slots__ = ("_registry", "_purpose", "_streams")

    def __init__(self, registry: RngRegistry, purpose: str) -> None:
        self._registry = registry
        self._purpose = purpose
        self._streams: Dict[NodeId, random.Random] = {}

    def for_sender(self, sender: NodeId) -> random.Random:
        stream = self._streams.get(sender)
        if stream is None:
            stream = self._registry.node_stream(self._purpose, sender)
            self._streams[sender] = stream
        return stream


class ConstantLatency(LatencyModel):
    """Every datagram takes exactly ``delay`` seconds to propagate."""

    def __init__(self, delay: float = 0.05) -> None:
        if delay < 0.0:
            raise ValueError(f"latency cannot be negative, got {delay!r}")
        self.delay = float(delay)

    def sample(self, sender: NodeId, receiver: NodeId) -> float:
        return self.delay

    def min_latency(self) -> float:
        return self.delay

    def describe(self) -> str:
        return f"constant {self.delay * 1000:.0f} ms"


class UniformLatency(LatencyModel):
    """Latency drawn i.i.d. from ``[low, high]`` for every datagram.

    With ``per_sender=True`` each sender draws from its own
    ``latency/uniform/node-<id>`` stream (see the module docstring).
    """

    def __init__(
        self,
        rng: RngRegistry,
        low: float = 0.02,
        high: float = 0.12,
        per_sender: bool = False,
    ) -> None:
        if low < 0.0 or high < low:
            raise ValueError(f"invalid latency range [{low!r}, {high!r}]")
        self._rng: Optional[random.Random] = None if per_sender else rng.stream("latency/uniform")
        self._sender_streams = _SenderStreams(rng, "latency/uniform") if per_sender else None
        self.low = float(low)
        self.high = float(high)

    def sample(self, sender: NodeId, receiver: NodeId) -> float:
        rng = self._rng
        if rng is None:
            rng = self._sender_streams.for_sender(sender)
        return rng.uniform(self.low, self.high)

    def min_latency(self) -> float:
        return self.low

    def describe(self) -> str:
        return f"uniform [{self.low * 1000:.0f}, {self.high * 1000:.0f}] ms"


class LogNormalLatency(LatencyModel):
    """Latency drawn i.i.d. from a lognormal distribution.

    Wide-area RTT distributions are heavy-tailed; a lognormal with a median
    around 60 ms and a moderate sigma is a standard approximation for
    PlanetLab-like conditions.
    """

    def __init__(
        self,
        rng: RngRegistry,
        median: float = 0.06,
        sigma: float = 0.5,
        minimum: float = 0.005,
        per_sender: bool = False,
    ) -> None:
        if median <= 0.0 or sigma < 0.0 or minimum < 0.0:
            raise ValueError("invalid lognormal latency parameters")
        self._rng: Optional[random.Random] = (
            None if per_sender else rng.stream("latency/lognormal")
        )
        self._sender_streams = _SenderStreams(rng, "latency/lognormal") if per_sender else None
        self.median = float(median)
        self.sigma = float(sigma)
        self.minimum = float(minimum)

    def sample(self, sender: NodeId, receiver: NodeId) -> float:
        rng = self._rng
        if rng is None:
            rng = self._sender_streams.for_sender(sender)
        value = rng.lognormvariate(math.log(self.median), self.sigma)
        return max(self.minimum, value)

    def min_latency(self) -> float:
        return self.minimum

    def describe(self) -> str:
        return f"lognormal median {self.median * 1000:.0f} ms sigma {self.sigma:.2f}"


class PerNodeQualityLatency(LatencyModel):
    """Per-node latency factors: "good" nodes are fast, "bad" nodes are slow.

    Each node ``i`` gets a quality factor ``q_i`` drawn once from a lognormal
    distribution; the latency of a datagram from ``s`` to ``r`` is

    ``base * (q_s + q_r) / 2 * jitter``

    where ``jitter`` is a small per-datagram multiplicative noise.  Nodes with
    low factors consistently deliver proposals earlier and therefore win the
    request race — reproducing the heterogeneous contribution the paper
    observes even under homogeneous bandwidth caps.
    """

    def __init__(
        self,
        rng: RngRegistry,
        node_ids: Sequence[NodeId],
        base: float = 0.05,
        quality_sigma: float = 0.6,
        jitter: float = 0.2,
        minimum: float = 0.005,
        per_sender: bool = False,
    ) -> None:
        if base <= 0.0 or quality_sigma < 0.0 or not 0.0 <= jitter < 1.0:
            raise ValueError("invalid per-node latency parameters")
        self.base = float(base)
        self.jitter = float(jitter)
        self.minimum = float(minimum)
        # The quality factors are drawn once at construction from their own
        # stream, so they are identical however (and wherever) datagrams are
        # later sampled — every shard of a sharded run reconstructs the same
        # table by passing the full node id list.
        self._sample_rng: Optional[random.Random] = (
            None if per_sender else rng.stream("latency/per-node/jitter")
        )
        self._sender_streams = (
            _SenderStreams(rng, "latency/per-node/jitter") if per_sender else None
        )
        quality_rng = rng.stream("latency/per-node/quality")
        self._quality_rng = quality_rng
        self._quality: Dict[NodeId, float] = {
            node_id: quality_rng.lognormvariate(0.0, quality_sigma) for node_id in node_ids
        }

    def quality(self, node_id: NodeId) -> float:
        """The node's latency factor (1.0 is average; lower is better)."""
        return self._quality[node_id]

    def register_node(self, node_id: NodeId) -> None:
        """Assign a quality factor to a node added after construction."""
        if node_id not in self._quality:
            self._quality[node_id] = self._quality_rng.lognormvariate(0.0, 0.3)

    def sample(self, sender: NodeId, receiver: NodeId) -> float:
        pair_quality = (self._quality[sender] + self._quality[receiver]) / 2.0
        rng = self._sample_rng
        if rng is None:
            rng = self._sender_streams.for_sender(sender)
        noise = 1.0 + rng.uniform(-self.jitter, self.jitter)
        return max(self.minimum, self.base * pair_quality * noise)

    def min_latency(self) -> float:
        return self.minimum

    def describe(self) -> str:
        return f"per-node quality, base {self.base * 1000:.0f} ms"
